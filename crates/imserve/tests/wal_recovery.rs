//! The crash-durability contract of `serve --wal`: every acknowledged
//! mutation survives an abrupt process death between index saves, and
//! replay composes correctly with artifacts saved mid-stream.

mod fixtures;

use imgraph::GraphDelta;
use imserve::engine::QueryEngine;
use imserve::index::build_dataset_index;
use imserve::ServeError;

const POOL: usize = 2_000;
const SEED: u64 = 7;

fn temp_wal(tag: &str) -> fixtures::TempPath {
    fixtures::temp_path(&format!("walrec_{tag}"), "dlta")
}

fn batches() -> Vec<Vec<GraphDelta>> {
    vec![
        vec![
            GraphDelta::InsertEdge {
                source: 0,
                target: 33,
                probability: 0.5,
            },
            GraphDelta::DeleteEdge {
                source: 0,
                target: 1,
            },
        ],
        vec![GraphDelta::SetProbability {
            source: 33,
            target: 32,
            probability: 1.0,
        }],
    ]
}

#[test]
fn a_fresh_engine_replays_the_wal_and_matches_the_survivor() {
    let wal = temp_wal("replay");

    // "Process one": accepts two batches, then dies without saving.
    let first = QueryEngine::builder(build_dataset_index("karate", "uc0.1", POOL, SEED).unwrap())
        .wal(&*wal)
        .build()
        .unwrap();
    for batch in batches() {
        first.mutate_batch(&batch).unwrap();
    }
    assert_eq!(first.epoch(), 3);
    let surviving_pool = first.state().dynamic.oracle().to_bytes();
    drop(first);

    // "Process two": same artifact, same WAL path — the pending records
    // replay on startup and the served pool is byte-identical.
    let second = QueryEngine::builder(build_dataset_index("karate", "uc0.1", POOL, SEED).unwrap())
        .wal(&*wal)
        .build()
        .unwrap();
    assert_eq!(second.epoch(), 3, "all acknowledged mutations recovered");
    assert_eq!(second.state().dynamic.oracle().to_bytes(), surviving_pool);

    // The recovered engine keeps appending: one more batch, one more
    // restart, still byte-identical to a continuously-running engine.
    second
        .mutate_batch(&[GraphDelta::InsertEdge {
            source: 16,
            target: 0,
            probability: 0.9,
        }])
        .unwrap();
    let continuous = second.state().dynamic.oracle().to_bytes();
    drop(second);
    let third = QueryEngine::builder(build_dataset_index("karate", "uc0.1", POOL, SEED).unwrap())
        .wal(&*wal)
        .build()
        .unwrap();
    assert_eq!(third.epoch(), 4);
    assert_eq!(third.state().dynamic.oracle().to_bytes(), continuous);
}

#[test]
fn saved_artifacts_skip_already_folded_records() {
    let wal = temp_wal("skip");

    let engine = QueryEngine::builder(build_dataset_index("karate", "uc0.1", POOL, SEED).unwrap())
        .wal(&*wal)
        .build()
        .unwrap();
    for batch in batches() {
        engine.mutate_batch(&batch).unwrap();
    }
    // Operator saves the index *after* the mutations: the artifact is ahead
    // of nothing — the whole WAL span is folded in.
    let saved = engine.state().to_artifact();
    assert_eq!(saved.epoch(), 3);
    drop(engine);

    let resumed = QueryEngine::builder(saved).wal(&*wal).build().unwrap();
    assert_eq!(
        resumed.epoch(),
        3,
        "records at or below the artifact epoch replay as no-ops"
    );
    // New mutations append after the old records with the right epochs.
    resumed
        .mutate_batch(&[GraphDelta::DeleteEdge {
            source: 2,
            target: 3,
        }])
        .unwrap();
    assert_eq!(resumed.epoch(), 4);
    drop(resumed);
    // A fresh (unmutated) artifact now replays the whole log: 3 + 1 deltas.
    let replayed =
        QueryEngine::builder(build_dataset_index("karate", "uc0.1", POOL, SEED).unwrap())
            .wal(&*wal)
            .build()
            .unwrap();
    assert_eq!(replayed.epoch(), 4);
}

#[test]
fn epoch_gaps_fail_loudly_instead_of_serving_diverged_state() {
    let wal = temp_wal("gap");
    let engine = QueryEngine::builder(build_dataset_index("karate", "uc0.1", POOL, SEED).unwrap())
        .wal(&*wal)
        .build()
        .unwrap();
    for batch in batches() {
        engine.mutate_batch(&batch).unwrap();
    }
    // An artifact that saw *more* history than the WAL start but less than
    // its end cannot exist via the supported flows; simulate a stale mix by
    // loading an artifact that is ahead of record 0 but behind record 1 —
    // i.e. epoch 1 (mid-record): replay must refuse.
    let mut stale = build_dataset_index("karate", "uc0.1", POOL, SEED).unwrap();
    stale.snapshot_epoch = 1; // epoch 1: inside record 0's span
    let err = QueryEngine::builder(stale).wal(&*wal).build().unwrap_err();
    match err {
        ServeError::Wal(message) => assert!(message.contains("history is missing"), "{message}"),
        other => panic!("expected a WAL error, got {other}"),
    }
}

/// Same identity, lined-up epochs, *different graph lineage*: an index
/// rebuilt with a different `--deltas` script must refuse the WAL instead
/// of skipping/replaying records recorded against another graph.
#[test]
fn wal_from_a_different_graph_lineage_is_rejected() {
    use imserve::index::build_dataset_index_with_deltas;

    let wal = temp_wal("lineage");
    let engine = QueryEngine::builder(build_dataset_index("karate", "uc0.1", POOL, SEED).unwrap())
        .wal(&*wal)
        .build()
        .unwrap();
    for batch in batches() {
        engine.mutate_batch(&batch).unwrap();
    }
    // A new record past the epoch-2 artifacts below.
    engine
        .mutate_batch(&[GraphDelta::InsertEdge {
            source: 16,
            target: 0,
            probability: 0.9,
        }])
        .unwrap();
    drop(engine);

    // An artifact at epoch 2 whose baked history differs from the WAL's
    // first record (same dataset/model/pool/seed → same identity header).
    let foreign_history = vec![
        GraphDelta::DeleteEdge {
            source: 33,
            target: 32,
        },
        GraphDelta::DeleteEdge {
            source: 2,
            target: 3,
        },
    ];
    let rebuilt =
        build_dataset_index_with_deltas("karate", "uc0.1", POOL, SEED, &foreign_history).unwrap();
    assert_eq!(rebuilt.epoch(), 2);
    let err = QueryEngine::builder(rebuilt)
        .wal(&*wal)
        .build()
        .unwrap_err();
    match err {
        ServeError::Wal(message) => {
            assert!(message.contains("different graph"), "{message}")
        }
        other => panic!("expected a WAL lineage error, got {other}"),
    }
}

/// The per-delta `Mutate` path logs its *applied prefix* when a delta is
/// rejected mid-batch, so recovery lands on exactly the surviving state.
#[test]
fn partial_mutate_failures_log_the_surviving_prefix() {
    let wal = temp_wal("prefix");
    let engine = QueryEngine::builder(build_dataset_index("karate", "uc0.1", POOL, SEED).unwrap())
        .wal(&*wal)
        .build()
        .unwrap();
    let result = engine.mutate(&[
        GraphDelta::InsertEdge {
            source: 0,
            target: 2,
            probability: 0.5,
        },
        GraphDelta::DeleteEdge {
            source: 999,
            target: 0,
        },
    ]);
    assert!(result.is_err(), "the second delta is invalid");
    assert_eq!(engine.epoch(), 1, "the valid prefix stays applied");
    let survivor = engine.state().dynamic.oracle().to_bytes();
    drop(engine);

    let recovered =
        QueryEngine::builder(build_dataset_index("karate", "uc0.1", POOL, SEED).unwrap())
            .wal(&*wal)
            .build()
            .unwrap();
    assert_eq!(recovered.epoch(), 1);
    assert_eq!(recovered.state().dynamic.oracle().to_bytes(), survivor);
}

/// The deprecated constructors still work (as builder forwards) so external
/// callers keep compiling against the old surface.
#[test]
#[allow(deprecated)]
fn deprecated_engine_constructors_forward_to_the_builder() {
    let index = || build_dataset_index("karate", "uc0.1", 500, SEED).unwrap();
    let via_new = QueryEngine::new(index());
    let via_capacity = QueryEngine::with_cache_capacity(index(), 8);
    let via_config = QueryEngine::with_config(index(), &imserve::EngineConfig::default());
    let via_builder = QueryEngine::builder(index()).build().unwrap();
    let mut scratch = via_builder.new_scratch();
    let expected = via_builder.estimate(&[0, 33], &mut scratch).unwrap();
    for engine in [via_new, via_capacity, via_config] {
        let mut s = engine.new_scratch();
        let estimate = engine.estimate(&[0, 33], &mut s).unwrap();
        assert_eq!(estimate.spread.to_bits(), expected.spread.to_bits());
    }
}
