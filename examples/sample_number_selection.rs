//! Sample-number determination: the paper's open direction made concrete.
//!
//! ```text
//! cargo run --release --example sample_number_selection
//! ```
//!
//! Section 7 of the paper asks whether RIS-style sample-number determination
//! can be applied to Oneshot and Snapshot. This example walks the full
//! pipeline on a small instance:
//!
//! 1. estimate a lower bound on the optimum (TIM⁺ KPT estimation + an
//!    IMM-style refinement on a sampled RR collection);
//! 2. turn that bound into the worst-case sample numbers `θ` (RIS), `β`
//!    (Oneshot) and `τ` (Snapshot) for a common accuracy target;
//! 3. contrast those worst-case numbers with the *empirical* least sample
//!    number that already reaches 95 % of exact greedy — the gap the paper
//!    reports in Section 5.2.1;
//! 4. certify one concrete run a posteriori with OPIM-style online bounds.

use im_core::determination::{
    determine_all_sample_numbers, least_sample_number_reaching, opim_online_bounds, AccuracyTarget,
};
use im_core::ris::RisEstimator;
use im_study::prelude::*;

fn main() {
    let k = 2;
    let graph = Dataset::Karate.influence_graph(ProbabilityModel::uc01(), 0);
    println!(
        "instance: Karate (uc0.1), n = {}, m = {}, k = {k}\n",
        graph.num_vertices(),
        graph.num_edges()
    );

    // Ground truth for the comparison: greedy on a large shared oracle.
    let mut rng = default_rng(1);
    let oracle = InfluenceOracle::builder(200_000).sample_with_rng(&graph, &mut rng);
    let (_, exact_greedy_influence) = oracle.greedy_seed_set(k);
    println!("exact-greedy reference influence: {exact_greedy_influence:.3}");

    // --- 1 & 2: worst-case determination for a common accuracy target -------
    let target = AccuracyTarget {
        epsilon: 0.1,
        delta: 0.05,
        k,
    };
    let mut det_rng = default_rng(2);
    let determined = determine_all_sample_numbers(&graph, &target, &mut det_rng);
    println!(
        "\nworst-case determination at (ε = {}, δ = {}):",
        target.epsilon, target.delta
    );
    println!(
        "  estimated OPT lower bound : {:.3}",
        determined.opt_lower_bound
    );
    println!("  RIS       θ  = {:>12.0}", determined.theta);
    println!(
        "  Oneshot   β  = {:>12.0}   (adapted via the Tang et al. bound)",
        determined.beta
    );
    println!(
        "  Snapshot  τ  = {:>12.0}   (adapted via the Karimi et al. bound)",
        determined.tau
    );

    // --- 3: empirical least sample numbers ----------------------------------
    let near_optimal = 0.95 * exact_greedy_influence;
    let trials: u64 = 20;
    let sweep = |base: Algorithm, max_exponent: u32| -> Option<u64> {
        least_sample_number_reaching(
            |sample_number| {
                let algorithm = base.with_sample_number(sample_number);
                let total: f64 = (0..trials)
                    .map(|t| oracle.estimate_seed_set(&algorithm.run(&graph, k, t).seeds))
                    .sum();
                total / trials as f64
            },
            near_optimal,
            max_exponent,
        )
    };
    let beta_star = sweep(Algorithm::Oneshot { beta: 1 }, 12);
    let tau_star = sweep(Algorithm::Snapshot { tau: 1 }, 12);
    let theta_star = sweep(Algorithm::Ris { theta: 1 }, 18);
    println!(
        "\nempirical least sample number reaching 95% of exact greedy (mean over {trials} trials):"
    );
    println!("  Oneshot   β* = {}", fmt(beta_star));
    println!("  Snapshot  τ* = {}", fmt(tau_star));
    println!("  RIS       θ* = {}", fmt(theta_star));
    println!(
        "  → the worst-case numbers above exceed these by orders of magnitude (Section 5.2.1)."
    );

    // --- 4: a-posteriori certification via OPIM-style online bounds ---------
    let theta_run = 8_192u64;
    let mut sel_rng = default_rng(3);
    let mut selection = RisEstimator::new(&graph, theta_run, &mut sel_rng);
    let result = im_core::greedy_select(&mut selection, k, &mut default_rng(4));
    let seeds = result.seed_set();
    let mut val_rng = default_rng(5);
    let validation = RisEstimator::new(&graph, theta_run, &mut val_rng);
    let n = graph.num_vertices();
    let cov1 =
        (selection.estimate_set(seeds.vertices()) / n as f64 * theta_run as f64).round() as u64;
    let cov2 =
        (validation.estimate_set(seeds.vertices()) / n as f64 * theta_run as f64).round() as u64;
    let bounds = opim_online_bounds(cov1, cov2, theta_run, theta_run, n, 0.01);
    println!("\nonline certification of one RIS run at θ = {theta_run}:");
    println!("  seeds                  : {seeds}");
    println!("  influence lower bound  : {:.3}", bounds.influence_lower);
    println!("  optimum upper bound    : {:.3}", bounds.opt_upper);
    println!("  certified approx ratio : {:.3}", bounds.approx_ratio);
}

fn fmt(x: Option<u64>) -> String {
    x.map_or_else(|| "not reached in the sweep".to_string(), |v| v.to_string())
}
