//! The `compaction` driver: index-lifecycle cost sweep (extension).
//!
//! A long-lived influence service pays three distinct maintenance costs: the
//! *apply* cost of landing mutations in the RR-set pool, the *compact* cost
//! of folding the pending delta log into the snapshot watermark, and — if it
//! had neither — the *rebuild* cost of resampling the whole pool. This driver
//! sweeps mutation **batch size × compaction threshold** on a
//! structural-delta-heavy workload (the regime where the per-delta path pays
//! one CSR re-materialization per delta) and reports, per configuration, the
//! batched apply cost percentiles next to the per-delta path and the
//! from-scratch rebuild, plus what auto-compaction actually cost. Every
//! configuration ends by verifying `imdyn`'s byte-identity contract on the
//! final state.

use std::time::Instant;

use im_core::sampler::Backend;
use imdyn::{workload, CompactionPolicy, DynamicOracle};
use imnet::{Dataset, ProbabilityModel};
use imrand::{derive_seed, Pcg32};
use imstats::SummaryStats;

use crate::config::ExperimentScale;
use crate::experiments::{instance_for, ExperimentReport};
use crate::report::{fmt_float, TextTable};

/// Mutation-batch sizes swept per instance.
const BATCH_SIZES: [usize; 4] = [1, 4, 16, 64];

/// Compaction log-length thresholds swept per batch size (`None` = never).
const THRESHOLDS: [Option<usize>; 3] = [None, Some(16), Some(64)];

/// Structural deltas fed through every configuration.
const TOTAL_DELTAS: usize = 64;

/// Base seed of the pool builds and mutation workloads.
const BASE_SEED: u64 = 31;

/// Pool size per scale (same ladder as the `evolve` driver).
fn pool_for(scale: ExperimentScale) -> usize {
    match scale {
        ExperimentScale::Quick => 20_000,
        ExperimentScale::Standard => 100_000,
        ExperimentScale::Paper => 1_000_000,
    }
}

/// The instances the driver sweeps: the exact Karate network plus, beyond
/// quick scale, the BA_d analog under a weighted cascade.
fn instances(scale: ExperimentScale) -> Vec<(Dataset, ProbabilityModel)> {
    let mut all = vec![(Dataset::Karate, ProbabilityModel::uc01())];
    if scale != ExperimentScale::Quick {
        all.push((Dataset::BaDense, ProbabilityModel::InDegreeWeighted));
    }
    all
}

/// Run the lifecycle sweep at the given scale.
#[must_use]
pub fn run(scale: ExperimentScale) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "compaction",
        "batched mutation and delta-log compaction vs per-delta apply and full rebuild \
         (extension)",
    );
    let pool = pool_for(scale);
    for (dataset, model) in instances(scale) {
        let instance = instance_for(dataset, model, scale);
        let graph = instance
            .spec
            .influence_graph(instance.model, instance.dataset_seed);
        let mut table = TextTable::new(
            format!(
                "{} — pool {pool}, n = {}, m = {}, {TOTAL_DELTAS} structural deltas",
                instance.label(),
                graph.num_vertices(),
                graph.num_edges()
            ),
            &[
                "batch",
                "compact@",
                "apply µs/delta (median)",
                "apply µs/delta (p99)",
                "per-delta µs/delta (median)",
                "batch speedup",
                "compactions",
                "compact µs (mean)",
                "rebuild µs",
            ],
        );

        // One shared base state and one reference rebuild timing per
        // instance: what every configuration would pay without maintenance.
        let rebuild_started = Instant::now();
        let reference = DynamicOracle::build(graph.clone(), pool, BASE_SEED, Backend::Sequential);
        let rebuild_micros = rebuild_started.elapsed().as_secs_f64() * 1e6;

        for (batch_index, &batch) in BATCH_SIZES.iter().enumerate() {
            // The workload is fixed per batch size, so threshold rows of the
            // same batch size are directly comparable.
            let mut rng = Pcg32::seed_from_u64(derive_seed(BASE_SEED, batch_index as u64));
            let deltas = workload::random_structural_deltas(
                reference.mutable_graph(),
                TOTAL_DELTAS,
                &mut rng,
            );

            // The per-delta reference: same deltas, one CSR rebuild each.
            let mut per_delta = reference.clone();
            let mut per_delta_latencies = Vec::with_capacity(TOTAL_DELTAS);
            for delta in &deltas {
                let started = Instant::now();
                per_delta.apply(*delta).expect("workload deltas are valid");
                per_delta_latencies.push(started.elapsed().as_secs_f64() * 1e6);
            }
            let per_delta_stats = SummaryStats::from_values(&per_delta_latencies);

            for &threshold in &THRESHOLDS {
                let policy = match threshold {
                    Some(len) => CompactionPolicy::log_len(len),
                    None => CompactionPolicy::DISABLED,
                };
                let mut dynamic = reference.clone().with_policy(policy);
                let mut apply_latencies = Vec::with_capacity(TOTAL_DELTAS / batch + 1);
                let mut compact_latencies: Vec<f64> = Vec::new();
                for chunk in deltas.chunks(batch) {
                    let started = Instant::now();
                    dynamic
                        .apply_batch(chunk)
                        .expect("workload deltas are valid");
                    // Per-delta share of the batch's cost, so rows with
                    // different batch sizes stay comparable.
                    apply_latencies
                        .push(started.elapsed().as_secs_f64() * 1e6 / chunk.len() as f64);
                    let started = Instant::now();
                    if dynamic.maybe_compact().is_some() {
                        compact_latencies.push(started.elapsed().as_secs_f64() * 1e6);
                    }
                }
                let apply_stats = SummaryStats::from_values(&apply_latencies);
                let compactions = dynamic.stats().compactions;
                let compact_mean = if compact_latencies.is_empty() {
                    0.0
                } else {
                    compact_latencies.iter().sum::<f64>() / compact_latencies.len() as f64
                };
                table.add_row(vec![
                    batch.to_string(),
                    threshold.map_or_else(|| "never".to_string(), |t| t.to_string()),
                    fmt_float(apply_stats.median),
                    fmt_float(apply_stats.p99),
                    fmt_float(per_delta_stats.median),
                    fmt_float(per_delta_stats.median / apply_stats.median.max(1e-9)),
                    compactions.to_string(),
                    fmt_float(compact_mean),
                    fmt_float(rebuild_micros),
                ]);

                // Lifecycle invariants, per configuration: the batched,
                // policy-compacted state equals both the per-delta state and
                // a from-scratch rebuild, and compaction never moved the
                // epoch.
                assert_eq!(
                    dynamic.oracle().to_bytes(),
                    per_delta.oracle().to_bytes(),
                    "batched path diverged from per-delta path on {}",
                    instance.label()
                );
                assert_eq!(dynamic.epoch(), TOTAL_DELTAS as u64);
                assert!(
                    dynamic.matches_rebuild(),
                    "maintained pool diverged from rebuild on {}",
                    instance.label()
                );
            }
        }
        report.tables.push(table);
        report.notes.push(format!(
            "{}: every (batch, threshold) configuration ends byte-identical to both the \
             per-delta path and a from-scratch rebuild at epoch {TOTAL_DELTAS}; compaction \
             is pure bookkeeping and never moves the epoch",
            instance.label()
        ));
    }
    report.notes.push(
        "structural deltas force a CSR re-materialization per delta on the per-delta path \
         but only one per batch on apply_batch; the speedup column is that effect plus \
         dirty-union resampling (a set dirtied by k deltas resamples once, not k times)"
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compaction_sweeps_every_configuration_and_verifies_equivalence() {
        let report = run(ExperimentScale::Quick);
        assert_eq!(report.id, "compaction");
        assert_eq!(report.tables.len(), 1, "quick scale sweeps Karate only");
        assert_eq!(
            report.tables[0].num_rows(),
            BATCH_SIZES.len() * THRESHOLDS.len()
        );
        assert!(
            report.notes.iter().any(|n| n.contains("byte-identical")),
            "the equivalence note must be present: {:?}",
            report.notes
        );
    }
}
