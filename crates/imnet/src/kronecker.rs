//! Stochastic Kronecker graph generator.
//!
//! The SNAP networks used by the paper (com-Youtube, soc-Pokec) are commonly
//! modelled by stochastic Kronecker graphs: recursively self-similar adjacency
//! structure, heavy-tailed degrees and a densifying core — the properties the
//! paper's giant-component discussion (Section 5.3) leans on. This generator
//! produces a directed graph on `2^scale` vertices by the standard edge-by-edge
//! ball-dropping procedure: each edge independently descends `scale` levels of
//! the 2×2 initiator matrix, choosing a quadrant proportionally to the
//! initiator entries, and the reached cell `(u, v)` becomes a directed edge.

use imgraph::{DiGraph, VertexId};
use imrand::Rng32;

/// A stochastic Kronecker generator with a 2×2 initiator matrix.
#[derive(Debug, Clone, Copy)]
pub struct StochasticKronecker {
    /// The initiator matrix `[[a, b], [c, d]]`; entries must be non-negative
    /// and sum to a positive value. The classical "core–periphery" choice is
    /// `a ≫ b ≈ c > d`.
    pub initiator: [[f64; 2]; 2],
    /// Number of Kronecker levels; the graph has `2^scale` vertices.
    pub scale: u32,
    /// Number of edge-dropping attempts. Duplicate edges and self-loops are
    /// removed, so the resulting edge count is at most this.
    pub edges: usize,
}

impl StochasticKronecker {
    /// A generator with the widely used initiator `[[0.9, 0.5], [0.5, 0.2]]`
    /// (after normalisation), which yields core-whisker-like graphs.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is 0 or larger than 24, or if `edges` is 0.
    #[must_use]
    pub fn social_like(scale: u32, edges: usize) -> Self {
        Self::new([[0.9, 0.5], [0.5, 0.2]], scale, edges)
    }

    /// A generator with an explicit initiator matrix.
    ///
    /// # Panics
    ///
    /// Panics if any entry is negative, all entries are zero, `scale` is 0 or
    /// larger than 24, or `edges` is 0.
    #[must_use]
    pub fn new(initiator: [[f64; 2]; 2], scale: u32, edges: usize) -> Self {
        for row in &initiator {
            for &x in row {
                assert!(
                    x >= 0.0 && x.is_finite(),
                    "initiator entries must be non-negative"
                );
            }
        }
        let total: f64 = initiator.iter().flatten().sum();
        assert!(total > 0.0, "initiator matrix must have positive mass");
        assert!(
            (1..=24).contains(&scale),
            "scale must lie in 1..=24, got {scale}"
        );
        assert!(edges > 0, "need at least one edge attempt");
        Self {
            initiator,
            scale,
            edges,
        }
    }

    /// Number of vertices of the generated graph (`2^scale`).
    #[must_use]
    pub fn num_vertices(&self) -> usize {
        1usize << self.scale
    }

    /// Generate one directed graph (duplicate edges and self-loops dropped).
    pub fn generate<R: Rng32>(&self, rng: &mut R) -> DiGraph {
        let n = self.num_vertices();
        let total: f64 = self.initiator.iter().flatten().sum();
        // Cumulative quadrant probabilities in row-major order:
        // (0,0), (0,1), (1,0), (1,1).
        let probs = [
            self.initiator[0][0] / total,
            self.initiator[0][1] / total,
            self.initiator[1][0] / total,
            self.initiator[1][1] / total,
        ];
        let mut edges: Vec<(VertexId, VertexId)> = Vec::with_capacity(self.edges);
        for _ in 0..self.edges {
            let mut u = 0usize;
            let mut v = 0usize;
            for _ in 0..self.scale {
                let x = rng.next_f64();
                let quadrant = if x < probs[0] {
                    (0, 0)
                } else if x < probs[0] + probs[1] {
                    (0, 1)
                } else if x < probs[0] + probs[1] + probs[2] {
                    (1, 0)
                } else {
                    (1, 1)
                };
                u = (u << 1) | quadrant.0;
                v = (v << 1) | quadrant.1;
            }
            if u != v {
                edges.push((u as VertexId, v as VertexId));
            }
        }
        edges.sort_unstable();
        edges.dedup();
        DiGraph::from_edges(n, &edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imrand::Pcg32;

    #[test]
    fn vertex_count_is_a_power_of_two() {
        let gen = StochasticKronecker::social_like(8, 2_000);
        assert_eq!(gen.num_vertices(), 256);
        let g = gen.generate(&mut Pcg32::seed_from_u64(1));
        assert_eq!(g.num_vertices(), 256);
        assert!(g.num_edges() > 0);
        assert!(g.num_edges() <= 2_000);
    }

    #[test]
    fn no_self_loops_or_duplicate_edges() {
        let gen = StochasticKronecker::social_like(7, 3_000);
        let g = gen.generate(&mut Pcg32::seed_from_u64(2));
        let mut edges = g.edges_in_insertion_order();
        for &(u, v) in &edges {
            assert_ne!(u, v, "self-loop generated");
        }
        let before = edges.len();
        edges.sort_unstable();
        edges.dedup();
        assert_eq!(edges.len(), before, "duplicate edge generated");
    }

    #[test]
    fn core_heavy_initiator_skews_degrees_towards_low_ids() {
        // With a ≫ d, low-id vertices (repeated 0-quadrant choices) accumulate
        // far more incident edges than high-id vertices.
        let gen = StochasticKronecker::new([[0.95, 0.4], [0.4, 0.1]], 9, 8_000);
        let g = gen.generate(&mut Pcg32::seed_from_u64(3));
        let n = g.num_vertices();
        let low: usize = (0..(n / 8) as VertexId)
            .map(|v| g.out_degree(v) + g.in_degree(v))
            .sum();
        let high: usize = ((7 * n / 8) as VertexId..n as VertexId)
            .map(|v| g.out_degree(v) + g.in_degree(v))
            .sum();
        assert!(low > high * 3, "core {low} vs periphery {high}");
    }

    #[test]
    fn degree_distribution_is_heavy_tailed() {
        let gen = StochasticKronecker::social_like(10, 20_000);
        let g = gen.generate(&mut Pcg32::seed_from_u64(4));
        let max_deg = g.max_out_degree();
        let mean_deg = g.num_edges() as f64 / g.num_vertices() as f64;
        assert!(
            max_deg as f64 > mean_deg * 8.0,
            "max degree {max_deg} should dwarf the mean {mean_deg}"
        );
    }

    #[test]
    fn reproducible_for_a_fixed_seed() {
        let gen = StochasticKronecker::social_like(6, 500);
        let a = gen.generate(&mut Pcg32::seed_from_u64(9));
        let b = gen.generate(&mut Pcg32::seed_from_u64(9));
        assert_eq!(a.edges_in_insertion_order(), b.edges_in_insertion_order());
    }

    #[test]
    #[should_panic(expected = "scale must lie in 1..=24")]
    fn oversized_scale_panics() {
        let _ = StochasticKronecker::social_like(30, 10);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_initiator_panics() {
        let _ = StochasticKronecker::new([[0.5, -0.1], [0.2, 0.1]], 4, 10);
    }
}
