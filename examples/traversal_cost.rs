//! Traversal-cost accounting: reproduce one row of Table 8 interactively.
//!
//! ```text
//! cargo run --release --example traversal_cost
//! ```
//!
//! The paper measures algorithmic effort in machine-independent units — the
//! number of vertices and edges examined — instead of wall-clock time. This
//! example measures the per-sample traversal cost of the three approaches on
//! Karate under all four probability models (the Karate rows of Table 8) and
//! checks the paper's cost-model relations:
//!
//! * vertex cost: `Oneshot ≈ Snapshot ≈ n · RIS`
//! * edge cost:   `Oneshot ≈ (m/m̃) · Snapshot ≈ n · RIS` (approximately)

use im_study::prelude::*;

fn main() {
    let trials = 2_000;
    let k = 1;
    println!("Karate, k = {k}, sample number 1, {trials} runs per cell\n");
    println!(
        "{:<8} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12} {:>16}",
        "prob.",
        "Oneshot v",
        "Oneshot e",
        "Snapshot v",
        "Snapshot e",
        "RIS v",
        "RIS e",
        "n·RISv/Oneshotv"
    );

    for model in ProbabilityModel::paper_models() {
        let instance =
            PreparedInstance::prepare(InstanceConfig::new(Dataset::Karate, model), 50_000, 13);
        let n = instance.graph.num_vertices() as f64;
        let mut cells: Vec<(f64, f64)> = Vec::new();
        for approach in ApproachKind::all() {
            let batch = instance.run_trials(approach.with_sample_number(1), k, trials, 21, true);
            cells.push(batch.mean_traversal_cost());
        }
        let (oneshot, snapshot, ris) = (cells[0], cells[1], cells[2]);
        println!(
            "{:<8} {:>12.1} {:>12.1} {:>12.1} {:>12.1} {:>12.2} {:>12.2} {:>16.3}",
            model.label(),
            oneshot.0,
            oneshot.1,
            snapshot.0,
            snapshot.1,
            ris.0,
            ris.1,
            n * ris.0 / oneshot.0.max(1e-9),
        );
    }

    println!(
        "\nExpected shape (Table 8, Karate rows): the Oneshot and Snapshot vertex costs coincide, \
         Snapshot's edge cost is ≈ m̃/m of Oneshot's (0.1 under uc0.1, 0.01 under uc0.01), and RIS \
         is roughly n times cheaper than Oneshot per sample — the last column should sit near 1."
    );
}
