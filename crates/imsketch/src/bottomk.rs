//! Bottom-k min-hash sketches for reachability-set size estimation.
//!
//! Every vertex is assigned an independent uniform rank in `[0, 1)`. The
//! bottom-k sketch of a vertex `v` is the multiset of the `k` smallest ranks
//! among the vertices reachable from `v`. If the sketch holds fewer than `k`
//! ranks the reachable set has exactly that many vertices; otherwise the
//! classical bottom-k estimator `(k − 1) / τ_k`, where `τ_k` is the `k`-th
//! smallest rank, is an unbiased estimate of the reachable-set size with
//! coefficient of variation `≤ 1/√(k − 2)` (Cohen 1997).
//!
//! Sketches for *all* vertices of a graph are computed together by Cohen's
//! pruned reverse search: process vertices in increasing rank order and run a
//! reverse BFS from each, stopping at vertices whose sketch is already full —
//! every rank seen later can only be larger than the ones already stored.

use imgraph::{DiGraph, VertexId};
use imrand::Rng32;

/// The bottom-k sketch of a single vertex: its `k` smallest reachable ranks in
/// increasing order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BottomKSketch {
    ranks: Vec<f64>,
}

impl BottomKSketch {
    /// The stored ranks in increasing order (at most `k` of them).
    #[must_use]
    pub fn ranks(&self) -> &[f64] {
        &self.ranks
    }

    /// Number of ranks stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ranks.len()
    }

    /// Whether the sketch is empty (an isolated vertex still reaches itself,
    /// so this only happens for sketches that were never built).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ranks.is_empty()
    }

    /// Estimate the number of vertices in the sketched reachable set.
    ///
    /// If the sketch holds fewer than `k` ranks the answer is exact; otherwise
    /// the bottom-k estimator `(k − 1) / τ_k` is returned.
    #[must_use]
    pub fn estimate(&self, k: usize) -> f64 {
        if self.ranks.len() < k {
            self.ranks.len() as f64
        } else {
            let tau = self.ranks[k - 1];
            if tau <= 0.0 {
                // All k ranks collapsed to ~0; fall back to the stored count to
                // avoid division by zero (vanishingly unlikely with f64 ranks).
                self.ranks.len() as f64
            } else {
                (k as f64 - 1.0) / tau
            }
        }
    }
}

/// Bottom-k reachability sketches for every vertex of one directed graph
/// (typically a live-edge snapshot).
#[derive(Debug, Clone)]
pub struct ReachabilitySketches {
    sketches: Vec<BottomKSketch>,
    k: usize,
    /// Vertices plus edges examined while building (the paper's traversal
    /// cost for the sketch-construction phase).
    build_cost: u64,
}

impl ReachabilitySketches {
    /// Build bottom-k sketches for all vertices of `graph` using ranks drawn
    /// from `rng`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn build<R: Rng32>(graph: &DiGraph, k: usize, rng: &mut R) -> Self {
        assert!(k > 0, "bottom-k sketches need k ≥ 1");
        let n = graph.num_vertices();
        // Independent uniform ranks; ties are broken by vertex id which only
        // matters at f64-collision probability.
        let ranks: Vec<f64> = (0..n).map(|_| rng.next_f64()).collect();
        let mut order: Vec<VertexId> = (0..n as VertexId).collect();
        order.sort_by(|&a, &b| {
            ranks[a as usize]
                .partial_cmp(&ranks[b as usize])
                .expect("ranks are finite")
                .then(a.cmp(&b))
        });

        let mut sketches = vec![BottomKSketch::default(); n];
        let mut build_cost = 0u64;
        let mut queue: Vec<VertexId> = Vec::new();
        let mut visited = vec![u32::MAX; n];

        // Process vertices in increasing rank order; push each rank to every
        // vertex that can reach it (reverse BFS), pruning at full sketches.
        for (epoch, &w) in order.iter().enumerate() {
            let epoch = epoch as u32;
            let rank = ranks[w as usize];
            queue.clear();
            queue.push(w);
            visited[w as usize] = epoch;
            let mut head = 0usize;
            while head < queue.len() {
                let v = queue[head];
                head += 1;
                build_cost += 1;
                let sketch = &mut sketches[v as usize];
                if sketch.ranks.len() >= k {
                    // Already full with smaller ranks — neither this vertex nor
                    // anything above it needs the current rank.
                    continue;
                }
                sketch.ranks.push(rank);
                for &u in graph.in_neighbors(v) {
                    build_cost += 1;
                    if visited[u as usize] != epoch {
                        visited[u as usize] = epoch;
                        queue.push(u);
                    }
                }
            }
        }
        Self {
            sketches,
            k,
            build_cost,
        }
    }

    /// The sketch parameter `k`.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of sketched vertices.
    #[must_use]
    pub fn num_vertices(&self) -> usize {
        self.sketches.len()
    }

    /// The sketch of one vertex.
    #[must_use]
    pub fn sketch(&self, v: VertexId) -> &BottomKSketch {
        &self.sketches[v as usize]
    }

    /// Estimated size of the reachable set of `v`.
    #[must_use]
    pub fn estimate_reachable(&self, v: VertexId) -> f64 {
        self.sketches[v as usize].estimate(self.k)
    }

    /// Vertices plus edges examined during construction.
    #[must_use]
    pub fn build_cost(&self) -> u64 {
        self.build_cost
    }

    /// Total number of stored ranks — the sketch-side analogue of the paper's
    /// sample size (at most `k · n`).
    #[must_use]
    pub fn stored_ranks(&self) -> usize {
        self.sketches.iter().map(BottomKSketch::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imgraph::reach::reachable_count;
    use imrand::Pcg32;

    fn path(n: usize) -> DiGraph {
        let edges: Vec<_> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        DiGraph::from_edges(n, &edges)
    }

    #[test]
    fn small_reachable_sets_are_exact() {
        // On a 6-path with k = 8 every sketch is under-full, so estimates are
        // exact reachable counts: vertex i reaches n - i vertices.
        let g = path(6);
        let sketches = ReachabilitySketches::build(&g, 8, &mut Pcg32::seed_from_u64(1));
        for v in 0..6u32 {
            let estimate = sketches.estimate_reachable(v);
            assert!(
                (estimate - (6 - v as usize) as f64).abs() < 1e-12,
                "vertex {v}: {estimate}"
            );
        }
    }

    #[test]
    fn sketch_ranks_are_sorted_and_bounded_by_k() {
        let g = path(30);
        let k = 4;
        let sketches = ReachabilitySketches::build(&g, k, &mut Pcg32::seed_from_u64(2));
        for v in 0..30u32 {
            let s = sketches.sketch(v);
            assert!(s.len() <= k);
            assert!(
                s.ranks().windows(2).all(|w| w[0] <= w[1]),
                "unsorted sketch for {v}"
            );
        }
        assert_eq!(sketches.k(), k);
        assert_eq!(sketches.num_vertices(), 30);
        assert!(sketches.stored_ranks() <= k * 30);
        assert!(sketches.build_cost() > 0);
    }

    #[test]
    fn estimates_track_exact_counts_on_a_long_path() {
        // Average the relative error of the head vertex over several rank
        // assignments; bottom-k with k = 64 should estimate a 200-vertex
        // reachable set within a few percent on average.
        let g = path(200);
        let exact = reachable_count(&g, &[0]) as f64;
        let mut total = 0.0;
        let runs = 20;
        for seed in 0..runs {
            let sketches = ReachabilitySketches::build(&g, 64, &mut Pcg32::seed_from_u64(seed));
            total += sketches.estimate_reachable(0);
        }
        let mean = total / runs as f64;
        assert!(
            (mean - exact).abs() / exact < 0.15,
            "mean estimate {mean} too far from exact {exact}"
        );
    }

    #[test]
    fn isolated_vertices_reach_only_themselves() {
        let g = DiGraph::from_edges(5, &[(0, 1)]);
        let sketches = ReachabilitySketches::build(&g, 4, &mut Pcg32::seed_from_u64(3));
        for v in 2..5u32 {
            assert!((sketches.estimate_reachable(v) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn estimator_handles_full_sketch_branch() {
        let sketch = BottomKSketch {
            ranks: vec![0.1, 0.2, 0.5],
        };
        // Under-full relative to k = 4: exact count.
        assert_eq!(sketch.estimate(4), 3.0);
        // Full at k = 3: (3 - 1) / 0.5 = 4.
        assert!((sketch.estimate(3) - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "k ≥ 1")]
    fn zero_k_panics() {
        let g = path(3);
        let _ = ReachabilitySketches::build(&g, 0, &mut Pcg32::seed_from_u64(1));
    }
}
