//! Table 6 / Figure 7 bench: comparable number ratio of Oneshot to Snapshot.

use criterion::{criterion_group, criterion_main, Criterion};
use imexp::ApproachKind;
use imnet::ProbabilityModel;
use imstats::ratio::{comparable_number_ratio, median_ratio};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let instance = im_bench::karate(ProbabilityModel::uc01());
    let sweep = im_bench::small_sweep(7, 25);

    println!("\n--- Table 6 series (Karate uc0.1, k = 1 and 4, 25 trials) ---");
    let mut curves = Vec::new();
    for k in [1usize, 4] {
        let snapshot = instance
            .sweep(ApproachKind::Snapshot, k, &sweep)
            .sample_curve();
        let oneshot = instance
            .sweep(ApproachKind::Oneshot, k, &sweep)
            .sample_curve();
        let points = comparable_number_ratio(&snapshot, &oneshot);
        let ratios: Vec<f64> = points.iter().map(|p| p.number_ratio).collect();
        println!(
            "k = {k}: median comparable number ratio beta/tau = {:?} over {} reference points",
            median_ratio(&ratios),
            points.len()
        );
        curves.push((snapshot, oneshot));
    }

    let (snapshot_curve, oneshot_curve) = curves.pop().unwrap();
    let mut group = c.benchmark_group("table6_comparable_oneshot");
    group.sample_size(20);
    group.bench_function("comparable_number_ratio", |b| {
        b.iter(|| black_box(comparable_number_ratio(&snapshot_curve, &oneshot_curve)))
    });
    group.bench_function("oneshot_run/karate_uc0.1_k4_beta64", |b| {
        b.iter(|| {
            black_box(
                ApproachKind::Oneshot
                    .with_sample_number(64)
                    .run(&instance.graph, 4, 3),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
