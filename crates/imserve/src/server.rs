//! The std-only threaded TCP front end (the `--threaded` fallback).
//!
//! Architecture: one acceptor thread owns the `TcpListener`; accepted
//! connections live in a shared turn queue drained by a fixed pool of worker
//! threads. A worker takes one connection *per turn* — it drains whatever
//! complete request lines are buffered, answers them in order, then releases
//! the connection back to the queue — so `workers` slow or idle clients can
//! no longer pin the whole pool (the old design parked a worker on one
//! connection for its lifetime, which is what deadlocked a single-worker
//! server under the load generator's lingering probe connection). Workers
//! share the engine behind an `Arc`; see `engine` for the locking
//! discipline (long selections snapshot the state and hold no lock).
//!
//! The event-driven front end in [`crate::reactor`] is the default server;
//! both front ends answer through the same `answer_line` dialect core, so
//! their responses are byte-identical for identical request streams.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::engine::QueryEngine;
use crate::error::ServeError;
use crate::linebuf::LineBuffer;
use crate::obs::ServingMetrics;
use crate::protocol::{
    self, ErrorKind, FrameEnvelope, Outcome, Request, RequestFrame, Response, ResponseFrame,
    WireError, PROTOCOL_VERSION,
};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads serving connections.
    pub workers: usize,
    /// How long a connection may stay silent before it is dropped. Workers
    /// time-slice over all open connections, so an idle client costs a queue
    /// slot (not a worker) until this bound expires; `None` keeps idle
    /// connections forever (trusted clients only).
    pub idle_timeout: Option<std::time::Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            idle_timeout: Some(std::time::Duration::from_secs(60)),
        }
    }
}

/// A handle to a running server: its bound address and a shutdown switch.
#[derive(Debug)]
pub struct ServerHandle {
    pub(crate) addr: SocketAddr,
    pub(crate) stop: Arc<AtomicBool>,
    pub(crate) acceptor: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server actually bound (resolves ephemeral port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting connections and join the acceptor thread.
    ///
    /// In-flight connections are drained by their workers; workers themselves
    /// are detached and exit once the connection queue closes and empties.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the acceptor with a wake-up connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
    }
}

/// Decrements the open-connections gauge when the connection is dropped, on
/// whichever path drops it (idle expiry, I/O error, shutdown drain).
struct ConnGauge(Arc<ServingMetrics>);

impl ConnGauge {
    fn open(obs: &Arc<ServingMetrics>) -> Self {
        obs.open_connections.inc();
        Self(Arc::clone(obs))
    }
}

impl Drop for ConnGauge {
    fn drop(&mut self) {
        self.0.open_connections.dec();
    }
}

/// One open connection's state while it waits in (or moves through) the turn
/// queue: the socket, any partial request line read during a previous turn,
/// and the idle clock.
struct PooledConnection {
    stream: TcpStream,
    lines: LineBuffer,
    last_activity: Instant,
    _gauge: ConnGauge,
}

/// The turn queue shared by the acceptor and the workers.
struct ConnQueue {
    state: Mutex<QueueState>,
    available: Condvar,
}

struct QueueState {
    connections: VecDeque<PooledConnection>,
    /// Set when the acceptor exits; workers drain the queue and then stop.
    closed: bool,
}

impl ConnQueue {
    fn new() -> Self {
        Self {
            state: Mutex::new(QueueState {
                connections: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
        }
    }

    fn push(&self, connection: PooledConnection) {
        let mut state = self.state.lock().expect("connection queue poisoned");
        state.connections.push_back(connection);
        drop(state);
        self.available.notify_one();
    }

    /// Pop the next connection, blocking until one is available. Returns
    /// `None` once the queue is closed *and* empty (shutdown).
    fn pop(&self) -> Option<(PooledConnection, usize)> {
        let mut state = self.state.lock().expect("connection queue poisoned");
        loop {
            if let Some(connection) = state.connections.pop_front() {
                return Some((connection, state.connections.len()));
            }
            if state.closed {
                return None;
            }
            state = self
                .available
                .wait(state)
                .expect("connection queue poisoned");
        }
    }

    fn close(&self) {
        self.state.lock().expect("connection queue poisoned").closed = true;
        self.available.notify_all();
    }
}

/// Bind `addr` and serve `engine` on a worker pool until shut down.
///
/// Returns immediately with a [`ServerHandle`]; accepting and serving happen
/// on background threads. Bind to port 0 for an ephemeral port (tests, CI).
pub fn spawn(
    addr: impl ToSocketAddrs,
    engine: Arc<QueryEngine>,
    config: &ServerConfig,
) -> Result<ServerHandle, ServeError> {
    let workers = config.workers.max(1);
    let listener = TcpListener::bind(addr)?;
    let local_addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));

    let idle_timeout = config.idle_timeout;
    let queue = Arc::new(ConnQueue::new());
    for worker_id in 0..workers {
        let queue = Arc::clone(&queue);
        let engine = Arc::clone(&engine);
        std::thread::Builder::new()
            .name(format!("imserve-worker-{worker_id}"))
            .spawn(move || worker_loop(&queue, &engine, idle_timeout))
            .expect("worker thread spawns");
    }

    let stop_flag = Arc::clone(&stop);
    let obs = Arc::clone(engine.obs());
    let acceptor = std::thread::Builder::new()
        .name("imserve-acceptor".to_string())
        .spawn(move || {
            for stream in listener.incoming() {
                if stop_flag.load(Ordering::SeqCst) {
                    queue.close();
                    return;
                }
                match stream {
                    Ok(stream) => {
                        let _ = stream.set_nodelay(true);
                        queue.push(PooledConnection {
                            stream,
                            lines: LineBuffer::new(),
                            last_activity: Instant::now(),
                            _gauge: ConnGauge::open(&obs),
                        });
                    }
                    Err(_) => continue,
                }
            }
            queue.close();
        })
        .expect("acceptor thread spawns");

    Ok(ServerHandle {
        addr: local_addr,
        stop,
        acceptor: Some(acceptor),
    })
}

/// How long a worker pauses after cycling through the whole queue without
/// finding any readable connection, bounding the poll rate while every
/// client is idle. New requests wait at most this long plus queue delay.
const IDLE_PAUSE: Duration = Duration::from_micros(500);

/// One worker: take a connection, serve the requests it has ready, release
/// it, repeat. Exits when the queue closes and drains.
fn worker_loop(queue: &ConnQueue, engine: &QueryEngine, idle_timeout: Option<Duration>) {
    let mut scratch = engine.new_scratch();
    // Consecutive turns without progress; once it covers the whole queue,
    // every connection is idle and the worker backs off briefly.
    let mut fruitless_turns = 0usize;
    while let Some((mut connection, queued_behind)) = queue.pop() {
        match serve_turn(engine, &mut connection, &mut scratch) {
            Ok(progress) => {
                let expired =
                    idle_timeout.is_some_and(|limit| connection.last_activity.elapsed() > limit);
                if expired {
                    // Idle past the bound: drop the connection (and with it
                    // its queue slot). Buffered partial lines die with it.
                    fruitless_turns = 0;
                    continue;
                }
                queue.push(connection);
                if progress {
                    fruitless_turns = 0;
                } else {
                    fruitless_turns += 1;
                    if fruitless_turns > queued_behind {
                        std::thread::sleep(IDLE_PAUSE);
                        fruitless_turns = 0;
                    }
                }
            }
            // Closed or broken connection: drop it.
            Err(_) => fruitless_turns = 0,
        }
    }
}

/// Serve one turn on `connection`: drain readable bytes without blocking,
/// answer every complete request line in order, and report whether anything
/// happened. `Err` means the connection is finished (EOF or I/O/framing
/// failure) and must not be requeued.
fn serve_turn(
    engine: &QueryEngine,
    connection: &mut PooledConnection,
    scratch: &mut im_core::EstimateScratch,
) -> Result<bool, ServeError> {
    // Probe without blocking so an idle connection costs this worker nothing
    // but the probe; the socket is restored to blocking before replies are
    // written (a slow-reading client throttles only its own turn).
    connection.stream.set_nonblocking(true)?;
    let mut chunk = [0u8; 8192];
    let mut saw_eof = false;
    let mut read_any = false;
    loop {
        match connection.stream.read(&mut chunk) {
            Ok(0) => {
                saw_eof = true;
                break;
            }
            Ok(n) => {
                connection.lines.extend(&chunk[..n]);
                read_any = true;
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    connection.stream.set_nonblocking(false)?;
    if read_any {
        connection.last_activity = Instant::now();
    }

    let mut answered = false;
    while let Some(line) = connection.lines.next_line() {
        let line =
            line.map_err(|_| ServeError::Protocol("request line is not valid UTF-8".to_string()))?;
        if line.trim().is_empty() {
            continue;
        }
        let reply = answer_line(engine, &line, scratch, None)?;
        connection.stream.write_all(reply.as_bytes())?;
        connection.stream.write_all(b"\n")?;
        answered = true;
    }
    if saw_eof {
        return Err(ServeError::Protocol("connection closed".to_string()));
    }
    Ok(read_any || answered)
}

/// Answer one request line in the dialect it arrived in — the shared core of
/// both front ends (threaded pool and reactor), which is what makes their
/// responses byte-identical.
///
/// An id-tagged v2 [`RequestFrame`] gets an id-matched [`ResponseFrame`]
/// with the typed error taxonomy; a bare v1 [`Request`] gets a bare
/// [`Response`] (errors flattened into `Response::Error`). The two dialects
/// are structurally disjoint on the wire, so detection is just "try v2
/// first" — and v1 clients keep working against either server unchanged.
///
/// Every answered line records a request span: parse, execute and encode
/// durations, plus the `queue_wait_micros` the front end measured before
/// this call (the reactor's dispatch-to-worker gap; the threaded pool
/// passes `None`). The span joins the client's trace id when the v2 frame
/// carries one (`"t"`), so a router's fan-out legs stitch into the original
/// request's trace; otherwise a fresh process-unique id is minted. Slow
/// spans land in the engine's slow-query log. None of this touches the
/// reply bytes.
pub(crate) fn answer_line(
    engine: &QueryEngine,
    line: &str,
    scratch: &mut im_core::EstimateScratch,
    queue_wait_micros: Option<u64>,
) -> Result<String, ServeError> {
    let obs = engine.obs();
    let began = Instant::now();
    if let Some(wait) = queue_wait_micros {
        obs.queue_wait_micros.record(wait);
    }
    match protocol::decode::<RequestFrame>(line) {
        Ok(frame) => {
            let parse_micros = began.elapsed().as_micros() as u64;
            let trace = frame.trace.unwrap_or_else(imobs::next_trace_id);
            let mut span = imobs::Span::begin(trace);
            if let Some(wait) = queue_wait_micros {
                span.event_with_micros("queue_wait", wait);
            }
            span.event_with_micros("parse", parse_micros);
            let executed = Instant::now();
            let body = if frame.v == PROTOCOL_VERSION {
                match engine.handle_service(&frame.req, scratch) {
                    Ok(response) => Outcome::Ok(response),
                    Err(e) => Outcome::Err(WireError::from_service(&e)),
                }
            } else {
                Outcome::Err(WireError {
                    kind: ErrorKind::Unsupported,
                    message: format!(
                        "frame version {} not supported (this server speaks \
                         {PROTOCOL_VERSION})",
                        frame.v
                    ),
                })
            };
            span.event_with_micros("execute", executed.elapsed().as_micros() as u64);
            let encoded = Instant::now();
            let reply = protocol::encode(&ResponseFrame {
                v: PROTOCOL_VERSION,
                id: frame.id,
                body,
            });
            span.event_with_micros("encode", encoded.elapsed().as_micros() as u64);
            let mut record = span.finish();
            // Total = queue wait + everything measured here (the span began
            // after parse, so its own clock misses the front of the line).
            record.total_micros =
                queue_wait_micros.unwrap_or(0) + began.elapsed().as_micros() as u64;
            obs.observe_span(record);
            reply
        }
        // Not a complete v2 frame. If the version/id envelope still parses,
        // the line *is* v2 with an unrecognized or malformed request payload
        // (e.g. a newer client's variant): answer an id-tagged error so a
        // pipelining client stays in sync. Otherwise fall back to the v1
        // dialect.
        Err(frame_error) => match protocol::decode::<FrameEnvelope>(line) {
            Ok(envelope) => {
                obs.parse_errors.inc();
                protocol::encode(&ResponseFrame {
                    v: PROTOCOL_VERSION,
                    id: envelope.id,
                    body: Outcome::Err(WireError {
                        kind: ErrorKind::Unsupported,
                        message: format!(
                            "unrecognized or malformed v2 request payload: {frame_error}"
                        ),
                    }),
                })
            }
            Err(_) => {
                let parse_micros = began.elapsed().as_micros() as u64;
                let parsed = protocol::decode::<Request>(line);
                let mut span = imobs::Span::begin(imobs::next_trace_id());
                if let Some(wait) = queue_wait_micros {
                    span.event_with_micros("queue_wait", wait);
                }
                span.event_with_micros("parse", parse_micros);
                let executed = Instant::now();
                let response = match parsed {
                    Ok(request) => engine.handle(&request, scratch),
                    Err(e) => {
                        obs.parse_errors.inc();
                        Response::Error {
                            message: e.to_string(),
                        }
                    }
                };
                span.event_with_micros("execute", executed.elapsed().as_micros() as u64);
                let reply = protocol::encode(&response);
                let mut record = span.finish();
                record.total_micros =
                    queue_wait_micros.unwrap_or(0) + began.elapsed().as_micros() as u64;
                obs.observe_span(record);
                reply
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::build_dataset_index;

    #[test]
    fn serves_and_shuts_down() {
        let engine = Arc::new(
            QueryEngine::builder(build_dataset_index("karate", "uc0.1", 1_000, 3).unwrap())
                .build()
                .unwrap(),
        );
        let handle = spawn(
            "127.0.0.1:0",
            Arc::clone(&engine),
            &ServerConfig {
                workers: 2,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let addr = handle.addr();
        assert_ne!(addr.port(), 0, "ephemeral port must be resolved");

        let response = crate::client::Connection::open(addr)
            .unwrap()
            .roundtrip(&Request::Ping)
            .unwrap();
        assert_eq!(response, Response::Pong);
        handle.shutdown();
    }

    #[test]
    fn idle_connections_do_not_pin_the_worker_pool() {
        let engine = Arc::new(
            QueryEngine::builder(build_dataset_index("karate", "uc0.1", 500, 3).unwrap())
                .build()
                .unwrap(),
        );
        let handle = spawn(
            "127.0.0.1:0",
            Arc::clone(&engine),
            &ServerConfig {
                workers: 1,
                idle_timeout: Some(std::time::Duration::from_millis(100)),
            },
        )
        .unwrap();
        let addr = handle.addr();
        // Occupy the single worker with a connection that never sends a byte.
        let idle = TcpStream::connect(addr).unwrap();
        // A real client must still be served once the idler times out.
        let response = crate::client::query_once(addr, &Request::Ping).unwrap();
        assert_eq!(response, Response::Pong);
        drop(idle);
        handle.shutdown();
    }

    #[test]
    fn one_worker_interleaves_many_live_connections() {
        // The requeue design's defining property: a single worker serves
        // several concurrently-open connections request by request, instead
        // of pinning the first one to completion.
        let engine = Arc::new(
            QueryEngine::builder(build_dataset_index("karate", "uc0.1", 500, 3).unwrap())
                .build()
                .unwrap(),
        );
        let handle = spawn(
            "127.0.0.1:0",
            Arc::clone(&engine),
            &ServerConfig {
                workers: 1,
                idle_timeout: Some(std::time::Duration::from_secs(5)),
            },
        )
        .unwrap();
        let addr = handle.addr();
        let mut connections: Vec<crate::client::Connection> = (0..4)
            .map(|_| crate::client::Connection::open(addr).unwrap())
            .collect();
        // Round-robin requests: every connection stays open while every
        // other one is served — impossible under connection-pinned workers.
        for _round in 0..3 {
            for connection in &mut connections {
                let response = connection.roundtrip(&Request::Ping).unwrap();
                assert_eq!(response, Response::Pong);
            }
        }
        handle.shutdown();
    }
}
