//! Deterministic mutation-workload generators.
//!
//! The proptest suite, the `evolve` experiment and the maintenance bench all
//! need streams of *valid* random mutations against an evolving graph; this
//! module is the one place that logic lives so every consumer exercises the
//! same mix.

use imgraph::{GraphDelta, MutableInfluenceGraph};
use imrand::Rng32;

/// The probability palette new/updated edges draw from. A small fixed set
/// keeps workloads reproducible across float formatting and covers the
/// paper's uniform-cascade range including the deterministic `p = 1` edge.
pub const PROBABILITY_PALETTE: [f64; 5] = [0.01, 0.1, 0.25, 0.5, 1.0];

/// Draw one valid mutation for the current state of `graph`.
///
/// The mix is 1/4 insert, 1/4 delete, 1/2 probability update (updates are
/// the common case for a live influence network: interaction strengths drift
/// far more often than topology). On an edgeless graph the only valid
/// mutation is an insert.
///
/// # Panics
///
/// Panics if the graph has no vertices.
pub fn random_delta<R: Rng32>(graph: &MutableInfluenceGraph, rng: &mut R) -> GraphDelta {
    let n = graph.num_vertices();
    assert!(n > 0, "cannot mutate an empty graph");
    let m = graph.num_edges();
    let kind = if m == 0 { 0 } else { rng.gen_index(4) };
    match kind {
        0 => GraphDelta::InsertEdge {
            source: rng.gen_index(n) as u32,
            target: rng.gen_index(n) as u32,
            probability: PROBABILITY_PALETTE[rng.gen_index(PROBABILITY_PALETTE.len())],
        },
        1 => {
            let (source, target) = graph.edges()[rng.gen_index(m)];
            GraphDelta::DeleteEdge { source, target }
        }
        _ => {
            let (source, target) = graph.edges()[rng.gen_index(m)];
            GraphDelta::SetProbability {
                source,
                target,
                probability: PROBABILITY_PALETTE[rng.gen_index(PROBABILITY_PALETTE.len())],
            }
        }
    }
}

/// Draw a sequence of `count` valid mutations, applying each to a scratch
/// copy of `graph` so later deltas stay valid against the evolved state.
///
/// Returns the deltas only; the caller replays them wherever needed.
pub fn random_deltas<R: Rng32>(
    graph: &MutableInfluenceGraph,
    count: usize,
    rng: &mut R,
) -> Vec<GraphDelta> {
    let mut scratch = graph.clone();
    let mut deltas = Vec::with_capacity(count);
    for _ in 0..count {
        let delta = random_delta(&scratch, rng);
        scratch
            .apply(&delta)
            .expect("random_delta only produces valid mutations");
        deltas.push(delta);
    }
    deltas
}

/// Draw one valid **structural** mutation (insert or delete, never a
/// probability patch) for the current state of `graph`.
///
/// Structural deltas are the expensive kind — each forces a CSR
/// re-materialization on the per-delta maintenance path — so this is the
/// workload that separates batched from per-delta application (the
/// `imdyn_batch_apply` bench and the `compaction` experiment). The mix is
/// 1/2 insert, 1/2 delete on a graph with edges; insert-only when edgeless.
///
/// # Panics
///
/// Panics if the graph has no vertices.
pub fn random_structural_delta<R: Rng32>(graph: &MutableInfluenceGraph, rng: &mut R) -> GraphDelta {
    let n = graph.num_vertices();
    assert!(n > 0, "cannot mutate an empty graph");
    let m = graph.num_edges();
    if m == 0 || rng.gen_index(2) == 0 {
        GraphDelta::InsertEdge {
            source: rng.gen_index(n) as u32,
            target: rng.gen_index(n) as u32,
            probability: PROBABILITY_PALETTE[rng.gen_index(PROBABILITY_PALETTE.len())],
        }
    } else {
        let (source, target) = graph.edges()[rng.gen_index(m)];
        GraphDelta::DeleteEdge { source, target }
    }
}

/// Draw a sequence of `count` valid structural mutations (the
/// structural-delta-heavy analog of [`random_deltas`]).
pub fn random_structural_deltas<R: Rng32>(
    graph: &MutableInfluenceGraph,
    count: usize,
    rng: &mut R,
) -> Vec<GraphDelta> {
    let mut scratch = graph.clone();
    let mut deltas = Vec::with_capacity(count);
    for _ in 0..count {
        let delta = random_structural_delta(&scratch, rng);
        scratch
            .apply(&delta)
            .expect("random_structural_delta only produces valid mutations");
        deltas.push(delta);
    }
    deltas
}

#[cfg(test)]
mod tests {
    use super::*;
    use imgraph::{DiGraph, InfluenceGraph};
    use imrand::Pcg32;

    fn diamond() -> MutableInfluenceGraph {
        let g = DiGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        MutableInfluenceGraph::from_graph(&InfluenceGraph::new(g, vec![0.5, 0.25, 1.0, 0.125]))
    }

    #[test]
    fn random_deltas_are_always_applicable() {
        let graph = diamond();
        for seed in 0..20u64 {
            let mut rng = Pcg32::seed_from_u64(seed);
            let deltas = random_deltas(&graph, 30, &mut rng);
            assert_eq!(deltas.len(), 30);
            let mut replay = graph.clone();
            for delta in &deltas {
                replay.apply(delta).expect("workload deltas must be valid");
            }
        }
    }

    #[test]
    fn edgeless_graphs_only_insert() {
        let empty = MutableInfluenceGraph::new(3);
        let mut rng = Pcg32::seed_from_u64(1);
        for _ in 0..10 {
            assert!(matches!(
                random_delta(&empty, &mut rng),
                GraphDelta::InsertEdge { .. }
            ));
        }
    }

    #[test]
    fn workload_is_deterministic_per_seed() {
        let graph = diamond();
        let a = random_deltas(&graph, 12, &mut Pcg32::seed_from_u64(5));
        let b = random_deltas(&graph, 12, &mut Pcg32::seed_from_u64(5));
        assert_eq!(a, b);
    }

    #[test]
    fn structural_workloads_never_patch_attributes() {
        let graph = diamond();
        let deltas = random_structural_deltas(&graph, 40, &mut Pcg32::seed_from_u64(9));
        assert_eq!(deltas.len(), 40);
        let mut replay = graph.clone();
        for delta in &deltas {
            assert!(
                !matches!(delta, GraphDelta::SetProbability { .. }),
                "structural workload produced an attribute patch"
            );
            replay.apply(delta).expect("workload deltas must be valid");
        }
        // Deterministic per seed, like the mixed workload.
        let again = random_structural_deltas(&graph, 40, &mut Pcg32::seed_from_u64(9));
        assert_eq!(deltas, again);
    }
}
