//! Sequence utilities: shuffling and sampling.
//!
//! Algorithm 3.1 of the paper shuffles the vertex order once per run so that
//! greedy tie-breaking is uniformly random; [`shuffle`] implements the
//! Fisher–Yates shuffle used for that purpose. The remaining helpers support
//! workload generation in `imnet` (sampling distinct attachment targets,
//! reservoir sampling of edges).

use crate::traits::Rng32;

/// Shuffle `slice` in place with the Fisher–Yates algorithm.
pub fn shuffle<T, R: Rng32>(slice: &mut [T], rng: &mut R) {
    let n = slice.len();
    if n < 2 {
        return;
    }
    for i in (1..n).rev() {
        let j = rng.gen_index(i + 1);
        slice.swap(i, j);
    }
}

/// Return a shuffled copy of `0..n`, the random vertex order of Algorithm 3.1.
#[must_use]
pub fn random_permutation<R: Rng32>(n: usize, rng: &mut R) -> Vec<u32> {
    let mut perm: Vec<u32> = (0..n as u32).collect();
    shuffle(&mut perm, rng);
    perm
}

/// Choose one element of `slice` uniformly at random.
///
/// Returns `None` on an empty slice.
pub fn choose<'a, T, R: Rng32>(slice: &'a [T], rng: &mut R) -> Option<&'a T> {
    if slice.is_empty() {
        None
    } else {
        Some(&slice[rng.gen_index(slice.len())])
    }
}

/// Sample `k` *distinct* values from `0..n` uniformly at random.
///
/// Used by the Barabási–Albert generator to pick distinct attachment targets.
/// Uses Floyd's algorithm, which performs exactly `k` insertions regardless of
/// `n`, so sampling a handful of targets out of millions of vertices is cheap.
///
/// # Panics
///
/// Panics if `k > n`.
#[must_use]
pub fn sample_distinct<R: Rng32>(n: usize, k: usize, rng: &mut R) -> Vec<u32> {
    assert!(k <= n, "cannot sample {k} distinct values from 0..{n}");
    // Floyd's algorithm: for j in n-k..n, draw t in [0, j]; insert t unless
    // already present, in which case insert j.
    let mut chosen: Vec<u32> = Vec::with_capacity(k);
    for j in (n - k)..n {
        let t = rng.gen_index(j + 1) as u32;
        if chosen.contains(&t) {
            chosen.push(j as u32);
        } else {
            chosen.push(t);
        }
    }
    chosen
}

/// Reservoir-sample `k` items from an iterator of unknown length (Vitter's
/// Algorithm R). Returns fewer than `k` items if the iterator is shorter.
#[must_use]
pub fn reservoir_sample<I, T, R>(iter: I, k: usize, rng: &mut R) -> Vec<T>
where
    I: IntoIterator<Item = T>,
    R: Rng32,
{
    let mut reservoir: Vec<T> = Vec::with_capacity(k);
    if k == 0 {
        return reservoir;
    }
    for (i, item) in iter.into_iter().enumerate() {
        if i < k {
            reservoir.push(item);
        } else {
            let j = rng.gen_index(i + 1);
            if j < k {
                reservoir[j] = item;
            }
        }
    }
    reservoir
}

/// A weighted index sampler over non-negative weights (linear scan).
///
/// Used by the Chung–Lu generator where the weight array changes rarely and
/// the number of draws is proportional to the number of edges.
#[derive(Debug, Clone)]
pub struct CumulativeSampler {
    cumulative: Vec<f64>,
    total: f64,
}

impl CumulativeSampler {
    /// Build a sampler from raw non-negative weights.
    ///
    /// # Panics
    ///
    /// Panics if all weights are zero or any weight is negative/NaN.
    #[must_use]
    pub fn new(weights: &[f64]) -> Self {
        assert!(
            !weights.is_empty(),
            "CumulativeSampler needs at least one weight"
        );
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut total = 0.0f64;
        for &w in weights {
            assert!(
                w >= 0.0 && w.is_finite(),
                "weights must be finite and non-negative"
            );
            total += w;
            cumulative.push(total);
        }
        assert!(total > 0.0, "total weight must be positive");
        Self { cumulative, total }
    }

    /// Number of weights.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Whether the sampler is empty (never true for a constructed sampler).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// Draw an index with probability proportional to its weight.
    pub fn sample<R: Rng32>(&self, rng: &mut R) -> usize {
        let x = rng.next_f64() * self.total;
        // Binary search for the first cumulative weight strictly greater than x.
        match self
            .cumulative
            .binary_search_by(|&c| c.partial_cmp(&x).expect("cumulative weights are finite"))
        {
            Ok(i) => (i + 1).min(self.cumulative.len() - 1),
            Err(i) => i.min(self.cumulative.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Pcg32;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Pcg32::seed_from_u64(1);
        let mut v: Vec<u32> = (0..100).collect();
        shuffle(&mut v, &mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_handles_tiny_slices() {
        let mut rng = Pcg32::seed_from_u64(2);
        let mut empty: [u32; 0] = [];
        shuffle(&mut empty, &mut rng);
        let mut one = [7u32];
        shuffle(&mut one, &mut rng);
        assert_eq!(one, [7]);
    }

    #[test]
    fn shuffle_actually_permutes() {
        let mut rng = Pcg32::seed_from_u64(3);
        let original: Vec<u32> = (0..50).collect();
        let mut v = original.clone();
        shuffle(&mut v, &mut rng);
        assert_ne!(
            v, original,
            "a 50-element shuffle should almost surely move something"
        );
    }

    #[test]
    fn random_permutation_covers_all_values() {
        let mut rng = Pcg32::seed_from_u64(4);
        let perm = random_permutation(37, &mut rng);
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..37).collect::<Vec<_>>());
    }

    #[test]
    fn choose_none_on_empty() {
        let mut rng = Pcg32::seed_from_u64(5);
        let empty: [u32; 0] = [];
        assert!(choose(&empty, &mut rng).is_none());
        assert_eq!(choose(&[42], &mut rng), Some(&42));
    }

    #[test]
    fn sample_distinct_has_no_duplicates() {
        let mut rng = Pcg32::seed_from_u64(6);
        for _ in 0..100 {
            let s = sample_distinct(50, 10, &mut rng);
            assert_eq!(s.len(), 10);
            let mut dedup = s.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), 10, "sample contains duplicates: {s:?}");
            assert!(s.iter().all(|&x| x < 50));
        }
    }

    #[test]
    fn sample_distinct_full_range() {
        let mut rng = Pcg32::seed_from_u64(7);
        let mut s = sample_distinct(8, 8, &mut rng);
        s.sort_unstable();
        assert_eq!(s, (0..8).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn sample_distinct_rejects_oversized_k() {
        let mut rng = Pcg32::seed_from_u64(8);
        let _ = sample_distinct(3, 4, &mut rng);
    }

    #[test]
    fn reservoir_sample_short_iterator() {
        let mut rng = Pcg32::seed_from_u64(9);
        let s = reservoir_sample(0..3u32, 10, &mut rng);
        assert_eq!(s, vec![0, 1, 2]);
    }

    #[test]
    fn reservoir_sample_uniformity() {
        // Each of 10 items should appear in a size-2 reservoir with
        // probability 2/10 = 0.2.
        let mut rng = Pcg32::seed_from_u64(10);
        let mut counts = [0usize; 10];
        let trials = 50_000;
        for _ in 0..trials {
            for x in reservoir_sample(0..10u32, 2, &mut rng) {
                counts[x as usize] += 1;
            }
        }
        for (i, &c) in counts.iter().enumerate() {
            let p = c as f64 / trials as f64;
            assert!((p - 0.2).abs() < 0.02, "item {i} selected with prob {p}");
        }
    }

    #[test]
    fn cumulative_sampler_respects_weights() {
        let mut rng = Pcg32::seed_from_u64(11);
        let sampler = CumulativeSampler::new(&[1.0, 0.0, 3.0]);
        let n = 100_000;
        let mut counts = [0usize; 3];
        for _ in 0..n {
            counts[sampler.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[1], 0, "zero-weight index must never be drawn");
        let p0 = counts[0] as f64 / n as f64;
        let p2 = counts[2] as f64 / n as f64;
        assert!((p0 - 0.25).abs() < 0.02);
        assert!((p2 - 0.75).abs() < 0.02);
    }

    #[test]
    #[should_panic(expected = "total weight must be positive")]
    fn cumulative_sampler_rejects_all_zero() {
        let _ = CumulativeSampler::new(&[0.0, 0.0]);
    }
}
