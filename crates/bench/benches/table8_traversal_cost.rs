//! Table 8 bench: per-sample traversal cost at k = 1 and sample number 1.

use criterion::{criterion_group, criterion_main, Criterion};
use imexp::experiments::traversal::per_sample_costs;
use imexp::ApproachKind;
use imnet::ProbabilityModel;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("\n--- Table 8 series (Karate, k = 1, sample number 1, 500 runs) ---");
    for model in ProbabilityModel::paper_models() {
        let instance = im_bench::karate(model);
        let costs = per_sample_costs(&instance, 500);
        println!(
            "{:<7} Oneshot = {:>7.1}v/{:>8.1}e  Snapshot = {:>7.1}v/{:>8.1}e  RIS = {:>5.2}v/{:>6.2}e",
            model.label(),
            costs[0].vertices,
            costs[0].edges,
            costs[1].vertices,
            costs[1].edges,
            costs[2].vertices,
            costs[2].edges,
        );
    }

    let instance = im_bench::karate(ProbabilityModel::uc01());
    let mut group = c.benchmark_group("table8_traversal_cost");
    group.sample_size(10);
    for approach in ApproachKind::all() {
        group.bench_function(format!("single_sample_run/{}", approach.name()), |b| {
            b.iter(|| black_box(approach.with_sample_number(1).run(&instance.graph, 1, 13)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
