//! Strict argument parsing for the `imserve` binary.
//!
//! Parsing is pure (`&[String] -> Result<Command, CliError>`) so every rule —
//! unknown flags rejected, malformed numbers rejected, required flags
//! enforced — is unit-testable without spawning the binary.

use im_core::PoolLayout;
use imgraph::GraphDelta;

use crate::protocol::TopKAlgorithm;

/// A parsed invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `imserve build`: sample a pool (or one shard of a global pool) and
    /// write an index artifact.
    Build {
        /// Registry dataset name.
        dataset: String,
        /// Probability-model label.
        model: String,
        /// RR sets to draw (the *global* pool size when `--shard` is given).
        pool: usize,
        /// Base seed of the pool sample.
        seed: u64,
        /// Output path of the artifact.
        out: String,
        /// Optional delta-script path: mutations applied to the dataset graph
        /// *before* sampling (the from-scratch reference for a mutated index).
        deltas: Option<String>,
        /// `--shard i/N`: build shard `i` of `N` over the global pool (the
        /// local sets' PRNG streams derive from their global ids, so the N
        /// artifacts union byte-identically into the whole-pool build).
        shard: Option<(usize, usize)>,
        /// Physical pool-store layout persisted in the artifact: `raw`
        /// (`POOL` section), `compressed` or `tiered` (`PCMP` section).
        pool_layout: PoolLayout,
    },
    /// `imserve serve`: load an index and answer TCP queries.
    Serve {
        /// Index artifact path.
        index: String,
        /// Bind address (`host:port`; port 0 picks an ephemeral port).
        addr: String,
        /// Front end: the event-driven reactor (default) or the threaded
        /// turn-queue fallback (`--threaded`).
        reactor: bool,
        /// Worker threads (reactor: compute-pool threads; threaded: turn
        /// workers).
        workers: usize,
        /// `TopK` LRU cache capacity.
        cache: usize,
        /// Auto-compaction: fold the pending log once it reaches this many
        /// deltas (`None` disables the log-length trigger).
        compact_log_len: Option<usize>,
        /// Auto-compaction: fold the pending log once resampling since the
        /// last compaction reaches this fraction of the pool (`None`
        /// disables the dirty-fraction trigger).
        compact_dirty: Option<f64>,
        /// Mutation write-ahead log path: accepted mutations are appended
        /// before they are acknowledged and replayed on startup, so they
        /// survive a crash between index saves.
        wal: Option<String>,
        /// Optional bind address of the Prometheus-style plaintext metrics
        /// endpoint (`None` disables scraping; the wire `Metrics` request
        /// still works).
        metrics_addr: Option<String>,
        /// Slow-query log threshold in microseconds: request spans at or
        /// above it land in the ring buffer rendered with the scrape.
        slow_micros: u64,
        /// Bind address of the replication listener (leader mode): followers
        /// dial it and tail this server's WAL. Requires `--wal`.
        repl_addr: Option<String>,
        /// Leader address to follow (follower mode): the engine starts
        /// read-only and applies the leader's WAL stream until promoted.
        follow: Option<String>,
        /// Override the loaded artifact's pool layout before serving
        /// (`None` keeps the persisted layout). Note a `tiered` override on
        /// a `POOL` artifact stays fully resident — cold demotion needs the
        /// artifact itself to carry a `PCMP` section.
        pool_layout: Option<PoolLayout>,
    },
    /// `imserve reload`: hot-swap a running server's index for a freshly
    /// validated artifact (same identity, epoch and lineage; typically a
    /// compacted copy) without restarting or dropping in-flight queries.
    Reload {
        /// Server address.
        addr: String,
        /// Artifact path on the *server's* filesystem.
        index: String,
    },
    /// `imserve promote`: turn a read-only follower writable, optionally
    /// verifying its replication cursor reached the leader's last
    /// acknowledged epoch first.
    Promote {
        /// Follower address.
        addr: String,
        /// Refuse unless the follower's cursor reached this epoch.
        expected_epoch: Option<u64>,
    },
    /// `imserve route`: a long-lived router process over N shard servers,
    /// exposing the cluster's operational surface — federated `/metrics`,
    /// `/events`, `/healthz` and `/readyz` — on `--metrics-addr`. Shard
    /// connections re-establish themselves, so readiness recovers when a
    /// dead shard comes back.
    Route {
        /// Shard server addresses (one per shard backend).
        addrs: Vec<String>,
        /// Bind address of the operational HTTP endpoint.
        metrics_addr: String,
        /// Per-shard deadline in milliseconds, so a dead shard degrades
        /// `/readyz` loudly instead of hanging the probe.
        deadline_ms: u64,
    },
    /// `imserve query`: one-shot client request. With several `--addr`s the
    /// query routes through a `ShardedService` over all of them.
    Query {
        /// Server addresses (one per shard backend).
        addrs: Vec<String>,
        /// The request to send.
        request: QuerySpec,
        /// Speak the bare v1 dialect instead of protocol v2 (single
        /// address only; compatibility tooling).
        v1: bool,
    },
    /// `imserve mutate`: apply a batch of graph deltas to a running server
    /// (with several `--addr`s, broadcast through a `ShardedService`;
    /// requires `--batch`).
    Mutate {
        /// Server addresses (one per shard backend).
        addrs: Vec<String>,
        /// The deltas to apply, in command-line order.
        deltas: Vec<GraphDelta>,
        /// Send the atomic `MutateBatch` request (all-or-nothing, one CSR
        /// re-materialization) instead of per-delta `Mutate`.
        batch: bool,
    },
    /// `imserve compact`: fold a pending delta log into its snapshot
    /// watermark — on a running server (`--addr`) or offline on an artifact
    /// file (`--index`/`--out`).
    Compact {
        /// What to compact.
        target: CompactTarget,
    },
    /// `imserve loadtest`: hammer a server (or, with several `--addr`s, a
    /// sharded deployment) and report latency percentiles.
    Loadtest {
        /// Server addresses (one per shard backend).
        addrs: Vec<String>,
        /// Concurrent connections.
        connections: usize,
        /// Requests per connection.
        requests: usize,
        /// `TopK` seed-set size in the request mix.
        k: usize,
        /// Open-loop arrival rate in requests/second across all connections
        /// (`None` = closed loop).
        arrival_rps: Option<u64>,
    },
}

/// What `imserve compact` should act on.
#[derive(Debug, Clone, PartialEq)]
pub enum CompactTarget {
    /// Send a `Compact` request to a running server.
    Server {
        /// Server address.
        addr: String,
    },
    /// Compact an artifact file offline, writing the result to `out`.
    File {
        /// Input artifact path.
        index: String,
        /// Output artifact path (may equal `index` to compact in place).
        out: String,
    },
}

/// What `imserve query` should send.
#[derive(Debug, Clone, PartialEq)]
pub enum QuerySpec {
    /// `--estimate 0,5,9`
    Estimate(Vec<u32>),
    /// `--topk 3 [--algorithm greedy|singleton]`
    TopK(usize, TopKAlgorithm),
    /// `--info`
    Info,
    /// `--stats`
    Stats,
    /// `--metrics`
    Metrics,
    /// `--health`
    Health,
    /// `--events`
    Events,
}

/// A parse failure: human-readable, printed with usage by `main`.
#[derive(Debug, Clone, PartialEq)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

/// One-line usage summary per subcommand.
pub const USAGE: &str = "usage:
  imserve build    --dataset <name> [--model uc0.1|uc0.01|iwc|owc] [--pool N] [--seed S] [--deltas <script>] [--shard i/N] [--pool-layout raw|compressed|tiered] --out <path>
  imserve serve    --index <path> [--addr host:port] [--reactor | --threaded] [--workers N] [--cache N] [--compact-log-len N] [--compact-dirty F] [--wal <path>] [--metrics-addr host:port] [--slow-micros N] [--repl-addr host:port] [--follow host:port] [--pool-layout raw|compressed|tiered]
  imserve route    --addr host:port[|replica…] [--addr …] --metrics-addr host:port [--deadline-ms N]
  imserve reload   --addr host:port --index <path>
  imserve promote  --addr host:port [--expected-epoch N]
  imserve query    --addr host:port [--addr …] [--v1] (--estimate v1,v2,… | --topk K [--algorithm greedy|singleton] | --info | --stats | --metrics | --health | --events)
  imserve mutate   --addr host:port [--addr …] [--batch] (--insert u,v,p | --delete u,v | --setp u,v,p | --file <script>)…
  imserve compact  (--addr host:port | --index <path> --out <path>)
  imserve loadtest --addr host:port [--addr …] [--connections N] [--requests N] [--k K] [--arrival-rps R]

delta scripts hold one JSON delta per line, e.g. {\"InsertEdge\":{\"source\":0,\"target\":33,\"probability\":0.5}}
--batch applies the deltas atomically (all-or-nothing, one CSR rebuild); --compact-* enable auto-compaction
--shard i/N builds shard i of a global pool; several --addr values route queries through a sharded service
--wal <path> makes accepted mutations crash-durable between index saves; --v1 speaks the legacy bare-frame dialect
--reactor (default) serves every connection from one event loop; --threaded keeps the turn-queue worker pool
--arrival-rps switches the loadtest to an open-loop schedule measuring latency from each scheduled arrival
--metrics-addr exposes the operational HTTP surface (/metrics, /events, /healthz, /readyz); --slow-micros sets the slow-query log threshold
route serves the cluster's federated scrape and readiness over its shards; --deadline-ms bounds each shard probe
--repl-addr (with --wal) streams this server's WAL to followers; --follow makes a read-only replica of the given leader
route --addr takes |-separated replicas per shard (leader first): reads fail over to a caught-up follower
reload hot-swaps a validated artifact into a running server; promote turns a follower writable (--expected-epoch names the epoch it must have reached)
--pool-layout picks the pool storage engine: raw lists, delta-varint compressed, or tiered (compressed with cold blocks left in the artifact file)";

/// Parse a flag's numeric value, naming the flag in the error.
///
/// Shared with `imexp`'s argument parser, so value-parsing errors read the
/// same across the workspace binaries.
pub fn parse_number<T: std::str::FromStr>(flag: &str, value: &str) -> Result<T, CliError> {
    value
        .parse()
        .map_err(|_| CliError(format!("malformed value {value:?} for {flag}")))
}

/// A flag's value, erroring when it is missing (shared with `imexp`).
pub fn take_value<'a>(flag: &str, args: &'a [String], i: &mut usize) -> Result<&'a str, CliError> {
    *i += 1;
    args.get(*i)
        .map(String::as_str)
        .ok_or_else(|| CliError(format!("{flag} requires a value")))
}

fn parse_seed_list(value: &str) -> Result<Vec<u32>, CliError> {
    let seeds: Result<Vec<u32>, _> = value
        .split(',')
        .map(|s| {
            s.trim()
                .parse::<u32>()
                .map_err(|_| CliError(format!("malformed seed list entry {s:?}")))
        })
        .collect();
    let seeds = seeds?;
    if seeds.is_empty() {
        return Err(CliError("seed list must not be empty".to_string()));
    }
    Ok(seeds)
}

/// Parse the arguments after the program name.
pub fn parse(args: &[String]) -> Result<Command, CliError> {
    let Some(subcommand) = args.first() else {
        return Err(CliError("missing subcommand".to_string()));
    };
    let rest = &args[1..];
    match subcommand.as_str() {
        "build" => parse_build(rest),
        "serve" => parse_serve(rest),
        "route" => parse_route(rest),
        "reload" => parse_reload(rest),
        "promote" => parse_promote(rest),
        "query" => parse_query(rest),
        "mutate" => parse_mutate(rest),
        "compact" => parse_compact(rest),
        "loadtest" => parse_loadtest(rest),
        other => Err(CliError(format!("unknown subcommand {other:?}"))),
    }
}

/// Parse `i/N` into a (shard index, shard count) pair.
fn parse_shard_spec(value: &str) -> Result<(usize, usize), CliError> {
    let Some((index, count)) = value.split_once('/') else {
        return Err(CliError(format!("--shard expects i/N — got {value:?}")));
    };
    let index: usize = parse_number("--shard", index.trim())?;
    let count: usize = parse_number("--shard", count.trim())?;
    if count == 0 {
        return Err(CliError("--shard count must be positive".to_string()));
    }
    if index >= count {
        return Err(CliError(format!(
            "--shard index {index} out of range for {count} shards"
        )));
    }
    Ok((index, count))
}

/// Parse a `--pool-layout` value, naming the accepted labels in the error.
fn parse_pool_layout(value: &str) -> Result<PoolLayout, CliError> {
    PoolLayout::parse(value).ok_or_else(|| {
        CliError(format!(
            "unknown pool layout {value:?} (expected raw, compressed or tiered)"
        ))
    })
}

fn parse_build(args: &[String]) -> Result<Command, CliError> {
    let mut dataset: Option<String> = None;
    let mut model = "uc0.1".to_string();
    let mut pool = 100_000usize;
    let mut seed = 7u64;
    let mut out: Option<String> = None;
    let mut deltas: Option<String> = None;
    let mut shard: Option<(usize, usize)> = None;
    let mut pool_layout = PoolLayout::Raw;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--dataset" => dataset = Some(take_value("--dataset", args, &mut i)?.to_string()),
            "--model" => model = take_value("--model", args, &mut i)?.to_string(),
            "--pool" => pool = parse_number("--pool", take_value("--pool", args, &mut i)?)?,
            "--seed" => seed = parse_number("--seed", take_value("--seed", args, &mut i)?)?,
            "--out" => out = Some(take_value("--out", args, &mut i)?.to_string()),
            "--deltas" => deltas = Some(take_value("--deltas", args, &mut i)?.to_string()),
            "--shard" => shard = Some(parse_shard_spec(take_value("--shard", args, &mut i)?)?),
            "--pool-layout" => {
                pool_layout = parse_pool_layout(take_value("--pool-layout", args, &mut i)?)?;
            }
            other => return Err(CliError(format!("unknown option {other:?} for build"))),
        }
        i += 1;
    }
    if pool == 0 {
        return Err(CliError("--pool must be positive".to_string()));
    }
    if let Some((_, count)) = shard {
        if pool < count {
            return Err(CliError(format!(
                "--pool {pool} cannot feed {count} non-empty shards"
            )));
        }
        if deltas.is_some() {
            return Err(CliError(
                "--shard cannot be combined with --deltas (mutate the served shards instead)"
                    .to_string(),
            ));
        }
    }
    Ok(Command::Build {
        dataset: dataset.ok_or_else(|| CliError("build requires --dataset".to_string()))?,
        model,
        pool,
        seed,
        out: out.ok_or_else(|| CliError("build requires --out".to_string()))?,
        deltas,
        shard,
        pool_layout,
    })
}

/// Parse `u,v` into endpoints.
fn parse_edge_pair(flag: &str, value: &str) -> Result<(u32, u32), CliError> {
    let parts: Vec<&str> = value.split(',').collect();
    if parts.len() != 2 {
        return Err(CliError(format!("{flag} expects u,v — got {value:?}")));
    }
    Ok((
        parse_number(flag, parts[0].trim())?,
        parse_number(flag, parts[1].trim())?,
    ))
}

/// Parse `u,v,p` into endpoints and a probability.
fn parse_edge_triple(flag: &str, value: &str) -> Result<(u32, u32, f64), CliError> {
    let parts: Vec<&str> = value.split(',').collect();
    if parts.len() != 3 {
        return Err(CliError(format!("{flag} expects u,v,p — got {value:?}")));
    }
    let p: f64 = parse_number(flag, parts[2].trim())?;
    if !imgraph::is_valid_probability(p) {
        return Err(CliError(format!("{flag} probability {p} outside (0, 1]")));
    }
    Ok((
        parse_number(flag, parts[0].trim())?,
        parse_number(flag, parts[1].trim())?,
        p,
    ))
}

fn parse_mutate(args: &[String]) -> Result<Command, CliError> {
    let mut addrs: Vec<String> = Vec::new();
    let mut deltas: Vec<GraphDelta> = Vec::new();
    let mut batch = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => addrs.push(take_value("--addr", args, &mut i)?.to_string()),
            "--batch" => batch = true,
            "--insert" => {
                let (source, target, probability) =
                    parse_edge_triple("--insert", take_value("--insert", args, &mut i)?)?;
                deltas.push(GraphDelta::InsertEdge {
                    source,
                    target,
                    probability,
                });
            }
            "--delete" => {
                let (source, target) =
                    parse_edge_pair("--delete", take_value("--delete", args, &mut i)?)?;
                deltas.push(GraphDelta::DeleteEdge { source, target });
            }
            "--setp" => {
                let (source, target, probability) =
                    parse_edge_triple("--setp", take_value("--setp", args, &mut i)?)?;
                deltas.push(GraphDelta::SetProbability {
                    source,
                    target,
                    probability,
                });
            }
            "--file" => {
                let path = take_value("--file", args, &mut i)?;
                let text = std::fs::read_to_string(path)
                    .map_err(|e| CliError(format!("cannot read delta script {path:?}: {e}")))?;
                deltas.extend(
                    crate::protocol::parse_delta_script(&text)
                        .map_err(|e| CliError(e.to_string()))?,
                );
            }
            other => return Err(CliError(format!("unknown option {other:?} for mutate"))),
        }
        i += 1;
    }
    if deltas.is_empty() {
        return Err(CliError(
            "mutate requires at least one of --insert, --delete, --setp or --file".to_string(),
        ));
    }
    if addrs.is_empty() {
        return Err(CliError("mutate requires --addr".to_string()));
    }
    if addrs.len() > 1 && !batch {
        return Err(CliError(
            "mutating several shards requires --batch (the broadcast is per-shard atomic)"
                .to_string(),
        ));
    }
    Ok(Command::Mutate {
        addrs,
        deltas,
        batch,
    })
}

fn parse_compact(args: &[String]) -> Result<Command, CliError> {
    let mut addr: Option<String> = None;
    let mut index: Option<String> = None;
    let mut out: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => addr = Some(take_value("--addr", args, &mut i)?.to_string()),
            "--index" => index = Some(take_value("--index", args, &mut i)?.to_string()),
            "--out" => out = Some(take_value("--out", args, &mut i)?.to_string()),
            other => return Err(CliError(format!("unknown option {other:?} for compact"))),
        }
        i += 1;
    }
    let target = match (addr, index, out) {
        (Some(addr), None, None) => CompactTarget::Server { addr },
        (None, Some(index), Some(out)) => CompactTarget::File { index, out },
        (None, Some(_), None) => {
            return Err(CliError("compact --index requires --out".to_string()))
        }
        (None, None, _) => {
            return Err(CliError(
                "compact requires --addr or --index/--out".to_string(),
            ))
        }
        (Some(_), _, _) => {
            return Err(CliError(
                "compact accepts either --addr or --index/--out, not both".to_string(),
            ))
        }
    };
    Ok(Command::Compact { target })
}

fn parse_serve(args: &[String]) -> Result<Command, CliError> {
    let mut index: Option<String> = None;
    let mut addr = "127.0.0.1:7431".to_string();
    let mut reactor: Option<bool> = None;
    let mut workers = 4usize;
    let mut cache = crate::engine::DEFAULT_CACHE_CAPACITY;
    let mut compact_log_len: Option<usize> = None;
    let mut compact_dirty: Option<f64> = None;
    let mut wal: Option<String> = None;
    let mut metrics_addr: Option<String> = None;
    let mut slow_micros = crate::obs::DEFAULT_SLOW_THRESHOLD_MICROS;
    let mut repl_addr: Option<String> = None;
    let mut follow: Option<String> = None;
    let mut pool_layout: Option<PoolLayout> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--index" => index = Some(take_value("--index", args, &mut i)?.to_string()),
            "--pool-layout" => {
                pool_layout = Some(parse_pool_layout(take_value(
                    "--pool-layout",
                    args,
                    &mut i,
                )?)?);
            }
            "--wal" => wal = Some(take_value("--wal", args, &mut i)?.to_string()),
            "--addr" => addr = take_value("--addr", args, &mut i)?.to_string(),
            "--repl-addr" => {
                repl_addr = Some(take_value("--repl-addr", args, &mut i)?.to_string());
            }
            "--follow" => follow = Some(take_value("--follow", args, &mut i)?.to_string()),
            "--metrics-addr" => {
                metrics_addr = Some(take_value("--metrics-addr", args, &mut i)?.to_string());
            }
            "--slow-micros" => {
                slow_micros =
                    parse_number("--slow-micros", take_value("--slow-micros", args, &mut i)?)?;
            }
            "--reactor" => {
                if reactor == Some(false) {
                    return Err(CliError(
                        "--reactor and --threaded are mutually exclusive".to_string(),
                    ));
                }
                reactor = Some(true);
            }
            "--threaded" => {
                if reactor == Some(true) {
                    return Err(CliError(
                        "--reactor and --threaded are mutually exclusive".to_string(),
                    ));
                }
                reactor = Some(false);
            }
            "--workers" => {
                workers = parse_number("--workers", take_value("--workers", args, &mut i)?)?;
            }
            "--cache" => cache = parse_number("--cache", take_value("--cache", args, &mut i)?)?,
            "--compact-log-len" => {
                compact_log_len = Some(parse_number(
                    "--compact-log-len",
                    take_value("--compact-log-len", args, &mut i)?,
                )?);
            }
            "--compact-dirty" => {
                compact_dirty = Some(parse_number(
                    "--compact-dirty",
                    take_value("--compact-dirty", args, &mut i)?,
                )?);
            }
            other => return Err(CliError(format!("unknown option {other:?} for serve"))),
        }
        i += 1;
    }
    if workers == 0 {
        return Err(CliError("--workers must be positive".to_string()));
    }
    if cache == 0 {
        return Err(CliError("--cache must be positive".to_string()));
    }
    if compact_log_len == Some(0) {
        return Err(CliError("--compact-log-len must be positive".to_string()));
    }
    if let Some(f) = compact_dirty {
        if !(f > 0.0 && f.is_finite()) {
            return Err(CliError(
                "--compact-dirty must be a positive fraction".to_string(),
            ));
        }
    }
    if repl_addr.is_some() && wal.is_none() {
        return Err(CliError(
            "--repl-addr requires --wal (followers tail the write-ahead log)".to_string(),
        ));
    }
    Ok(Command::Serve {
        index: index.ok_or_else(|| CliError("serve requires --index".to_string()))?,
        addr,
        reactor: reactor.unwrap_or(true),
        workers,
        cache,
        compact_log_len,
        compact_dirty,
        wal,
        metrics_addr,
        slow_micros,
        repl_addr,
        follow,
        pool_layout,
    })
}

fn parse_reload(args: &[String]) -> Result<Command, CliError> {
    let mut addr: Option<String> = None;
    let mut index: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => addr = Some(take_value("--addr", args, &mut i)?.to_string()),
            "--index" => index = Some(take_value("--index", args, &mut i)?.to_string()),
            other => return Err(CliError(format!("unknown option {other:?} for reload"))),
        }
        i += 1;
    }
    Ok(Command::Reload {
        addr: addr.ok_or_else(|| CliError("reload requires --addr".to_string()))?,
        index: index.ok_or_else(|| CliError("reload requires --index".to_string()))?,
    })
}

fn parse_promote(args: &[String]) -> Result<Command, CliError> {
    let mut addr: Option<String> = None;
    let mut expected_epoch: Option<u64> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => addr = Some(take_value("--addr", args, &mut i)?.to_string()),
            "--expected-epoch" => {
                expected_epoch = Some(parse_number(
                    "--expected-epoch",
                    take_value("--expected-epoch", args, &mut i)?,
                )?);
            }
            other => return Err(CliError(format!("unknown option {other:?} for promote"))),
        }
        i += 1;
    }
    Ok(Command::Promote {
        addr: addr.ok_or_else(|| CliError("promote requires --addr".to_string()))?,
        expected_epoch,
    })
}

/// Per-shard probe deadline when `route` is given none.
pub const DEFAULT_ROUTE_DEADLINE_MS: u64 = 2_000;

fn parse_route(args: &[String]) -> Result<Command, CliError> {
    let mut addrs: Vec<String> = Vec::new();
    let mut metrics_addr: Option<String> = None;
    let mut deadline_ms = DEFAULT_ROUTE_DEADLINE_MS;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => addrs.push(take_value("--addr", args, &mut i)?.to_string()),
            "--metrics-addr" => {
                metrics_addr = Some(take_value("--metrics-addr", args, &mut i)?.to_string());
            }
            "--deadline-ms" => {
                deadline_ms =
                    parse_number("--deadline-ms", take_value("--deadline-ms", args, &mut i)?)?;
            }
            other => return Err(CliError(format!("unknown option {other:?} for route"))),
        }
        i += 1;
    }
    if addrs.is_empty() {
        return Err(CliError("route requires --addr".to_string()));
    }
    if deadline_ms == 0 {
        return Err(CliError("--deadline-ms must be positive".to_string()));
    }
    Ok(Command::Route {
        addrs,
        metrics_addr: metrics_addr
            .ok_or_else(|| CliError("route requires --metrics-addr".to_string()))?,
        deadline_ms,
    })
}

fn parse_query(args: &[String]) -> Result<Command, CliError> {
    let mut addrs: Vec<String> = Vec::new();
    let mut request: Option<QuerySpec> = None;
    let mut algorithm = TopKAlgorithm::Greedy;
    let mut v1 = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => addrs.push(take_value("--addr", args, &mut i)?.to_string()),
            "--v1" => v1 = true,
            "--estimate" => {
                let seeds = parse_seed_list(take_value("--estimate", args, &mut i)?)?;
                set_once(&mut request, QuerySpec::Estimate(seeds))?;
            }
            "--topk" => {
                let k: usize = parse_number("--topk", take_value("--topk", args, &mut i)?)?;
                if k == 0 {
                    return Err(CliError("--topk must be positive".to_string()));
                }
                set_once(&mut request, QuerySpec::TopK(k, algorithm))?;
            }
            "--algorithm" => {
                algorithm = TopKAlgorithm::parse(take_value("--algorithm", args, &mut i)?)
                    .map_err(|e| CliError(e.to_string()))?;
                // Applies to an already-parsed --topk as well.
                if let Some(QuerySpec::TopK(_, a)) = &mut request {
                    *a = algorithm;
                }
            }
            "--info" => set_once(&mut request, QuerySpec::Info)?,
            "--stats" => set_once(&mut request, QuerySpec::Stats)?,
            "--metrics" => set_once(&mut request, QuerySpec::Metrics)?,
            "--health" => set_once(&mut request, QuerySpec::Health)?,
            "--events" => set_once(&mut request, QuerySpec::Events)?,
            other => return Err(CliError(format!("unknown option {other:?} for query"))),
        }
        i += 1;
    }
    if addrs.is_empty() {
        return Err(CliError("query requires --addr".to_string()));
    }
    if v1 && addrs.len() > 1 {
        return Err(CliError(
            "--v1 speaks to a single server (sharded routing needs protocol v2)".to_string(),
        ));
    }
    Ok(Command::Query {
        addrs,
        request: request.ok_or_else(|| {
            CliError(
                "query requires one of --estimate, --topk, --info, --stats, --metrics, \
                 --health or --events"
                    .to_string(),
            )
        })?,
        v1,
    })
}

fn set_once(slot: &mut Option<QuerySpec>, value: QuerySpec) -> Result<(), CliError> {
    if slot.is_some() {
        return Err(CliError(
            "query accepts exactly one of --estimate, --topk, --info, --stats, --metrics, \
             --health or --events"
                .to_string(),
        ));
    }
    *slot = Some(value);
    Ok(())
}

fn parse_loadtest(args: &[String]) -> Result<Command, CliError> {
    let mut addrs: Vec<String> = Vec::new();
    let mut connections = 4usize;
    let mut requests = 250usize;
    let mut k = 3usize;
    let mut arrival_rps: Option<u64> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => addrs.push(take_value("--addr", args, &mut i)?.to_string()),
            "--connections" => {
                connections =
                    parse_number("--connections", take_value("--connections", args, &mut i)?)?;
            }
            "--requests" => {
                requests = parse_number("--requests", take_value("--requests", args, &mut i)?)?;
            }
            "--k" => k = parse_number("--k", take_value("--k", args, &mut i)?)?,
            "--arrival-rps" => {
                arrival_rps = Some(parse_number(
                    "--arrival-rps",
                    take_value("--arrival-rps", args, &mut i)?,
                )?);
            }
            other => return Err(CliError(format!("unknown option {other:?} for loadtest"))),
        }
        i += 1;
    }
    for (flag, value) in [
        ("--connections", connections),
        ("--requests", requests),
        ("--k", k),
    ] {
        if value == 0 {
            return Err(CliError(format!("{flag} must be positive")));
        }
    }
    if arrival_rps == Some(0) {
        return Err(CliError("--arrival-rps must be positive".to_string()));
    }
    if addrs.is_empty() {
        return Err(CliError("loadtest requires --addr".to_string()));
    }
    Ok(Command::Loadtest {
        addrs,
        connections,
        requests,
        k,
        arrival_rps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn build_parses_with_defaults_and_overrides() {
        let cmd = parse(&args(&["build", "--dataset", "karate", "--out", "k.imx"])).unwrap();
        assert_eq!(
            cmd,
            Command::Build {
                dataset: "karate".into(),
                model: "uc0.1".into(),
                pool: 100_000,
                seed: 7,
                out: "k.imx".into(),
                deltas: None,
                shard: None,
                pool_layout: PoolLayout::Raw,
            }
        );
        let cmd = parse(&args(&[
            "build",
            "--dataset",
            "ba-s",
            "--model",
            "iwc",
            "--pool",
            "500",
            "--seed",
            "9",
            "--out",
            "b.imx",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Build {
                dataset: "ba-s".into(),
                model: "iwc".into(),
                pool: 500,
                seed: 9,
                out: "b.imx".into(),
                deltas: None,
                shard: None,
                pool_layout: PoolLayout::Raw,
            }
        );
    }

    #[test]
    fn pool_layout_flags_parse_and_reject_unknown_labels() {
        for (label, layout) in [
            ("raw", PoolLayout::Raw),
            ("compressed", PoolLayout::Compressed),
            ("tiered", PoolLayout::Tiered),
        ] {
            match parse(&args(&[
                "build",
                "--dataset",
                "karate",
                "--out",
                "k.imx",
                "--pool-layout",
                label,
            ]))
            .unwrap()
            {
                Command::Build { pool_layout, .. } => assert_eq!(pool_layout, layout),
                other => panic!("unexpected command {other:?}"),
            }
            match parse(&args(&[
                "serve",
                "--index",
                "x.imx",
                "--pool-layout",
                label,
            ]))
            .unwrap()
            {
                Command::Serve { pool_layout, .. } => assert_eq!(pool_layout, Some(layout)),
                other => panic!("unexpected command {other:?}"),
            }
        }
        // Raw is the build default; serve keeps the persisted layout.
        match parse(&args(&["build", "--dataset", "k", "--out", "x"])).unwrap() {
            Command::Build { pool_layout, .. } => assert_eq!(pool_layout, PoolLayout::Raw),
            other => panic!("unexpected command {other:?}"),
        }
        match parse(&args(&["serve", "--index", "x.imx"])).unwrap() {
            Command::Serve { pool_layout, .. } => assert_eq!(pool_layout, None),
            other => panic!("unexpected command {other:?}"),
        }
        let err = parse(&args(&[
            "build",
            "--dataset",
            "k",
            "--out",
            "x",
            "--pool-layout",
            "zip",
        ]))
        .unwrap_err();
        assert!(err.to_string().contains("zip"), "{err}");
        assert!(parse(&args(&["serve", "--index", "x", "--pool-layout"])).is_err());
    }

    #[test]
    fn unknown_flags_are_rejected() {
        for bad in [
            vec!["build", "--dataset", "karate", "--out", "x", "--frobnicate"],
            vec!["serve", "--index", "x", "--nope"],
            vec!["query", "--addr", "a:1", "--info", "--wat"],
            vec!["loadtest", "--addr", "a:1", "--turbo"],
            vec!["mutate", "--addr", "a:1", "--insert", "0,1,0.5", "--warp"],
        ] {
            assert!(parse(&args(&bad)).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn malformed_numbers_are_rejected() {
        assert!(parse(&args(&[
            "build",
            "--dataset",
            "k",
            "--pool",
            "many",
            "--out",
            "x"
        ]))
        .is_err());
        assert!(parse(&args(&["serve", "--index", "x", "--workers", "-2"])).is_err());
        assert!(parse(&args(&["query", "--addr", "a:1", "--topk", "3.5"])).is_err());
        assert!(parse(&args(&["loadtest", "--addr", "a:1", "--requests", ""])).is_err());
    }

    #[test]
    fn missing_values_and_required_flags_are_rejected() {
        assert!(parse(&args(&["build", "--dataset"])).is_err());
        assert!(
            parse(&args(&["build", "--out", "x"])).is_err(),
            "missing --dataset"
        );
        assert!(parse(&args(&["serve"])).is_err(), "missing --index");
        assert!(
            parse(&args(&["query", "--addr", "a:1"])).is_err(),
            "missing request"
        );
        assert!(parse(&args(&["loadtest"])).is_err(), "missing --addr");
        assert!(parse(&args(&[])).is_err(), "missing subcommand");
        assert!(parse(&args(&["conquer"])).is_err(), "unknown subcommand");
    }

    #[test]
    fn zero_values_are_rejected() {
        assert!(parse(&args(&[
            "build",
            "--dataset",
            "k",
            "--pool",
            "0",
            "--out",
            "x"
        ]))
        .is_err());
        assert!(parse(&args(&["serve", "--index", "x", "--workers", "0"])).is_err());
        assert!(parse(&args(&["query", "--addr", "a:1", "--topk", "0"])).is_err());
        assert!(parse(&args(&["loadtest", "--addr", "a:1", "--k", "0"])).is_err());
    }

    #[test]
    fn mutate_parses_flags_in_order() {
        let cmd = parse(&args(&[
            "mutate", "--addr", "a:1", "--insert", "0,33,0.5", "--delete", "0,1", "--setp",
            "2,3,1.0",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Mutate {
                addrs: vec!["a:1".into()],
                deltas: vec![
                    GraphDelta::InsertEdge {
                        source: 0,
                        target: 33,
                        probability: 0.5
                    },
                    GraphDelta::DeleteEdge {
                        source: 0,
                        target: 1
                    },
                    GraphDelta::SetProbability {
                        source: 2,
                        target: 3,
                        probability: 1.0
                    },
                ],
                batch: false,
            }
        );
        // --batch switches to the atomic MutateBatch request.
        match parse(&args(&[
            "mutate", "--addr", "a:1", "--batch", "--delete", "0,1",
        ]))
        .unwrap()
        {
            Command::Mutate { batch, deltas, .. } => {
                assert!(batch);
                assert_eq!(deltas.len(), 1);
            }
            other => panic!("unexpected command {other:?}"),
        }
        // Malformed specs are rejected with the flag named.
        assert!(parse(&args(&["mutate", "--addr", "a:1", "--insert", "0,1"])).is_err());
        assert!(parse(&args(&["mutate", "--addr", "a:1", "--delete", "0"])).is_err());
        assert!(parse(&args(&["mutate", "--addr", "a:1", "--setp", "0,1,0.0"])).is_err());
        assert!(parse(&args(&["mutate", "--addr", "a:1", "--insert", "0,1,2.5"])).is_err());
        // Required pieces.
        assert!(
            parse(&args(&["mutate", "--addr", "a:1"])).is_err(),
            "no deltas"
        );
        assert!(
            parse(&args(&["mutate", "--insert", "0,1,0.5"])).is_err(),
            "no addr"
        );
        assert!(
            parse(&args(&[
                "mutate",
                "--addr",
                "a:1",
                "--file",
                "/no/such/file"
            ]))
            .is_err(),
            "unreadable script"
        );
    }

    #[test]
    fn mutate_reads_delta_scripts_from_files() {
        let path =
            std::env::temp_dir().join(format!("imserve_cli_deltas_{}.jsonl", std::process::id()));
        std::fs::write(
            &path,
            "{\"InsertEdge\":{\"source\":1,\"target\":2,\"probability\":0.25}}\n",
        )
        .unwrap();
        let cmd = parse(&args(&[
            "mutate",
            "--addr",
            "a:1",
            "--file",
            path.to_str().unwrap(),
        ]))
        .unwrap();
        let _ = std::fs::remove_file(&path);
        assert_eq!(
            cmd,
            Command::Mutate {
                addrs: vec!["a:1".into()],
                deltas: vec![GraphDelta::InsertEdge {
                    source: 1,
                    target: 2,
                    probability: 0.25
                }],
                batch: false,
            }
        );
    }

    #[test]
    fn compact_parses_server_and_file_targets() {
        assert_eq!(
            parse(&args(&["compact", "--addr", "a:1"])).unwrap(),
            Command::Compact {
                target: CompactTarget::Server { addr: "a:1".into() },
            }
        );
        assert_eq!(
            parse(&args(&["compact", "--index", "a.imx", "--out", "b.imx"])).unwrap(),
            Command::Compact {
                target: CompactTarget::File {
                    index: "a.imx".into(),
                    out: "b.imx".into(),
                },
            }
        );
        // Exactly one target, fully specified.
        assert!(parse(&args(&["compact"])).is_err());
        assert!(parse(&args(&["compact", "--index", "a.imx"])).is_err());
        assert!(parse(&args(&["compact", "--addr", "a:1", "--index", "a.imx"])).is_err());
        assert!(parse(&args(&["compact", "--frobnicate"])).is_err());
    }

    #[test]
    fn serve_parses_compaction_policy_flags() {
        match parse(&args(&[
            "serve",
            "--index",
            "x.imx",
            "--compact-log-len",
            "128",
            "--compact-dirty",
            "0.25",
        ]))
        .unwrap()
        {
            Command::Serve {
                compact_log_len,
                compact_dirty,
                ..
            } => {
                assert_eq!(compact_log_len, Some(128));
                assert_eq!(compact_dirty, Some(0.25));
            }
            other => panic!("unexpected command {other:?}"),
        }
        // Off by default; invalid thresholds rejected.
        match parse(&args(&["serve", "--index", "x.imx"])).unwrap() {
            Command::Serve {
                compact_log_len,
                compact_dirty,
                ..
            } => {
                assert_eq!(compact_log_len, None);
                assert_eq!(compact_dirty, None);
            }
            other => panic!("unexpected command {other:?}"),
        }
        assert!(parse(&args(&["serve", "--index", "x", "--compact-log-len", "0"])).is_err());
        assert!(parse(&args(&["serve", "--index", "x", "--compact-dirty", "-1"])).is_err());
        assert!(parse(&args(&["serve", "--index", "x", "--compact-dirty", "nope"])).is_err());
    }

    #[test]
    fn serve_front_end_flags_parse_and_exclude_each_other() {
        // Reactor is the default.
        match parse(&args(&["serve", "--index", "x.imx"])).unwrap() {
            Command::Serve { reactor, .. } => assert!(reactor),
            other => panic!("unexpected command {other:?}"),
        }
        match parse(&args(&["serve", "--index", "x.imx", "--threaded"])).unwrap() {
            Command::Serve { reactor, .. } => assert!(!reactor),
            other => panic!("unexpected command {other:?}"),
        }
        match parse(&args(&["serve", "--index", "x.imx", "--reactor"])).unwrap() {
            Command::Serve { reactor, .. } => assert!(reactor),
            other => panic!("unexpected command {other:?}"),
        }
        assert!(parse(&args(&["serve", "--index", "x", "--reactor", "--threaded"])).is_err());
        assert!(parse(&args(&["serve", "--index", "x", "--threaded", "--reactor"])).is_err());
    }

    #[test]
    fn serve_metrics_flags_parse_with_defaults() {
        // Off by default, with the documented slow-query threshold.
        match parse(&args(&["serve", "--index", "x.imx"])).unwrap() {
            Command::Serve {
                metrics_addr,
                slow_micros,
                ..
            } => {
                assert_eq!(metrics_addr, None);
                assert_eq!(slow_micros, crate::obs::DEFAULT_SLOW_THRESHOLD_MICROS);
            }
            other => panic!("unexpected command {other:?}"),
        }
        match parse(&args(&[
            "serve",
            "--index",
            "x.imx",
            "--metrics-addr",
            "127.0.0.1:0",
            "--slow-micros",
            "2500",
        ]))
        .unwrap()
        {
            Command::Serve {
                metrics_addr,
                slow_micros,
                ..
            } => {
                assert_eq!(metrics_addr.as_deref(), Some("127.0.0.1:0"));
                assert_eq!(slow_micros, 2500);
            }
            other => panic!("unexpected command {other:?}"),
        }
        assert!(parse(&args(&["serve", "--index", "x", "--slow-micros", "soon"])).is_err());
        assert!(parse(&args(&["serve", "--index", "x", "--metrics-addr"])).is_err());
    }

    #[test]
    fn query_metrics_parses_and_is_exclusive() {
        assert_eq!(
            parse(&args(&["query", "--addr", "a:1", "--metrics"])).unwrap(),
            Command::Query {
                addrs: vec!["a:1".into()],
                request: QuerySpec::Metrics,
                v1: false,
            }
        );
        assert!(parse(&args(&["query", "--addr", "a:1", "--metrics", "--stats"])).is_err());
    }

    #[test]
    fn loadtest_arrival_rate_parses_and_rejects_zero() {
        match parse(&args(&["loadtest", "--addr", "a:1"])).unwrap() {
            Command::Loadtest { arrival_rps, .. } => assert_eq!(arrival_rps, None),
            other => panic!("unexpected command {other:?}"),
        }
        match parse(&args(&[
            "loadtest",
            "--addr",
            "a:1",
            "--arrival-rps",
            "500",
        ]))
        .unwrap()
        {
            Command::Loadtest { arrival_rps, .. } => assert_eq!(arrival_rps, Some(500)),
            other => panic!("unexpected command {other:?}"),
        }
        assert!(parse(&args(&["loadtest", "--addr", "a:1", "--arrival-rps", "0"])).is_err());
        assert!(parse(&args(&["loadtest", "--addr", "a:1", "--arrival-rps", "x"])).is_err());
    }

    #[test]
    fn build_accepts_a_delta_script_path() {
        let cmd = parse(&args(&[
            "build",
            "--dataset",
            "karate",
            "--out",
            "k.imx",
            "--deltas",
            "d.jsonl",
        ]))
        .unwrap();
        match cmd {
            Command::Build { deltas, .. } => assert_eq!(deltas.as_deref(), Some("d.jsonl")),
            other => panic!("unexpected command {other:?}"),
        }
    }

    #[test]
    fn query_stats_parses_and_is_exclusive() {
        assert_eq!(
            parse(&args(&["query", "--addr", "a:1", "--stats"])).unwrap(),
            Command::Query {
                addrs: vec!["a:1".into()],
                request: QuerySpec::Stats,
                v1: false,
            }
        );
        assert!(parse(&args(&["query", "--addr", "a:1", "--stats", "--info"])).is_err());
    }

    #[test]
    fn query_specs_parse() {
        let cmd = parse(&args(&["query", "--addr", "a:1", "--estimate", "0, 5,9"])).unwrap();
        assert_eq!(
            cmd,
            Command::Query {
                addrs: vec!["a:1".into()],
                request: QuerySpec::Estimate(vec![0, 5, 9]),
                v1: false,
            }
        );
        let cmd = parse(&args(&[
            "query",
            "--addr",
            "a:1",
            "--topk",
            "4",
            "--algorithm",
            "singleton",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Query {
                addrs: vec!["a:1".into()],
                request: QuerySpec::TopK(4, TopKAlgorithm::SingletonRank),
                v1: false,
            }
        );
        // Algorithm flag before --topk also applies.
        let cmd = parse(&args(&[
            "query",
            "--addr",
            "a:1",
            "--algorithm",
            "singleton",
            "--topk",
            "2",
        ]))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Query {
                addrs: vec!["a:1".into()],
                request: QuerySpec::TopK(2, TopKAlgorithm::SingletonRank),
                v1: false,
            }
        );
        assert!(parse(&args(&["query", "--addr", "a:1", "--estimate", "1,x"])).is_err());
        assert!(parse(&args(&["query", "--addr", "a:1", "--info", "--topk", "2"])).is_err());
    }

    #[test]
    fn query_health_and_events_parse_and_are_exclusive() {
        assert_eq!(
            parse(&args(&["query", "--addr", "a:1", "--health"])).unwrap(),
            Command::Query {
                addrs: vec!["a:1".into()],
                request: QuerySpec::Health,
                v1: false,
            }
        );
        assert_eq!(
            parse(&args(&["query", "--addr", "a:1", "--events"])).unwrap(),
            Command::Query {
                addrs: vec!["a:1".into()],
                request: QuerySpec::Events,
                v1: false,
            }
        );
        assert!(parse(&args(&["query", "--addr", "a:1", "--health", "--stats"])).is_err());
        assert!(parse(&args(&["query", "--addr", "a:1", "--events", "--health"])).is_err());
    }

    #[test]
    fn serve_replication_flags_parse_with_their_constraints() {
        // Leader mode: --repl-addr needs a WAL to tail.
        match parse(&args(&[
            "serve",
            "--index",
            "x.imx",
            "--wal",
            "x.wal",
            "--repl-addr",
            "127.0.0.1:0",
        ]))
        .unwrap()
        {
            Command::Serve {
                repl_addr, follow, ..
            } => {
                assert_eq!(repl_addr.as_deref(), Some("127.0.0.1:0"));
                assert_eq!(follow, None);
            }
            other => panic!("unexpected command {other:?}"),
        }
        let err = parse(&args(&["serve", "--index", "x", "--repl-addr", "a:1"])).unwrap_err();
        assert!(err.to_string().contains("--wal"), "{err}");
        // Follower mode: --follow parses with or without a WAL (the WAL is
        // the durable cursor; without it the cursor restarts at the
        // artifact's epoch).
        match parse(&args(&["serve", "--index", "x.imx", "--follow", "l:1"])).unwrap() {
            Command::Serve {
                repl_addr, follow, ..
            } => {
                assert_eq!(repl_addr, None);
                assert_eq!(follow.as_deref(), Some("l:1"));
            }
            other => panic!("unexpected command {other:?}"),
        }
        assert!(parse(&args(&["serve", "--index", "x", "--follow"])).is_err());
    }

    #[test]
    fn reload_and_promote_parse_with_required_flags() {
        assert_eq!(
            parse(&args(&["reload", "--addr", "a:1", "--index", "c.imx"])).unwrap(),
            Command::Reload {
                addr: "a:1".into(),
                index: "c.imx".into(),
            }
        );
        assert!(parse(&args(&["reload", "--addr", "a:1"])).is_err());
        assert!(parse(&args(&["reload", "--index", "c.imx"])).is_err());
        assert!(parse(&args(&["reload", "--addr", "a:1", "--index", "c", "--x"])).is_err());

        assert_eq!(
            parse(&args(&["promote", "--addr", "f:1"])).unwrap(),
            Command::Promote {
                addr: "f:1".into(),
                expected_epoch: None,
            }
        );
        assert_eq!(
            parse(&args(&[
                "promote",
                "--addr",
                "f:1",
                "--expected-epoch",
                "12"
            ]))
            .unwrap(),
            Command::Promote {
                addr: "f:1".into(),
                expected_epoch: Some(12),
            }
        );
        assert!(parse(&args(&["promote"])).is_err());
        assert!(parse(&args(&[
            "promote",
            "--addr",
            "f:1",
            "--expected-epoch",
            "x"
        ]))
        .is_err());
    }

    #[test]
    fn route_parses_with_defaults_and_rejects_bad_flags() {
        assert_eq!(
            parse(&args(&[
                "route",
                "--addr",
                "a:1",
                "--addr",
                "b:2",
                "--metrics-addr",
                "127.0.0.1:0",
            ]))
            .unwrap(),
            Command::Route {
                addrs: vec!["a:1".into(), "b:2".into()],
                metrics_addr: "127.0.0.1:0".into(),
                deadline_ms: DEFAULT_ROUTE_DEADLINE_MS,
            }
        );
        match parse(&args(&[
            "route",
            "--addr",
            "a:1",
            "--metrics-addr",
            "m:9",
            "--deadline-ms",
            "250",
        ]))
        .unwrap()
        {
            Command::Route { deadline_ms, .. } => assert_eq!(deadline_ms, 250),
            other => panic!("unexpected command {other:?}"),
        }
        // Required pieces and value sanity.
        assert!(
            parse(&args(&["route", "--metrics-addr", "m:9"])).is_err(),
            "missing --addr"
        );
        assert!(
            parse(&args(&["route", "--addr", "a:1"])).is_err(),
            "missing --metrics-addr"
        );
        assert!(
            parse(&args(&[
                "route",
                "--addr",
                "a:1",
                "--metrics-addr",
                "m:9",
                "--deadline-ms",
                "0"
            ]))
            .is_err(),
            "zero deadline"
        );
        assert!(parse(&args(&["route", "--addr", "a:1", "--turbo"])).is_err());
    }
}
