//! The Watts–Strogatz small-world model (Watts & Strogatz, 1998).
//!
//! Used to synthesise the *Physicians* analog: a small social network with
//! high clustering (Table 3 reports 0.25) and low average distance. The
//! generator produces an undirected ring lattice with `k` neighbours per
//! vertex and rewires each edge with probability `beta`, then the dataset
//! registry orients edges randomly or symmetrises them as needed.

use imgraph::VertexId;
use imrand::Rng32;

/// Parameters of the Watts–Strogatz generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WattsStrogatz {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Each vertex is connected to its `k` nearest ring neighbours (`k` must
    /// be even and smaller than the number of vertices).
    pub k: usize,
    /// Rewiring probability.
    pub beta: f64,
}

impl WattsStrogatz {
    /// Generate the undirected edge list (each edge once, endpoints unordered).
    ///
    /// # Panics
    ///
    /// Panics if `k` is odd, `k >= num_vertices`, or `beta` is outside `[0, 1]`.
    #[must_use]
    pub fn generate_undirected<R: Rng32>(&self, rng: &mut R) -> Vec<(VertexId, VertexId)> {
        let n = self.num_vertices;
        let k = self.k;
        assert!(k.is_multiple_of(2), "k must be even (got {k})");
        assert!(
            k < n,
            "k ({k}) must be smaller than the number of vertices ({n})"
        );
        assert!(
            (0.0..=1.0).contains(&self.beta),
            "beta {} out of range",
            self.beta
        );

        // Ring lattice: vertex i connects to i+1 .. i+k/2 (mod n).
        let mut edges: Vec<(VertexId, VertexId)> = Vec::with_capacity(n * k / 2);
        for i in 0..n {
            for offset in 1..=(k / 2) {
                let j = (i + offset) % n;
                edges.push((i as VertexId, j as VertexId));
            }
        }

        // Rewire: each edge keeps its first endpoint and, with probability
        // beta, redirects its second endpoint to a uniformly random vertex
        // that is neither the first endpoint nor a current neighbour of it.
        let mut adjacency: Vec<Vec<VertexId>> = vec![Vec::with_capacity(k); n];
        for &(u, v) in &edges {
            adjacency[u as usize].push(v);
            adjacency[v as usize].push(u);
        }
        for edge in &mut edges {
            if !rng.bernoulli(self.beta) {
                continue;
            }
            let (u, old_v) = *edge;
            // Reject until a valid new endpoint is found; bail out after a
            // bounded number of attempts for nearly complete graphs.
            let mut attempts = 0;
            loop {
                attempts += 1;
                if attempts > 32 {
                    break;
                }
                let new_v = rng.gen_index(n) as VertexId;
                if new_v == u || adjacency[u as usize].contains(&new_v) {
                    continue;
                }
                // Commit the rewire.
                adjacency[u as usize].retain(|&x| x != old_v);
                adjacency[old_v as usize].retain(|&x| x != u);
                adjacency[u as usize].push(new_v);
                adjacency[new_v as usize].push(u);
                *edge = (u, new_v);
                break;
            }
        }
        edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imgraph::GraphBuilder;
    use imrand::Pcg32;

    fn symmetrize(n: usize, edges: &[(VertexId, VertexId)]) -> imgraph::DiGraph {
        let mut b = GraphBuilder::with_capacity(n, edges.len() * 2);
        for &(u, v) in edges {
            b.add_undirected_edge(u, v);
        }
        b.build()
    }

    #[test]
    fn edge_count_is_nk_over_2() {
        let mut rng = Pcg32::seed_from_u64(1);
        let ws = WattsStrogatz {
            num_vertices: 100,
            k: 6,
            beta: 0.1,
        };
        let edges = ws.generate_undirected(&mut rng);
        assert_eq!(edges.len(), 100 * 6 / 2);
    }

    #[test]
    fn no_rewiring_gives_regular_lattice() {
        let mut rng = Pcg32::seed_from_u64(2);
        let ws = WattsStrogatz {
            num_vertices: 20,
            k: 4,
            beta: 0.0,
        };
        let g = symmetrize(20, &ws.generate_undirected(&mut rng));
        for v in g.vertices() {
            assert_eq!(g.out_degree(v), 4, "vertex {v} should keep lattice degree");
        }
    }

    #[test]
    fn lattice_with_no_rewiring_has_high_clustering() {
        let mut rng = Pcg32::seed_from_u64(3);
        let ws = WattsStrogatz {
            num_vertices: 200,
            k: 8,
            beta: 0.0,
        };
        let g = symmetrize(200, &ws.generate_undirected(&mut rng));
        let c = imgraph::stats::global_clustering_coefficient(&g).unwrap();
        assert!(c > 0.5, "ring lattice clustering should be high, got {c}");
    }

    #[test]
    fn rewiring_shortens_average_distance() {
        let n = 300;
        let base = WattsStrogatz {
            num_vertices: n,
            k: 6,
            beta: 0.0,
        };
        let rewired = WattsStrogatz {
            num_vertices: n,
            k: 6,
            beta: 0.2,
        };
        let g0 = symmetrize(n, &base.generate_undirected(&mut Pcg32::seed_from_u64(4)));
        let g1 = symmetrize(
            n,
            &rewired.generate_undirected(&mut Pcg32::seed_from_u64(4)),
        );
        let d0 = imgraph::stats::estimate_average_distance(&g0, 40, 7).unwrap();
        let d1 = imgraph::stats::estimate_average_distance(&g1, 40, 7).unwrap();
        assert!(
            d1 < d0,
            "rewiring should create shortcuts: baseline {d0}, rewired {d1}"
        );
    }

    #[test]
    fn no_self_loops_after_rewiring() {
        let mut rng = Pcg32::seed_from_u64(5);
        let ws = WattsStrogatz {
            num_vertices: 80,
            k: 4,
            beta: 0.8,
        };
        for (u, v) in ws.generate_undirected(&mut rng) {
            assert_ne!(u, v);
        }
    }

    #[test]
    #[should_panic(expected = "must be even")]
    fn odd_k_panics() {
        let mut rng = Pcg32::seed_from_u64(6);
        let _ = WattsStrogatz {
            num_vertices: 10,
            k: 3,
            beta: 0.1,
        }
        .generate_undirected(&mut rng);
    }

    #[test]
    #[should_panic(expected = "smaller than the number of vertices")]
    fn oversized_k_panics() {
        let mut rng = Pcg32::seed_from_u64(7);
        let _ = WattsStrogatz {
            num_vertices: 4,
            k: 4,
            beta: 0.1,
        }
        .generate_undirected(&mut rng);
    }
}
