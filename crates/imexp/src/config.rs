//! Experiment configuration.

use imnet::{Dataset, DatasetSpec, ProbabilityModel};
use serde::{Deserialize, Serialize};

/// One of the three algorithmic approaches, without a sample number attached
/// (the sweep attaches the sample number).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ApproachKind {
    /// Monte-Carlo simulation on the spot (sample number β).
    Oneshot,
    /// Pre-sampled live-edge graphs (sample number τ).
    Snapshot,
    /// Reverse influence sampling (sample number θ).
    Ris,
}

impl ApproachKind {
    /// All three approaches, in the paper's order.
    #[must_use]
    pub fn all() -> [ApproachKind; 3] {
        [
            ApproachKind::Oneshot,
            ApproachKind::Snapshot,
            ApproachKind::Ris,
        ]
    }

    /// The paper's display name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            ApproachKind::Oneshot => "Oneshot",
            ApproachKind::Snapshot => "Snapshot",
            ApproachKind::Ris => "RIS",
        }
    }

    /// Attach a sample number, producing a runnable [`im_core::Algorithm`].
    #[must_use]
    pub fn with_sample_number(&self, s: u64) -> im_core::Algorithm {
        match self {
            ApproachKind::Oneshot => im_core::Algorithm::Oneshot { beta: s },
            ApproachKind::Snapshot => im_core::Algorithm::Snapshot { tau: s },
            ApproachKind::Ris => im_core::Algorithm::Ris { theta: s },
        }
    }
}

impl std::fmt::Display for ApproachKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// A problem instance: which network, which edge-probability model, which
/// dataset generation seed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InstanceConfig {
    /// The dataset build specification (size included).
    pub spec: DatasetSpec,
    /// The edge-probability model.
    pub model: ProbabilityModel,
    /// Seed for the dataset generator (analogs only; exact data ignore it).
    pub dataset_seed: u64,
}

impl InstanceConfig {
    /// An instance at the default specification of `dataset`.
    #[must_use]
    pub fn new(dataset: Dataset, model: ProbabilityModel) -> Self {
        Self {
            spec: dataset.spec(),
            model,
            dataset_seed: 0,
        }
    }

    /// An instance scaled down by `factor` (see [`DatasetSpec::scaled`]).
    #[must_use]
    pub fn scaled(dataset: Dataset, model: ProbabilityModel, factor: usize) -> Self {
        Self {
            spec: DatasetSpec::scaled(dataset, factor),
            model,
            dataset_seed: 0,
        }
    }

    /// Human-readable label like `Karate (uc0.1)`.
    #[must_use]
    pub fn label(&self) -> String {
        format!("{} ({})", self.spec.dataset.name(), self.model.label())
    }
}

/// The sweep a driver runs per instance and approach: which sample numbers,
/// how many trials each, from which base seed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepConfig {
    /// The sample numbers to evaluate (powers of two in the paper).
    pub sample_numbers: Vec<u64>,
    /// Number of independent trials per sample number (`T`).
    pub trials: usize,
    /// Base seed; trial `i` at sweep position `j` derives its own seed.
    pub base_seed: u64,
    /// Worker threads spreading the trials: `0` = one per core, `1` =
    /// sequential, `n` = exactly `n` workers. The thread count never changes
    /// the outcomes (each trial derives its own seed).
    pub threads: usize,
}

impl SweepConfig {
    /// Sample numbers `2^0 .. 2^max_exponent`.
    #[must_use]
    pub fn powers_of_two(max_exponent: u32, trials: usize) -> Self {
        Self {
            sample_numbers: (0..=max_exponent).map(|e| 1u64 << e).collect(),
            trials,
            base_seed: 0x0B5E_55ED,
            threads: 0,
        }
    }

    /// Replace the base seed (builder style).
    #[must_use]
    pub fn with_base_seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// Set the worker-thread knob (builder style; `0` = one per core).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Disable/enable threading (builder style): `true` = one worker per
    /// core, `false` = sequential.
    #[must_use]
    pub fn with_parallel(self, parallel: bool) -> Self {
        self.with_threads(if parallel { 0 } else { 1 })
    }

    /// Keep only sample numbers `≤ cap` (the per-approach caps differ: β and τ
    /// go up to 2¹⁶ in the paper, θ up to 2²⁴).
    #[must_use]
    pub fn capped_at(&self, cap: u64) -> Self {
        Self {
            sample_numbers: self
                .sample_numbers
                .iter()
                .copied()
                .filter(|&s| s <= cap)
                .collect(),
            trials: self.trials,
            base_seed: self.base_seed,
            threads: self.threads,
        }
    }
}

/// How large an experiment to run. The paper's full protocol (1,000 trials,
/// sample numbers to 2²⁴, 10⁷-RR-set oracle) takes days; the quick scale keeps
/// every driver under a few seconds so tests and benches stay fast, while the
/// paper scale approaches the original protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExperimentScale {
    /// Small trial counts and sample caps — seconds per driver.
    Quick,
    /// Intermediate scale — minutes per driver.
    Standard,
    /// Close to the paper's protocol — hours per driver.
    Paper,
}

impl ExperimentScale {
    /// Trials per configuration on small networks (`T` in the paper: 1,000).
    #[must_use]
    pub fn trials_small(&self) -> usize {
        match self {
            ExperimentScale::Quick => 50,
            ExperimentScale::Standard => 200,
            ExperimentScale::Paper => 1_000,
        }
    }

    /// Trials per configuration on the ⋆-marked large networks (paper: 20).
    #[must_use]
    pub fn trials_large(&self) -> usize {
        match self {
            ExperimentScale::Quick => 5,
            ExperimentScale::Standard => 10,
            ExperimentScale::Paper => 20,
        }
    }

    /// Maximum exponent of the Oneshot/Snapshot sample-number sweep
    /// (paper: 16).
    #[must_use]
    pub fn max_exponent_simulation(&self) -> u32 {
        match self {
            ExperimentScale::Quick => 7,
            ExperimentScale::Standard => 12,
            ExperimentScale::Paper => 16,
        }
    }

    /// Maximum exponent of the RIS sample-number sweep (paper: 24).
    #[must_use]
    pub fn max_exponent_ris(&self) -> u32 {
        match self {
            ExperimentScale::Quick => 12,
            ExperimentScale::Standard => 16,
            ExperimentScale::Paper => 24,
        }
    }

    /// Size of the shared influence-oracle RR-set pool (paper: 10⁷).
    #[must_use]
    pub fn oracle_pool(&self) -> usize {
        match self {
            ExperimentScale::Quick => 100_000,
            ExperimentScale::Standard => 1_000_000,
            ExperimentScale::Paper => 10_000_000,
        }
    }

    /// Scale-down factor applied to analog data sets larger than Physicians
    /// so the quick drivers stay interactive (1 = original analog size).
    #[must_use]
    pub fn analog_scale_factor(&self) -> usize {
        match self {
            ExperimentScale::Quick => 8,
            ExperimentScale::Standard => 2,
            ExperimentScale::Paper => 1,
        }
    }

    /// Default sweep for Oneshot/Snapshot on this scale.
    #[must_use]
    pub fn simulation_sweep(&self, trials: usize) -> SweepConfig {
        SweepConfig::powers_of_two(self.max_exponent_simulation(), trials)
    }

    /// Default sweep for RIS on this scale.
    #[must_use]
    pub fn ris_sweep(&self, trials: usize) -> SweepConfig {
        SweepConfig::powers_of_two(self.max_exponent_ris(), trials)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approach_kind_round_trip() {
        assert_eq!(ApproachKind::all().len(), 3);
        assert_eq!(ApproachKind::Oneshot.name(), "Oneshot");
        assert_eq!(format!("{}", ApproachKind::Ris), "RIS");
        assert_eq!(
            ApproachKind::Snapshot.with_sample_number(7),
            im_core::Algorithm::Snapshot { tau: 7 }
        );
        assert_eq!(
            ApproachKind::Oneshot.with_sample_number(3).sample_number(),
            3
        );
        assert_eq!(
            ApproachKind::Ris.with_sample_number(9),
            im_core::Algorithm::Ris { theta: 9 }
        );
    }

    #[test]
    fn instance_labels() {
        let c = InstanceConfig::new(Dataset::Karate, ProbabilityModel::uc01());
        assert_eq!(c.label(), "Karate (uc0.1)");
        let scaled =
            InstanceConfig::scaled(Dataset::WikiVote, ProbabilityModel::InDegreeWeighted, 10);
        assert!(scaled.spec.num_vertices < Dataset::WikiVote.spec().num_vertices);
        assert_eq!(scaled.label(), "Wiki-Vote (iwc)");
    }

    #[test]
    fn sweep_powers_of_two() {
        let sweep = SweepConfig::powers_of_two(4, 10);
        assert_eq!(sweep.sample_numbers, vec![1, 2, 4, 8, 16]);
        assert_eq!(sweep.trials, 10);
        let capped = sweep.capped_at(5);
        assert_eq!(capped.sample_numbers, vec![1, 2, 4]);
        let reseeded = capped.with_base_seed(7).with_parallel(false);
        assert_eq!(reseeded.base_seed, 7);
        assert_eq!(reseeded.threads, 1, "with_parallel(false) pins one worker");
        assert_eq!(reseeded.with_threads(4).threads, 4);
    }

    #[test]
    fn scales_are_ordered() {
        let quick = ExperimentScale::Quick;
        let paper = ExperimentScale::Paper;
        assert!(quick.trials_small() < paper.trials_small());
        assert!(quick.trials_large() < paper.trials_large());
        assert!(quick.max_exponent_simulation() < paper.max_exponent_simulation());
        assert!(quick.max_exponent_ris() < paper.max_exponent_ris());
        assert!(quick.oracle_pool() < paper.oracle_pool());
        assert!(quick.analog_scale_factor() > paper.analog_scale_factor());
        assert_eq!(paper.trials_small(), 1_000, "the paper runs 1,000 trials");
        assert_eq!(
            paper.max_exponent_ris(),
            24,
            "θ goes up to 2^24 in the paper"
        );
    }

    #[test]
    fn scale_default_sweeps() {
        let s = ExperimentScale::Quick;
        assert_eq!(
            s.simulation_sweep(5).sample_numbers.len() as u32,
            s.max_exponent_simulation() + 1
        );
        assert_eq!(
            s.ris_sweep(5).sample_numbers.len() as u32,
            s.max_exponent_ris() + 1
        );
    }
}
