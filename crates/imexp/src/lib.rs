//! Experiment harness reproducing the evaluation of Ohsaka (SIGMOD 2020).
//!
//! The harness is organised in three layers:
//!
//! * [`config`] — what to run: the instance (data set × probability model ×
//!   seed size), the sample-number sweep, the trial count and the scale knob
//!   that shrinks everything to laptop size;
//! * [`runner`] — how to run it: prepared instances (graph + shared influence
//!   oracle), parallel trial execution, and the per-sample-number analysis
//!   (seed-set distribution, entropy, influence summary statistics, sample
//!   curves);
//! * [`experiments`] — one driver per table/figure of the paper, each
//!   producing a serialisable report that renders as a plain-text table whose
//!   rows mirror the paper's.
//!
//! The `imexp` binary exposes every driver on the command line
//! (`imexp fig1 --quick`), and the Criterion benches in `crates/bench` call
//! the same drivers. [`loadtest`] additionally drives the unified
//! `InfluenceService` surface: the same workload against the local, remote
//! and sharded backends (`imexp loadtest --backend sharded:2`), with
//! byte-identity verification of the sharded merge. [`poolbench`] compares
//! the three `impool` pool-store layouts on the streamed million-vertex
//! Chung–Lu fixture from [`fixture`] (`imexp pool`, committed as
//! `BENCH_pool.json`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod config;
pub mod experiments;
pub mod fixture;
pub mod loadtest;
pub mod poolbench;
pub mod report;
pub mod runner;

pub use config::{ApproachKind, ExperimentScale, InstanceConfig, SweepConfig};
pub use report::TextTable;
pub use runner::{AnalyzedSweep, PreparedInstance, SampleAnalysis, TrialBatch};
