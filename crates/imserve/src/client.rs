//! Clients for both wire dialects.
//!
//! [`Connection`] is the original v1 client: bare request frames, kept for
//! compatibility tooling (`imserve query --v1`) and for the CI check that a
//! v1 client still works against a v2 server.
//!
//! [`ServiceConnection`] speaks protocol v2 — id-tagged frames over one TCP
//! connection, with an explicit version handshake on connect and support for
//! *pipelining* (write many frames, then read the id-matched responses).
//! [`RemoteService`] wraps it into the typed [`InfluenceService`] trait, so
//! a remote server is interchangeable with an in-process engine.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

use imgraph::GraphDelta;

use crate::error::ServeError;
use crate::protocol::{
    self, Outcome, Request, RequestFrame, Response, ResponseFrame, TopKAlgorithm, PROTOCOL_VERSION,
};
use crate::service::{
    CompactionReport, GainVector, InfluenceService, MutationOutcome, ServiceError, ServiceInfo,
    ServiceResult, ServiceStats, SpreadEstimate, TopKSelection,
};

/// One persistent v1 connection speaking bare newline-delimited JSON.
#[derive(Debug)]
pub struct Connection {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Connection {
    /// Connect to a server.
    pub fn open(addr: impl ToSocketAddrs) -> Result<Self, ServeError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Self {
            reader,
            writer: BufWriter::new(stream),
        })
    }

    /// Send one request and wait for its response.
    pub fn roundtrip(&mut self, request: &Request) -> Result<Response, ServeError> {
        self.writer
            .write_all(protocol::encode(request)?.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut line = String::new();
        let read = self.reader.read_line(&mut line)?;
        if read == 0 {
            return Err(ServeError::Protocol(
                "server closed the connection".to_string(),
            ));
        }
        protocol::decode(&line)
    }
}

/// Convenience: open a fresh v1 connection, send one request, return the
/// answer.
pub fn query_once(addr: impl ToSocketAddrs, request: &Request) -> Result<Response, ServeError> {
    Connection::open(addr)?.roundtrip(request)
}

/// One persistent protocol-v2 connection: id-tagged frames, typed errors,
/// pipelining.
#[derive(Debug)]
pub struct ServiceConnection {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    next_id: u64,
    server_version: u32,
}

impl ServiceConnection {
    /// Connect and perform the version handshake. Fails with
    /// [`ServiceError::Protocol`] if the peer does not speak protocol v2
    /// (e.g. a v1-only server answering the framed `Hello` with a bare
    /// error).
    pub fn connect(addr: impl ToSocketAddrs) -> ServiceResult<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        let mut connection = Self {
            reader,
            writer: BufWriter::new(stream),
            next_id: 0,
            server_version: 0,
        };
        let version = match connection.call(&Request::Hello {
            max_version: PROTOCOL_VERSION,
        })? {
            Response::Hello { version } => version,
            other => {
                return Err(ServiceError::Protocol(format!(
                    "handshake answered with {other:?}"
                )))
            }
        };
        if version != PROTOCOL_VERSION {
            return Err(ServiceError::Protocol(format!(
                "server negotiated unsupported protocol version {version}"
            )));
        }
        connection.server_version = version;
        Ok(connection)
    }

    /// The version the handshake negotiated.
    #[must_use]
    pub fn server_version(&self) -> u32 {
        self.server_version
    }

    /// Send one request and wait for its id-matched response.
    pub fn call(&mut self, request: &Request) -> ServiceResult<Response> {
        let id = self.send(request)?;
        self.flush()?;
        self.receive(id)?
    }

    /// Pipeline a batch: write every frame, flush once, then read the
    /// responses in order (each id-checked). The outer `Result` is the
    /// transport/framing channel; the per-request results keep typed errors
    /// separate, so one rejected request does not poison the batch.
    pub fn pipeline(
        &mut self,
        requests: &[Request],
    ) -> ServiceResult<Vec<ServiceResult<Response>>> {
        let mut ids = Vec::with_capacity(requests.len());
        for request in requests {
            ids.push(self.send(request)?);
        }
        self.flush()?;
        ids.into_iter().map(|id| self.receive(id)).collect()
    }

    /// Write one frame without flushing; returns the frame id.
    fn send(&mut self, request: &Request) -> ServiceResult<u64> {
        self.next_id += 1;
        let id = self.next_id;
        let frame = RequestFrame {
            v: PROTOCOL_VERSION,
            id,
            req: request.clone(),
        };
        let line = protocol::encode(&frame).map_err(ServiceError::from)?;
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        Ok(id)
    }

    fn flush(&mut self) -> ServiceResult<()> {
        self.writer.flush()?;
        Ok(())
    }

    /// Read one response frame and match it against `id`. The outer `Result`
    /// carries transport/framing failures (the connection is unusable); the
    /// inner one carries the peer's typed per-request outcome.
    fn receive(&mut self, id: u64) -> ServiceResult<ServiceResult<Response>> {
        let mut line = String::new();
        let read = self.reader.read_line(&mut line)?;
        if read == 0 {
            return Err(ServiceError::Protocol(
                "server closed the connection".to_string(),
            ));
        }
        let frame: ResponseFrame = protocol::decode(&line).map_err(ServiceError::from)?;
        if frame.id != id {
            return Err(ServiceError::Protocol(format!(
                "response id {} does not match request id {id}",
                frame.id
            )));
        }
        Ok(match frame.body {
            Outcome::Ok(response) => Ok(response),
            Outcome::Err(wire) => Err(wire.into_service()),
        })
    }
}

/// The remote backend: an [`InfluenceService`] over one protocol-v2 TCP
/// connection.
#[derive(Debug)]
pub struct RemoteService {
    connection: ServiceConnection,
}

impl RemoteService {
    /// Connect (with handshake) to a serving `imserve` instance.
    pub fn connect(addr: impl ToSocketAddrs) -> ServiceResult<Self> {
        Ok(Self {
            connection: ServiceConnection::connect(addr)?,
        })
    }

    /// The underlying connection (for pipelining beyond the trait surface).
    pub fn connection(&mut self) -> &mut ServiceConnection {
        &mut self.connection
    }

    fn unexpected<T>(context: &str, other: Response) -> ServiceResult<T> {
        Err(ServiceError::Protocol(format!(
            "{context} answered with {other:?}"
        )))
    }
}

impl InfluenceService for RemoteService {
    fn info(&mut self) -> ServiceResult<ServiceInfo> {
        match self.connection.call(&Request::Info)? {
            Response::Info {
                graph_id,
                model,
                num_vertices,
                num_edges,
                pool_size,
                confidence_99,
                shard_offset,
                global_pool,
            } => Ok(ServiceInfo {
                graph_id,
                model,
                num_vertices,
                num_edges,
                pool_size,
                confidence_99,
                shard_offset,
                global_pool,
            }),
            other => Self::unexpected("Info", other),
        }
    }

    fn estimate(&mut self, seeds: &[u32]) -> ServiceResult<SpreadEstimate> {
        let request = Request::Estimate {
            seeds: seeds.to_vec(),
        };
        match self.connection.call(&request)? {
            Response::Estimate {
                seeds,
                spread,
                covered,
                pool,
            } => Ok(SpreadEstimate {
                seeds,
                spread,
                covered,
                pool,
            }),
            other => Self::unexpected("Estimate", other),
        }
    }

    fn top_k(&mut self, k: usize, algorithm: TopKAlgorithm) -> ServiceResult<TopKSelection> {
        match self.connection.call(&Request::TopK { k, algorithm })? {
            Response::TopK {
                seeds,
                spread,
                algorithm,
            } => Ok(TopKSelection {
                seeds,
                spread,
                algorithm,
            }),
            other => Self::unexpected("TopK", other),
        }
    }

    fn gains(&mut self, selected: &[u32]) -> ServiceResult<GainVector> {
        let request = Request::Gains {
            selected: selected.to_vec(),
        };
        match self.connection.call(&request)? {
            Response::Gains {
                gains,
                covered,
                pool,
            } => Ok(GainVector {
                gains,
                covered,
                pool,
            }),
            other => Self::unexpected("Gains", other),
        }
    }

    fn mutate_batch(&mut self, deltas: &[GraphDelta]) -> ServiceResult<MutationOutcome> {
        let request = Request::MutateBatch {
            deltas: deltas.to_vec(),
        };
        match self.connection.call(&request)? {
            Response::MutateBatch {
                epoch,
                applied,
                resampled,
                compacted,
            } => Ok(MutationOutcome {
                epoch,
                applied,
                resampled,
                compacted,
            }),
            other => Self::unexpected("MutateBatch", other),
        }
    }

    fn compact(&mut self) -> ServiceResult<CompactionReport> {
        match self.connection.call(&Request::Compact)? {
            Response::Compact { epoch, folded } => Ok(CompactionReport { epoch, folded }),
            other => Self::unexpected("Compact", other),
        }
    }

    fn stats(&mut self) -> ServiceResult<ServiceStats> {
        match self.connection.call(&Request::Stats)? {
            Response::Stats {
                requests,
                topk_cache_hits,
                topk_cache_misses,
                pool_size,
                epoch,
                deltas_applied,
                sets_resampled,
                log_len,
                snapshot_epoch,
                compactions,
            } => Ok(ServiceStats {
                requests,
                topk_cache_hits,
                topk_cache_misses,
                pool_size,
                epoch,
                deltas_applied,
                sets_resampled,
                log_len,
                snapshot_epoch,
                compactions,
                shards: Vec::new(),
            }),
            other => Self::unexpected("Stats", other),
        }
    }
}
