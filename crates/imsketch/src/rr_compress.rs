//! Delta/varint-compressed storage for RR-set collections.
//!
//! Section 7 of the paper asks whether the memory usage of RIS can be cut
//! down "e.g., by compressing reverse-reachable sets". RR sets are small sets
//! of vertex ids with no required order, which makes them ideal for the
//! standard inverted-index trick: sort each set, delta-encode consecutive ids
//! and store the gaps as LEB128 varints. Typical social-network RR sets
//! compress to 1–2 bytes per member instead of 4.
//!
//! [`CompressedRrSets`] is an append-only collection with per-set decoding,
//! exact byte accounting, and a coverage-count builder so a greedy
//! maximum-coverage selection (the heart of RIS) can run directly on the
//! compressed form.

use imgraph::VertexId;

/// An append-only, compressed collection of RR sets.
#[derive(Debug, Clone, Default)]
pub struct CompressedRrSets {
    /// Concatenated varint payloads.
    data: Vec<u8>,
    /// Start offset of each set in `data` (length = number of sets + 1).
    offsets: Vec<usize>,
    /// Total number of stored vertex ids across all sets.
    total_vertices: u64,
}

impl CompressedRrSets {
    /// An empty collection.
    #[must_use]
    pub fn new() -> Self {
        Self {
            data: Vec::new(),
            offsets: vec![0],
            total_vertices: 0,
        }
    }

    /// Append one RR set. The members are sorted and deduplicated internally;
    /// the stored set is the canonical ascending form.
    pub fn push(&mut self, members: &[VertexId]) {
        let mut sorted = members.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let mut prev = 0u32;
        for (i, &v) in sorted.iter().enumerate() {
            // First element is stored absolutely, the rest as gaps − 1 (gaps
            // between distinct sorted ids are at least 1).
            let delta = if i == 0 { v } else { v - prev - 1 };
            write_varint(&mut self.data, delta);
            prev = v;
        }
        self.total_vertices += sorted.len() as u64;
        self.offsets.push(self.data.len());
    }

    /// Number of stored RR sets.
    #[must_use]
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Whether the collection holds no sets.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of stored vertex ids (the paper's RIS sample size).
    #[must_use]
    pub fn total_vertices(&self) -> u64 {
        self.total_vertices
    }

    /// Compressed payload size in bytes (excluding the offset index).
    #[must_use]
    pub fn payload_bytes(&self) -> usize {
        self.data.len()
    }

    /// Bytes an uncompressed `Vec<Vec<u32>>` payload would need for the same
    /// members (4 bytes per id, ignoring per-Vec overhead).
    #[must_use]
    pub fn uncompressed_bytes(&self) -> usize {
        self.total_vertices as usize * std::mem::size_of::<VertexId>()
    }

    /// Compression ratio `uncompressed / compressed`; ≥ 1 in the typical case,
    /// or 0 when the collection is empty.
    #[must_use]
    pub fn compression_ratio(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.uncompressed_bytes() as f64 / self.payload_bytes() as f64
        }
    }

    /// Decode the `index`-th RR set into ascending vertex ids.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn decode(&self, index: usize) -> Vec<VertexId> {
        assert!(
            index < self.len(),
            "RR set index {index} out of range ({})",
            self.len()
        );
        let slice = &self.data[self.offsets[index]..self.offsets[index + 1]];
        let mut result = Vec::new();
        let mut cursor = 0usize;
        let mut prev = 0u32;
        while cursor < slice.len() {
            let (delta, read) = read_varint(&slice[cursor..]);
            cursor += read;
            let value = if result.is_empty() {
                delta
            } else {
                prev + delta + 1
            };
            result.push(value);
            prev = value;
        }
        result
    }

    /// Iterate over all sets, decoding lazily.
    pub fn iter(&self) -> impl Iterator<Item = Vec<VertexId>> + '_ {
        (0..self.len()).map(|i| self.decode(i))
    }

    /// For a graph of `n` vertices, count how many stored RR sets contain each
    /// vertex — the coverage counts greedy maximum coverage starts from.
    #[must_use]
    pub fn coverage_counts(&self, n: usize) -> Vec<u32> {
        let mut counts = vec![0u32; n];
        for set in self.iter() {
            for v in set {
                counts[v as usize] += 1;
            }
        }
        counts
    }
}

/// LEB128 unsigned varint encoding.
fn write_varint(out: &mut Vec<u8>, mut value: u32) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Decode one LEB128 varint; returns the value and the number of bytes read.
fn read_varint(data: &[u8]) -> (u32, usize) {
    let mut value = 0u32;
    let mut shift = 0u32;
    for (i, &byte) in data.iter().enumerate() {
        value |= u32::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return (value, i + 1);
        }
        shift += 7;
    }
    panic!("truncated varint");
}

#[cfg(test)]
mod tests {
    use super::*;
    use imrand::{Pcg32, Rng32};

    #[test]
    fn varint_round_trip() {
        let values = [0u32, 1, 127, 128, 300, 16_383, 16_384, u32::MAX];
        for &v in &values {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let (decoded, read) = read_varint(&buf);
            assert_eq!(decoded, v);
            assert_eq!(read, buf.len());
        }
    }

    #[test]
    fn push_and_decode_round_trip() {
        let mut c = CompressedRrSets::new();
        c.push(&[5, 2, 9, 2]);
        c.push(&[]);
        c.push(&[1_000_000, 0]);
        assert_eq!(c.len(), 3);
        assert_eq!(c.decode(0), vec![2, 5, 9]);
        assert_eq!(c.decode(1), Vec::<VertexId>::new());
        assert_eq!(c.decode(2), vec![0, 1_000_000]);
        assert_eq!(c.total_vertices(), 5);
    }

    #[test]
    fn dense_consecutive_sets_compress_well() {
        let mut c = CompressedRrSets::new();
        let members: Vec<VertexId> = (1_000_000..1_000_200).collect();
        for _ in 0..50 {
            c.push(&members);
        }
        // Consecutive ids delta-encode to gap 0 = one byte each, plus a few
        // bytes for the absolute first element.
        assert!(
            c.compression_ratio() > 3.0,
            "ratio {}",
            c.compression_ratio()
        );
        assert_eq!(c.decode(49), members);
    }

    #[test]
    fn coverage_counts_match_brute_force() {
        let mut c = CompressedRrSets::new();
        let sets = [vec![0u32, 2, 4], vec![2, 3], vec![4], vec![0, 2]];
        for s in &sets {
            c.push(s);
        }
        let counts = c.coverage_counts(5);
        assert_eq!(counts, vec![2, 0, 3, 1, 2]);
    }

    #[test]
    fn random_round_trip_property() {
        let mut rng = Pcg32::seed_from_u64(7);
        let mut c = CompressedRrSets::new();
        let mut reference: Vec<Vec<VertexId>> = Vec::new();
        for _ in 0..200 {
            let len = rng.gen_index(30);
            let set: Vec<VertexId> = (0..len).map(|_| rng.gen_range(10_000)).collect();
            let mut canonical = set.clone();
            canonical.sort_unstable();
            canonical.dedup();
            c.push(&set);
            reference.push(canonical);
        }
        for (i, expect) in reference.iter().enumerate() {
            assert_eq!(&c.decode(i), expect, "set {i}");
        }
        assert_eq!(c.iter().count(), 200);
    }

    #[test]
    fn empty_collection_properties() {
        let c = CompressedRrSets::new();
        assert!(c.is_empty());
        assert_eq!(c.compression_ratio(), 0.0);
        assert_eq!(c.payload_bytes(), 0);
        assert!(c.coverage_counts(3).iter().all(|&x| x == 0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn decode_out_of_range_panics() {
        let c = CompressedRrSets::new();
        let _ = c.decode(0);
    }
}
