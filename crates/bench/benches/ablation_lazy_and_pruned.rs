//! Ablation: Estimate-call pruning — plain greedy vs CELF vs CELF++ vs UBLF.
//!
//! Section 3.3.3 surveys two pruning families for the greedy loop: lazy
//! evaluation (CELF, CELF++) and static upper bounds (UBLF). This bench counts
//! the Estimate calls each one issues for the same RIS estimator and checks
//! that all four return the same seed set, then times the two cheapest.

use criterion::{criterion_group, criterion_main, Criterion};
use im_core::celfpp::celf_pp_select;
use im_core::ris::RisEstimator;
use im_core::ublf::{influence_upper_bounds, ublf_select};
use im_core::{celf_select, greedy_select};
use imnet::ProbabilityModel;
use imrand::{default_rng, Pcg32};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let instance = im_bench::ba_dense(ProbabilityModel::InDegreeWeighted);
    let graph = &instance.graph;
    let k = 16;
    let theta = 8_192;
    let bounds = influence_upper_bounds(graph, 32);

    println!(
        "\n--- Ablation: greedy vs CELF vs CELF++ vs UBLF (BA_d iwc, k = {k}, θ = {theta}) ---"
    );
    let mut plain_est = RisEstimator::new(graph, theta, &mut Pcg32::seed_from_u64(5));
    let plain = greedy_select(&mut plain_est, k, &mut Pcg32::seed_from_u64(7));
    let mut celf_est = RisEstimator::new(graph, theta, &mut Pcg32::seed_from_u64(5));
    let celf = celf_select(&mut celf_est, k, &mut Pcg32::seed_from_u64(7));
    let mut cpp_est = RisEstimator::new(graph, theta, &mut Pcg32::seed_from_u64(5));
    let (cpp, cpp_stats) = celf_pp_select(&mut cpp_est, k, &mut Pcg32::seed_from_u64(7));
    let mut ublf_est = RisEstimator::new(graph, theta, &mut Pcg32::seed_from_u64(5));
    let (ublf, ublf_stats) = ublf_select(&mut ublf_est, k, &bounds, &mut Pcg32::seed_from_u64(7));

    println!("plain greedy : {:>9} estimate calls", plain.estimate_calls);
    println!("CELF         : {:>9} estimate calls", celf.estimate_calls);
    println!(
        "CELF++       : {:>9} estimate calls ({} promotions)",
        cpp.estimate_calls, cpp_stats.promotions
    );
    println!(
        "UBLF         : {:>9} estimate calls ({} candidates pruned)",
        ublf.estimate_calls, ublf_stats.pruned
    );
    println!(
        "identical seed sets: CELF {}, CELF++ {}, UBLF {}",
        plain.seed_set() == celf.seed_set(),
        plain.seed_set() == cpp.seed_set(),
        plain.seed_set() == ublf.seed_set(),
    );

    let mut group = c.benchmark_group("ablation_lazy_and_pruned");
    group.sample_size(10);
    group.bench_function("celf/ris_theta2048_k8", |b| {
        b.iter(|| {
            let mut est = RisEstimator::new(graph, 2_048, &mut default_rng(3));
            black_box(celf_select(&mut est, 8, &mut default_rng(4)))
        })
    });
    group.bench_function("celfpp/ris_theta2048_k8", |b| {
        b.iter(|| {
            let mut est = RisEstimator::new(graph, 2_048, &mut default_rng(3));
            black_box(celf_pp_select(&mut est, 8, &mut default_rng(4)))
        })
    });
    group.bench_function("ublf/ris_theta2048_k8", |b| {
        b.iter(|| {
            let mut est = RisEstimator::new(graph, 2_048, &mut default_rng(3));
            black_box(ublf_select(&mut est, 8, &bounds, &mut default_rng(4)))
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
