//! # im-study
//!
//! A Rust reproduction of *"The Solution Distribution of Influence
//! Maximization: A High-level Experimental Study on Three Algorithmic
//! Approaches"* (Naoto Ohsaka, SIGMOD 2020).
//!
//! The workspace implements the three algorithmic approaches the paper studies
//! — **Oneshot** (Monte-Carlo simulation), **Snapshot** (pre-sampled live-edge
//! graphs) and **RIS** (reverse influence sampling) — on top of substrates
//! built from scratch (graphs, generators, PRNGs, diffusion simulation), plus
//! the full experimental harness that regenerates every table and figure of
//! the paper's evaluation.
//!
//! This facade crate re-exports the member crates under stable names and
//! offers a small [`prelude`] so examples and downstream users can get going
//! with one import:
//!
//! ```
//! use im_study::prelude::*;
//!
//! // Build an influence graph: the Karate club under the uniform cascade.
//! let graph = Dataset::Karate.influence_graph(ProbabilityModel::uc01(), 0);
//!
//! // Pick 2 seeds with RIS using 4,096 RR sets.
//! let outcome = Algorithm::Ris { theta: 4_096 }.run(&graph, 2, 42);
//! assert_eq!(outcome.seeds.len(), 2);
//!
//! // Evaluate the chosen seeds with a shared influence oracle.
//! let mut rng = imrand::default_rng(7);
//! let oracle = InfluenceOracle::builder(50_000).sample_with_rng(&graph, &mut rng);
//! let spread = oracle.estimate_seed_set(&outcome.seeds);
//! assert!(spread > 2.0 && spread < 34.0);
//! ```
//!
//! ## Crate map
//!
//! | Crate | Contents |
//! |---|---|
//! | [`imrand`] | MT19937, PCG32, SplitMix64, sampling utilities |
//! | [`imgraph`] | CSR digraphs, influence graphs, reachability, components, statistics |
//! | [`imnet`] | Karate club, Barabási–Albert / Erdős–Rényi / Watts–Strogatz / Chung–Lu generators, SNAP analogs, edge-probability models |
//! | [`im_core`] | IC/LT diffusion, greedy framework, Oneshot / Snapshot / RIS (both models), CELF / CELF++ / UBLF pruning, exact influence, sample-number determination, influence oracle, worst-case bounds |
//! | [`imdyn`] | incremental RR-set maintenance for evolving graphs: typed deltas, dirty-set resampling, rebuild-equivalence contract |
//! | [`imheur`] | heuristic baselines: degree, degree discount, PageRank, IRIE, random |
//! | [`imsketch`] | bottom-k reachability sketches, exact descendant counting, sketch-space greedy, compressed RR sets |
//! | [`imstats`] | seed-set distributions, Shannon entropy, divergences, confidence intervals, influence summary statistics, comparable ratios |
//! | [`imexp`] | experiment drivers for every table and figure of the paper |
//! | [`imserve`] | persistent influence-query service: typed `InfluenceService` trait over local/remote/sharded backends, binary RR-index build/load (whole pools or shards), query engine with TopK LRU cache and mutation WAL, TCP front end (protocol v1+v2), loadtest |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use im_core;
pub use imdyn;
pub use imexp;
pub use imgraph;
pub use imheur;
pub use imnet;
pub use imrand;
pub use imserve;
pub use imsketch;
pub use imstats;

/// The most commonly used types, re-exported for one-line imports.
pub mod prelude {
    pub use im_core::{
        Algorithm, Backend, InfluenceEstimator, InfluenceOracle, OneshotEstimator, RisEstimator,
        RunOptions, RunOutcome, SampleBudget, SampleSize, SeedSet, SnapshotEstimator,
        TraversalCost,
    };
    pub use imdyn::DynamicOracle;
    pub use imexp::{ApproachKind, ExperimentScale, InstanceConfig, PreparedInstance, SweepConfig};
    pub use imgraph::{
        DeltaLog, DiGraph, GraphBuilder, GraphDelta, InfluenceGraph, MutableInfluenceGraph,
        VertexId,
    };
    pub use imheur::{DegreeDiscount, MaxDegree, PageRankSelector, SeedSelector};
    pub use imnet::{Dataset, DatasetSpec, ProbabilityModel};
    pub use imrand::{default_rng, Mt19937, Pcg32, Rng32};
    pub use imserve::{
        IndexArtifact, InfluenceService, LocalService, QueryEngine, RemoteService, ShardedService,
        TopKAlgorithm,
    };
    pub use imsketch::{CompressedRrSets, ReachabilitySketches, SketchGreedy};
    pub use imstats::{EmpiricalDistribution, SampleCurve, SummaryStats};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_exposes_an_end_to_end_workflow() {
        let graph = Dataset::Karate.influence_graph(ProbabilityModel::uc001(), 0);
        let outcome = Algorithm::Snapshot { tau: 32 }.run(&graph, 1, 1);
        assert_eq!(outcome.seeds.len(), 1);
        let mut rng = default_rng(2);
        let oracle = InfluenceOracle::builder(10_000).sample_with_rng(&graph, &mut rng);
        assert!(oracle.estimate_seed_set(&outcome.seeds) >= 1.0);
    }

    #[test]
    fn prelude_exposes_the_serving_layer() {
        let graph = Dataset::Karate.influence_graph(ProbabilityModel::uc01(), 0);
        let artifact = IndexArtifact::build("Karate", "uc0.1", graph, 2_000, 5);
        let reloaded = IndexArtifact::from_bytes(&artifact.to_bytes()).unwrap();
        let engine = QueryEngine::builder(reloaded).build().unwrap();
        let mut scratch = engine.new_scratch();
        let request = imserve::Request::TopK {
            k: 2,
            algorithm: TopKAlgorithm::Greedy,
        };
        let response = engine.handle(&request, &mut scratch);
        let (expected, _) = artifact.oracle.greedy_seed_set(2);
        match response {
            imserve::Response::TopK { seeds, .. } => assert_eq!(seeds, expected),
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn prelude_exposes_the_dynamic_subsystem() {
        let graph = Dataset::Karate.influence_graph(ProbabilityModel::uc01(), 0);
        let mut dynamic = DynamicOracle::build(graph, 1_000, 3, Backend::Sequential);
        let outcome = dynamic
            .apply(GraphDelta::InsertEdge {
                source: 0,
                target: 33,
                probability: 0.5,
            })
            .unwrap();
        assert_eq!(outcome.epoch, 1);
        assert!(dynamic.matches_rebuild());
    }
}
