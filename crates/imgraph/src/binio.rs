//! Compact binary on-disk format for graphs and derived artifacts.
//!
//! The plain-text edge lists of [`crate::io`] are convenient for interchange
//! but far too slow for a serving path that must reload a prebuilt index in
//! milliseconds. This module provides the binary framing every persisted
//! artifact in the workspace shares, plus the codec for [`InfluenceGraph`]:
//!
//! ```text
//! magic (4 bytes) | version (u32 LE) | section* | checksum (u64 LE)
//! section := tag (4 bytes) | payload length (u64 LE) | payload bytes
//! ```
//!
//! The trailing checksum is FNV-1a 64 over every preceding byte (magic and
//! version included), so any truncation or single-byte corruption anywhere in
//! the file is rejected with a typed [`BinError`] before any payload is
//! interpreted. All integers are little-endian; floats are IEEE-754 bit
//! patterns, so round-trips are byte-identical.

use crate::{DiGraph, Edge, InfluenceGraph};

/// Errors produced while encoding or decoding binary artifacts.
#[derive(Debug)]
pub enum BinError {
    /// Underlying I/O failure (file-level save/load helpers).
    Io(std::io::Error),
    /// The leading magic bytes did not match the expected format.
    BadMagic {
        /// The magic the caller expected.
        expected: [u8; 4],
        /// The bytes actually found (zero-padded if the input was short).
        found: [u8; 4],
    },
    /// The format version is newer than this build understands.
    UnsupportedVersion {
        /// Version stored in the artifact.
        found: u32,
        /// Highest version this build can decode.
        supported: u32,
    },
    /// The input ended before a declared length was satisfied.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// The trailing checksum did not match the content.
    ChecksumMismatch {
        /// Checksum stored in the trailer.
        stored: u64,
        /// Checksum computed over the content.
        computed: u64,
    },
    /// Structurally valid framing carrying semantically invalid content.
    Corrupt(String),
}

impl std::fmt::Display for BinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BinError::Io(e) => write!(f, "I/O error: {e}"),
            BinError::BadMagic { expected, found } => write!(
                f,
                "bad magic: expected {:?}, found {:?}",
                String::from_utf8_lossy(expected),
                String::from_utf8_lossy(found)
            ),
            BinError::UnsupportedVersion { found, supported } => {
                write!(
                    f,
                    "unsupported version {found} (this build reads <= {supported})"
                )
            }
            BinError::Truncated { needed, available } => {
                write!(
                    f,
                    "truncated input: needed {needed} bytes, have {available}"
                )
            }
            BinError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            BinError::Corrupt(reason) => write!(f, "corrupt artifact: {reason}"),
        }
    }
}

impl std::error::Error for BinError {}

impl From<std::io::Error> for BinError {
    fn from(e: std::io::Error) -> Self {
        BinError::Io(e)
    }
}

/// Section tag for a serialized mutation log ([`crate::delta::DeltaLog`]),
/// shared by the standalone log artifact and the `imserve` index artifact so
/// every persisted delta log is recognizable by the same four bytes.
pub const DELTA_TAG: [u8; 4] = *b"DLTA";

/// Section tag for a compaction watermark: the epoch a snapshot was folded at
/// (see [`crate::delta::GraphSnapshot`]). Shared by the standalone snapshot
/// artifact and version-3 `imserve` index artifacts so every epoch stamp is
/// recognizable by the same four bytes.
pub const SNAPSHOT_TAG: [u8; 4] = *b"SNAP";

/// FNV-1a 64-bit hash of `bytes` (the format's integrity checksum).
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

// ---------------------------------------------------------------------------
// Payload encoding helpers
// ---------------------------------------------------------------------------

/// Append a `u32` in little-endian order.
pub fn put_u32(buf: &mut Vec<u8>, x: u32) {
    buf.extend_from_slice(&x.to_le_bytes());
}

/// Append a `u64` in little-endian order.
pub fn put_u64(buf: &mut Vec<u8>, x: u64) {
    buf.extend_from_slice(&x.to_le_bytes());
}

/// Append an `f64` as its IEEE-754 bit pattern in little-endian order.
pub fn put_f64(buf: &mut Vec<u8>, x: f64) {
    buf.extend_from_slice(&x.to_bits().to_le_bytes());
}

/// Append a length-prefixed `u32` slice.
pub fn put_u32_slice(buf: &mut Vec<u8>, xs: &[u32]) {
    put_u64(buf, xs.len() as u64);
    for &x in xs {
        put_u32(buf, x);
    }
}

/// Append a length-prefixed `f64` slice.
pub fn put_f64_slice(buf: &mut Vec<u8>, xs: &[f64]) {
    put_u64(buf, xs.len() as u64);
    for &x in xs {
        put_f64(buf, x);
    }
}

/// Append a length-prefixed byte string.
pub fn put_bytes(buf: &mut Vec<u8>, bytes: &[u8]) {
    put_u64(buf, bytes.len() as u64);
    buf.extend_from_slice(bytes);
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Builds one framed artifact: header, tagged sections, trailing checksum.
#[derive(Debug)]
pub struct BinWriter {
    buf: Vec<u8>,
}

impl BinWriter {
    /// Start an artifact with the given magic and version.
    #[must_use]
    pub fn new(magic: [u8; 4], version: u32) -> Self {
        let mut buf = Vec::with_capacity(64);
        buf.extend_from_slice(&magic);
        put_u32(&mut buf, version);
        Self { buf }
    }

    /// Append one tagged, length-prefixed section.
    pub fn section(&mut self, tag: [u8; 4], payload: &[u8]) {
        self.buf.extend_from_slice(&tag);
        put_u64(&mut self.buf, payload.len() as u64);
        self.buf.extend_from_slice(payload);
    }

    /// Finish the artifact: append the checksum and return the bytes.
    #[must_use]
    pub fn finish(mut self) -> Vec<u8> {
        let checksum = fnv1a64(&self.buf);
        put_u64(&mut self.buf, checksum);
        self.buf
    }
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// Cursor over one payload's bytes with bounds-checked primitive reads.
#[derive(Debug, Clone, Copy)]
pub struct Payload<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Payload<'a> {
    /// Wrap raw payload bytes.
    #[must_use]
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], BinError> {
        let available = self.bytes.len() - self.pos;
        if n > available {
            return Err(BinError::Truncated {
                needed: n,
                available,
            });
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Read a single byte.
    pub fn u8(&mut self) -> Result<u8, BinError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, BinError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, BinError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Read an `f64` from its IEEE-754 bit pattern.
    pub fn f64(&mut self) -> Result<f64, BinError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read the length declared by `self.u64()` and validate it against the
    /// remaining bytes, guarding against lengths forged to exhaust memory.
    fn checked_len(&mut self, elem_size: usize) -> Result<usize, BinError> {
        let declared = self.u64()?;
        let available = self.bytes.len() - self.pos;
        let len = usize::try_from(declared).map_err(|_| BinError::Truncated {
            needed: usize::MAX,
            available,
        })?;
        match len.checked_mul(elem_size) {
            Some(total) if total <= available => Ok(len),
            _ => Err(BinError::Truncated {
                needed: len.saturating_mul(elem_size),
                available,
            }),
        }
    }

    /// Read a length-prefixed `u32` slice.
    pub fn u32_slice(&mut self) -> Result<Vec<u32>, BinError> {
        let len = self.checked_len(4)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.u32()?);
        }
        Ok(out)
    }

    /// Read a length-prefixed `f64` slice.
    pub fn f64_slice(&mut self) -> Result<Vec<f64>, BinError> {
        let len = self.checked_len(8)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.f64()?);
        }
        Ok(out)
    }

    /// Read a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8], BinError> {
        let len = self.checked_len(1)?;
        self.take(len)
    }

    /// Number of unread bytes.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// All unread bytes, consuming the payload (for nested artifacts whose
    /// length the section framing already established).
    #[must_use]
    pub fn rest(mut self) -> &'a [u8] {
        self.take(self.remaining()).expect("remaining bytes exist")
    }
}

/// Walks the sections of one framed artifact after verifying its integrity.
#[derive(Debug)]
pub struct BinReader<'a> {
    /// Content between the header and the checksum trailer.
    body: &'a [u8],
    pos: usize,
    /// Format version decoded from the header.
    version: u32,
}

impl<'a> BinReader<'a> {
    /// Verify magic, version and checksum, returning a section iterator.
    ///
    /// `supported_version` is the highest version this caller understands;
    /// older versions are accepted (sections are tagged, so decoders skip
    /// unknown tags).
    pub fn new(bytes: &'a [u8], magic: [u8; 4], supported_version: u32) -> Result<Self, BinError> {
        // Header (4 + 4) plus checksum trailer (8).
        if bytes.len() < 16 {
            return Err(BinError::Truncated {
                needed: 16,
                available: bytes.len(),
            });
        }
        let mut found = [0u8; 4];
        found.copy_from_slice(&bytes[..4]);
        if found != magic {
            return Err(BinError::BadMagic {
                expected: magic,
                found,
            });
        }
        let stored = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().expect("8 bytes"));
        let computed = fnv1a64(&bytes[..bytes.len() - 8]);
        if stored != computed {
            return Err(BinError::ChecksumMismatch { stored, computed });
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
        if version > supported_version {
            return Err(BinError::UnsupportedVersion {
                found: version,
                supported: supported_version,
            });
        }
        Ok(Self {
            body: &bytes[8..bytes.len() - 8],
            pos: 0,
            version,
        })
    }

    /// The format version stored in the artifact header (already validated
    /// to be `<= supported_version`). Lets decoders gate on *older* versions
    /// without re-parsing the header layout themselves.
    #[must_use]
    pub fn version(&self) -> u32 {
        self.version
    }

    /// The next `(tag, payload)` section, or `None` when all are consumed.
    pub fn next_section(&mut self) -> Result<Option<([u8; 4], Payload<'a>)>, BinError> {
        if self.pos == self.body.len() {
            return Ok(None);
        }
        let available = self.body.len() - self.pos;
        if available < 12 {
            return Err(BinError::Truncated {
                needed: 12,
                available,
            });
        }
        let mut tag = [0u8; 4];
        tag.copy_from_slice(&self.body[self.pos..self.pos + 4]);
        let len = u64::from_le_bytes(
            self.body[self.pos + 4..self.pos + 12]
                .try_into()
                .expect("8 bytes"),
        );
        let len = usize::try_from(len).map_err(|_| BinError::Truncated {
            needed: usize::MAX,
            available,
        })?;
        if available - 12 < len {
            return Err(BinError::Truncated {
                needed: len + 12,
                available,
            });
        }
        let payload = Payload::new(&self.body[self.pos + 12..self.pos + 12 + len]);
        self.pos += 12 + len;
        Ok(Some((tag, payload)))
    }

    /// Collect all sections, erroring on malformed framing.
    pub fn sections(mut self) -> Result<Vec<([u8; 4], Payload<'a>)>, BinError> {
        let mut out = Vec::new();
        while let Some(section) = self.next_section()? {
            out.push(section);
        }
        Ok(out)
    }
}

/// Find the payload of a required section by tag.
pub fn require_section<'a>(
    sections: &[([u8; 4], Payload<'a>)],
    tag: [u8; 4],
) -> Result<Payload<'a>, BinError> {
    sections
        .iter()
        .find(|(t, _)| *t == tag)
        .map(|(_, p)| *p)
        .ok_or_else(|| {
            BinError::Corrupt(format!(
                "missing section {:?}",
                String::from_utf8_lossy(&tag)
            ))
        })
}

// ---------------------------------------------------------------------------
// InfluenceGraph codec
// ---------------------------------------------------------------------------

/// Magic bytes of a serialized [`InfluenceGraph`].
pub const GRAPH_MAGIC: [u8; 4] = *b"IMGB";
/// Current [`InfluenceGraph`] format version.
pub const GRAPH_VERSION: u32 = 1;

const HEAD_TAG: [u8; 4] = *b"HEAD";
const EDGE_TAG: [u8; 4] = *b"EDGE";
const PROB_TAG: [u8; 4] = *b"PROB";

/// Serialize an [`InfluenceGraph`] to the binary format.
///
/// Edges are stored in insertion (edge-id) order, so probabilities — which are
/// indexed by edge id — follow positionally and the CSR rebuilt on load is
/// structurally identical to the original.
#[must_use]
pub fn influence_graph_to_bytes(ig: &InfluenceGraph) -> Vec<u8> {
    let mut w = BinWriter::new(GRAPH_MAGIC, GRAPH_VERSION);

    let mut head = Vec::with_capacity(16);
    put_u64(&mut head, ig.num_vertices() as u64);
    put_u64(&mut head, ig.num_edges() as u64);
    w.section(HEAD_TAG, &head);

    let edges = ig.graph().edges_in_insertion_order();
    let mut flat = Vec::with_capacity(edges.len() * 8);
    for (u, v) in edges {
        put_u32(&mut flat, u);
        put_u32(&mut flat, v);
    }
    w.section(EDGE_TAG, &flat);

    let mut probs = Vec::with_capacity(ig.num_edges() * 8 + 8);
    put_f64_slice(&mut probs, ig.probabilities());
    w.section(PROB_TAG, &probs);

    w.finish()
}

/// Deserialize an [`InfluenceGraph`] written by [`influence_graph_to_bytes`].
///
/// All invariants the in-memory constructors assert (endpoint ranges, edge
/// count consistency, probabilities in `(0, 1]`) are re-validated here and
/// reported as [`BinError::Corrupt`] instead of panicking, so a damaged file
/// that happens to pass the checksum still cannot crash a server.
pub fn influence_graph_from_bytes(bytes: &[u8]) -> Result<InfluenceGraph, BinError> {
    let sections = BinReader::new(bytes, GRAPH_MAGIC, GRAPH_VERSION)?.sections()?;

    let mut head = require_section(&sections, HEAD_TAG)?;
    let n = usize::try_from(head.u64()?)
        .map_err(|_| BinError::Corrupt("vertex count exceeds usize".into()))?;
    let m = usize::try_from(head.u64()?)
        .map_err(|_| BinError::Corrupt("edge count exceeds usize".into()))?;

    let mut edge_payload = require_section(&sections, EDGE_TAG)?;
    if edge_payload.remaining()
        != m.checked_mul(8)
            .ok_or_else(|| BinError::Corrupt("edge section size overflows".into()))?
    {
        return Err(BinError::Corrupt(format!(
            "edge section holds {} bytes, expected {}",
            edge_payload.remaining(),
            m * 8
        )));
    }
    let mut edges: Vec<Edge> = Vec::with_capacity(m);
    for _ in 0..m {
        let u = edge_payload.u32()?;
        let v = edge_payload.u32()?;
        if u as usize >= n || v as usize >= n {
            return Err(BinError::Corrupt(format!(
                "edge ({u}, {v}) out of range for {n} vertices"
            )));
        }
        edges.push((u, v));
    }

    let mut prob_payload = require_section(&sections, PROB_TAG)?;
    let probabilities = prob_payload.f64_slice()?;
    if probabilities.len() != m {
        return Err(BinError::Corrupt(format!(
            "{} probabilities for {m} edges",
            probabilities.len()
        )));
    }
    for (i, &p) in probabilities.iter().enumerate() {
        if !crate::is_valid_probability(p) {
            return Err(BinError::Corrupt(format!(
                "edge {i} has invalid probability {p}"
            )));
        }
    }

    Ok(InfluenceGraph::new(
        DiGraph::from_edges(n, &edges),
        probabilities,
    ))
}

/// Write an [`InfluenceGraph`] to a file in the binary format.
pub fn save_influence_graph(
    ig: &InfluenceGraph,
    path: impl AsRef<std::path::Path>,
) -> Result<(), BinError> {
    std::fs::write(path, influence_graph_to_bytes(ig))?;
    Ok(())
}

/// Read an [`InfluenceGraph`] from a file written by [`save_influence_graph`].
pub fn load_influence_graph(path: impl AsRef<std::path::Path>) -> Result<InfluenceGraph, BinError> {
    influence_graph_from_bytes(&std::fs::read(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_graph() -> InfluenceGraph {
        let g = DiGraph::from_edges(5, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]);
        InfluenceGraph::new(g, vec![0.5, 0.25, 1.0, 0.125, 0.0625])
    }

    #[test]
    fn graph_round_trip_is_byte_identical() {
        let ig = sample_graph();
        let bytes = influence_graph_to_bytes(&ig);
        let back = influence_graph_from_bytes(&bytes).unwrap();
        assert_eq!(back.num_vertices(), ig.num_vertices());
        assert_eq!(back.probabilities(), ig.probabilities());
        assert_eq!(
            back.graph().edges_in_insertion_order(),
            ig.graph().edges_in_insertion_order()
        );
        assert_eq!(influence_graph_to_bytes(&back), bytes);
    }

    #[test]
    fn every_truncation_is_rejected() {
        let bytes = influence_graph_to_bytes(&sample_graph());
        for cut in 0..bytes.len() {
            let err = influence_graph_from_bytes(&bytes[..cut]);
            assert!(err.is_err(), "truncation at {cut} must fail");
        }
    }

    #[test]
    fn every_single_byte_flip_is_rejected() {
        let bytes = influence_graph_to_bytes(&sample_graph());
        for i in 0..bytes.len() {
            let mut damaged = bytes.clone();
            damaged[i] ^= 0x40;
            assert!(
                influence_graph_from_bytes(&damaged).is_err(),
                "flip at byte {i} must fail"
            );
        }
    }

    #[test]
    fn wrong_magic_and_future_version_are_typed_errors() {
        let bytes = influence_graph_to_bytes(&sample_graph());
        let mut wrong_magic = bytes.clone();
        wrong_magic[0] = b'X';
        // Re-stamp the checksum so the magic check is what fires.
        let len = wrong_magic.len();
        let sum = fnv1a64(&wrong_magic[..len - 8]);
        wrong_magic[len - 8..].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            influence_graph_from_bytes(&wrong_magic),
            Err(BinError::BadMagic { .. })
        ));

        let mut future = bytes;
        future[4..8].copy_from_slice(&99u32.to_le_bytes());
        let len = future.len();
        let sum = fnv1a64(&future[..len - 8]);
        future[len - 8..].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            influence_graph_from_bytes(&future),
            Err(BinError::UnsupportedVersion {
                found: 99,
                supported: GRAPH_VERSION
            })
        ));
    }

    #[test]
    fn invalid_probability_is_corrupt_not_panic() {
        let ig = sample_graph();
        // Hand-build an artifact with a probability of 0.0.
        let mut w = BinWriter::new(GRAPH_MAGIC, GRAPH_VERSION);
        let mut head = Vec::new();
        put_u64(&mut head, ig.num_vertices() as u64);
        put_u64(&mut head, 1);
        w.section(HEAD_TAG, &head);
        let mut flat = Vec::new();
        put_u32(&mut flat, 0);
        put_u32(&mut flat, 1);
        w.section(EDGE_TAG, &flat);
        let mut probs = Vec::new();
        put_f64_slice(&mut probs, &[0.0]);
        w.section(PROB_TAG, &probs);
        assert!(matches!(
            influence_graph_from_bytes(&w.finish()),
            Err(BinError::Corrupt(_))
        ));
    }

    #[test]
    fn file_round_trip() {
        let ig = sample_graph();
        let path = std::env::temp_dir().join("imgraph_binio_test.imgb");
        save_influence_graph(&ig, &path).unwrap();
        let back = load_influence_graph(&path).unwrap();
        assert_eq!(back.probabilities(), ig.probabilities());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn payload_reads_are_bounds_checked() {
        let mut p = Payload::new(&[1, 2, 3]);
        assert!(matches!(p.u32(), Err(BinError::Truncated { .. })));
        let mut q = Payload::new(&[0xFF; 8]);
        // A forged length prefix far beyond the available bytes must not
        // trigger a huge allocation.
        assert!(matches!(q.u32_slice(), Err(BinError::Truncated { .. })));
    }

    #[test]
    fn fnv_vector() {
        // Known FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
