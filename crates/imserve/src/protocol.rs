//! The wire protocol: newline-delimited JSON request/response frames.
//!
//! One request per line, one response per line, externally-tagged enums (the
//! representation both real serde and the vendored stand-in produce for plain
//! derives), e.g.:
//!
//! ```text
//! -> {"Estimate":{"seeds":[0,5]}}
//! <- {"Estimate":{"seeds":[0,5],"spread":12.75}}
//! -> {"TopK":{"k":2,"algorithm":"Greedy"}}
//! <- {"TopK":{"seeds":[33,0],"spread":14.5,"algorithm":"Greedy"}}
//! ```
//!
//! Responses to the same request against the same index are byte-identical —
//! the engine is deterministic and no timestamps or volatile fields are ever
//! put on the wire — so clients can cache and compare freely. The diagnostic
//! `Stats` response is the one deliberate exception (counters move).

use imgraph::GraphDelta;
use serde::{Deserialize, Serialize};

use crate::error::ServeError;

/// Seed-set selection strategies the engine can answer `TopK` with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TopKAlgorithm {
    /// Greedy maximum coverage over the index's RR-set pool (the study's
    /// stand-in for Exact Greedy; deterministic for a fixed pool).
    Greedy,
    /// Rank vertices by singleton influence and take the best `k` (the
    /// degree-heuristic analog in oracle space; cheaper, no synergy).
    SingletonRank,
}

impl TopKAlgorithm {
    /// Parse the CLI spelling (`greedy` / `singleton`).
    pub fn parse(s: &str) -> Result<Self, ServeError> {
        match s {
            "greedy" => Ok(TopKAlgorithm::Greedy),
            "singleton" | "singleton-rank" => Ok(TopKAlgorithm::SingletonRank),
            _ => Err(ServeError::Protocol(format!(
                "unknown TopK algorithm {s:?} (expected greedy or singleton)"
            ))),
        }
    }
}

impl std::fmt::Display for TopKAlgorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopKAlgorithm::Greedy => write!(f, "greedy"),
            TopKAlgorithm::SingletonRank => write!(f, "singleton"),
        }
    }
}

/// A client request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Liveness check.
    Ping,
    /// Index metadata.
    Info,
    /// Estimate the influence spread of an explicit seed set.
    Estimate {
        /// The seed vertices (duplicates are tolerated and counted once).
        seeds: Vec<u32>,
    },
    /// Select an influential seed set of size `k`.
    TopK {
        /// Requested seed-set size.
        k: usize,
        /// Selection strategy.
        algorithm: TopKAlgorithm,
    },
    /// Apply a batch of graph mutations, advancing the index epoch.
    ///
    /// Deltas are applied in order; on the first failure the batch stops and
    /// an `Error` response reports how many were applied (earlier deltas in
    /// the batch stay applied — the epoch reflects them).
    Mutate {
        /// The mutations to apply, in order.
        deltas: Vec<GraphDelta>,
    },
    /// Apply a batch of graph mutations **atomically**: all deltas land or
    /// none do, the CSR is re-materialized once for the whole batch, and the
    /// union of dirty RR sets is resampled exactly once per set.
    ///
    /// Prefer this over `Mutate` for structural-delta-heavy feeds; the end
    /// state is byte-identical, only the cost and the failure semantics
    /// differ (an invalid delta rejects the whole batch and the epoch does
    /// not move).
    MutateBatch {
        /// The mutations to apply, in order, atomically.
        deltas: Vec<GraphDelta>,
    },
    /// Fold the pending delta log into the snapshot watermark now.
    ///
    /// Compaction is pure bookkeeping — the graph and pool are already at the
    /// head version — so the epoch is unchanged and concurrent queries are
    /// unaffected (readers snapshot the state behind an `Arc`).
    Compact,
    /// Serving counters, pool dimensions and the current index epoch.
    Stats,
}

/// A server response (one per request, same order).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Liveness answer.
    Pong,
    /// Index metadata.
    Info {
        /// Graph identifier from the index metadata.
        graph_id: String,
        /// Probability-model label from the index metadata.
        model: String,
        /// Vertices of the indexed graph.
        num_vertices: usize,
        /// Edges of the indexed graph.
        num_edges: usize,
        /// RR sets in the loaded pool.
        pool_size: usize,
        /// The oracle's 99 % confidence half-width `1.29·n/√pool`.
        confidence_99: f64,
    },
    /// Spread estimate for an explicit seed set.
    Estimate {
        /// The seeds echoed back (as received).
        seeds: Vec<u32>,
        /// The oracle estimate `n·(covered fraction of the pool)`.
        spread: f64,
    },
    /// A selected seed set.
    TopK {
        /// The chosen seeds in selection order.
        seeds: Vec<u32>,
        /// The oracle estimate of the joint influence of `seeds`.
        spread: f64,
        /// The strategy that produced the set.
        algorithm: TopKAlgorithm,
    },
    /// Outcome of an applied mutation batch.
    Mutate {
        /// The index epoch after the batch (total deltas ever applied).
        epoch: u64,
        /// Deltas applied by this batch.
        applied: usize,
        /// RR sets resampled by this batch.
        resampled: usize,
    },
    /// Outcome of an atomically applied mutation batch.
    MutateBatch {
        /// The index epoch after the batch (total deltas ever applied).
        epoch: u64,
        /// Deltas applied (the whole batch; atomic batches never apply a
        /// prefix).
        applied: usize,
        /// Distinct RR sets resampled (the union of the batch's dirty sets).
        resampled: usize,
        /// Whether the batch triggered an automatic compaction (the engine's
        /// compaction policy fired after the batch landed).
        compacted: bool,
    },
    /// Outcome of a compaction.
    Compact {
        /// The index epoch — unchanged by compaction, now equal to the
        /// snapshot watermark.
        epoch: u64,
        /// Pending deltas folded into the watermark.
        folded: usize,
    },
    /// Serving counters, pool dimensions and the current index epoch.
    Stats {
        /// Total requests handled (including failed ones).
        requests: u64,
        /// `TopK` answers served from the LRU cache.
        topk_cache_hits: u64,
        /// `TopK` answers computed and inserted into the cache.
        topk_cache_misses: u64,
        /// RR sets in the served pool.
        pool_size: usize,
        /// Current index epoch (total deltas ever applied, including those
        /// already folded into the loaded artifact).
        epoch: u64,
        /// Deltas applied by *this* server process.
        deltas_applied: u64,
        /// RR sets resampled by this server process.
        sets_resampled: u64,
        /// Pending (uncompacted) deltas in the log right now.
        log_len: usize,
        /// The snapshot watermark: the epoch of the last compaction (or the
        /// watermark the index was loaded with; `0` if compaction never ran).
        snapshot_epoch: u64,
        /// Compactions performed by *this* server process (manual `Compact`
        /// requests plus policy-triggered ones).
        compactions: u64,
    },
    /// The request could not be answered.
    Error {
        /// Human-readable reason.
        message: String,
    },
}

/// Encode a frame as its JSON wire line (no trailing newline).
pub fn encode<T: Serialize>(frame: &T) -> Result<String, ServeError> {
    serde_json::to_string(frame).map_err(|e| ServeError::Protocol(format!("encode: {e}")))
}

/// Decode one wire line into a frame.
pub fn decode<T: serde::Deserialize>(line: &str) -> Result<T, ServeError> {
    serde_json::from_str(line.trim()).map_err(|e| ServeError::Protocol(format!("decode: {e}")))
}

/// Parse a delta script: one [`GraphDelta`] wire frame per non-empty line
/// (the same externally-tagged JSON the `Mutate` request carries), e.g.
///
/// ```text
/// {"InsertEdge":{"source":0,"target":33,"probability":0.5}}
/// {"DeleteEdge":{"source":0,"target":1}}
/// {"SetProbability":{"source":2,"target":3,"probability":1.0}}
/// ```
///
/// Used by `imserve mutate --file` and `imserve build --deltas`, so the same
/// script drives both the incremental path and the from-scratch rebuild it
/// must match.
pub fn parse_delta_script(text: &str) -> Result<Vec<GraphDelta>, ServeError> {
    let mut deltas = Vec::new();
    for (line_no, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let delta: GraphDelta = decode(line)
            .map_err(|e| ServeError::Protocol(format!("delta script line {}: {e}", line_no + 1)))?;
        deltas.push(delta);
    }
    Ok(deltas)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_over_the_wire() {
        let frames = vec![
            Request::Ping,
            Request::Info,
            Request::Estimate {
                seeds: vec![0, 5, 9],
            },
            Request::TopK {
                k: 3,
                algorithm: TopKAlgorithm::Greedy,
            },
            Request::Stats,
        ];
        for frame in frames {
            let line = encode(&frame).unwrap();
            assert!(!line.contains('\n'), "frames must be single-line");
            let back: Request = decode(&line).unwrap();
            assert_eq!(back, frame);
        }
    }

    #[test]
    fn responses_round_trip_over_the_wire() {
        let frames = vec![
            Response::Pong,
            Response::Estimate {
                seeds: vec![1],
                spread: 3.5,
            },
            Response::TopK {
                seeds: vec![33, 0],
                spread: 14.25,
                algorithm: TopKAlgorithm::SingletonRank,
            },
            Response::Error {
                message: "nope".into(),
            },
        ];
        for frame in frames {
            let back: Response = decode(&encode(&frame).unwrap()).unwrap();
            assert_eq!(back, frame);
        }
    }

    #[test]
    fn the_wire_shape_is_externally_tagged() {
        let line = encode(&Request::Estimate { seeds: vec![0, 5] }).unwrap();
        assert_eq!(line, r#"{"Estimate":{"seeds":[0,5]}}"#);
        assert_eq!(encode(&Request::Ping).unwrap(), r#""Ping""#);
    }

    #[test]
    fn malformed_lines_are_protocol_errors() {
        assert!(decode::<Request>("{\"Estimate\":").is_err());
        assert!(decode::<Request>("{\"NoSuch\":{}}").is_err());
        assert!(decode::<Request>("").is_err());
    }

    #[test]
    fn mutation_frames_round_trip_over_the_wire() {
        let request = Request::Mutate {
            deltas: vec![
                GraphDelta::InsertEdge {
                    source: 0,
                    target: 33,
                    probability: 0.5,
                },
                GraphDelta::DeleteEdge {
                    source: 0,
                    target: 1,
                },
                GraphDelta::SetProbability {
                    source: 2,
                    target: 3,
                    probability: 1.0,
                },
            ],
        };
        let back: Request = decode(&encode(&request).unwrap()).unwrap();
        assert_eq!(back, request);

        let response = Response::Mutate {
            epoch: 3,
            applied: 3,
            resampled: 17,
        };
        let back: Response = decode(&encode(&response).unwrap()).unwrap();
        assert_eq!(back, response);

        let stats = Response::Stats {
            requests: 10,
            topk_cache_hits: 1,
            topk_cache_misses: 2,
            pool_size: 5_000,
            epoch: 3,
            deltas_applied: 3,
            sets_resampled: 17,
            log_len: 3,
            snapshot_epoch: 0,
            compactions: 0,
        };
        let back: Response = decode(&encode(&stats).unwrap()).unwrap();
        assert_eq!(back, stats);
    }

    #[test]
    fn lifecycle_frames_round_trip_over_the_wire() {
        let batch = Request::MutateBatch {
            deltas: vec![GraphDelta::InsertEdge {
                source: 0,
                target: 33,
                probability: 0.5,
            }],
        };
        let back: Request = decode(&encode(&batch).unwrap()).unwrap();
        assert_eq!(back, batch);

        let back: Request = decode(&encode(&Request::Compact).unwrap()).unwrap();
        assert_eq!(back, Request::Compact);

        let response = Response::MutateBatch {
            epoch: 5,
            applied: 3,
            resampled: 12,
            compacted: true,
        };
        let back: Response = decode(&encode(&response).unwrap()).unwrap();
        assert_eq!(back, response);

        let response = Response::Compact {
            epoch: 5,
            folded: 5,
        };
        let back: Response = decode(&encode(&response).unwrap()).unwrap();
        assert_eq!(back, response);
    }

    #[test]
    fn delta_scripts_parse_line_by_line() {
        let script = "\n{\"InsertEdge\":{\"source\":0,\"target\":33,\"probability\":0.5}}\n\
                      {\"DeleteEdge\":{\"source\":0,\"target\":1}}\n\n";
        let deltas = parse_delta_script(script).unwrap();
        assert_eq!(
            deltas,
            vec![
                GraphDelta::InsertEdge {
                    source: 0,
                    target: 33,
                    probability: 0.5
                },
                GraphDelta::DeleteEdge {
                    source: 0,
                    target: 1
                },
            ]
        );
        let err = parse_delta_script("{\"Bogus\":{}}").unwrap_err();
        assert!(err.to_string().contains("line 1"));
        assert!(parse_delta_script("").unwrap().is_empty());
    }

    #[test]
    fn algorithm_parsing() {
        assert_eq!(
            TopKAlgorithm::parse("greedy").unwrap(),
            TopKAlgorithm::Greedy
        );
        assert_eq!(
            TopKAlgorithm::parse("singleton").unwrap(),
            TopKAlgorithm::SingletonRank
        );
        assert!(TopKAlgorithm::parse("magic").is_err());
        assert_eq!(TopKAlgorithm::Greedy.to_string(), "greedy");
    }
}
