//! [`ShardedService`]: one influence service over N disjoint pool shards.
//!
//! The scale wall for a single serving process is the RR-set pool: it must
//! fit one machine's memory, and every estimate touches it. Sharding cuts
//! the global pool into N contiguous slices ([`im_core::shard_layout`]),
//! each held by its own backend (in-process engine or remote server), and
//! routes every query through this module.
//!
//! **The shard-union invariant.** Every RR set's PRNG stream derives from
//! its *global* id (SplitMix64 over `base_seed` and the id), so shard `i`'s
//! local sets are byte-identical to the corresponding slice of the single
//! pool drawn at the same seed — including after mutations, because each
//! shard resamples its dirty sets from the same global streams a whole-pool
//! engine would use. Merging is therefore exact, not approximate:
//!
//! * `estimate` sums the shards' integer **covered counts** and re-derives
//!   `spread = n · Σcovered / Σpool` — bit-identical to the single-pool
//!   answer (combining per-shard floating-point spreads would not be);
//! * `top_k` runs the greedy rounds *in the router*: each round fetches
//!   every shard's integer gain vector ([`InfluenceService::gains`]), sums
//!   them elementwise, and picks the first argmax — reproducing, pick for
//!   pick, the selection greedy makes on the union pool;
//! * mutations are **broadcast** to every shard and the returned epochs are
//!   verified to stay in lockstep; any divergence (a torn broadcast) is
//!   reported as [`ServiceError::Shard`] rather than silently merged.
//!
//! **Write ownership.** A shard group has one writer: the router (or a
//! single upstream feed all routers share). Mutating shard servers *behind*
//! a router's back can interleave with a fan-out so that different shards
//! answer one query at different epochs — a cross-epoch merge no single
//! pool could produce. The router verifies lockstep epochs wherever it can
//! do so without taxing the hot path: at construction, on every broadcast
//! outcome, on `stats`, and before every `top_k` (whose memo must never
//! serve a selection for an epoch the shards have left). A fresh
//! out-of-band mutation therefore surfaces as [`ServiceError::Shard`] at
//! the next selection or stats call instead of staying invisible.
//!
//! The router is itself an [`InfluenceService`], so sharded deployments nest
//! (shards of shards) and every caller — CLI, load generator, experiment
//! harness — works unchanged.
//!
//! **Concurrent fan-out.** Per-shard requests are issued concurrently (one
//! scoped thread per shard; remote shards overlap their network round trips,
//! local shards overlap their pool scans on a multi-core host) and the
//! results are merged in shard-index order, so the merged integers — and
//! therefore the derived spreads and selections — are byte-identical to the
//! sequential fan-out and to a single-pool backend. Failure semantics are
//! typed: a shard that rejects the *request* (a [`ServiceError::Query`] or
//! [`ServiceError::Mutation`]) fails the fan-out with that same error, since
//! every shard rejects deterministically alike; a shard that breaks
//! *mid-fan-out* (dropped connection, timeout, protocol violation) surfaces
//! as [`ServiceError::Shard`] naming the shard index. Set a per-shard
//! deadline with [`InfluenceService::set_deadline`] so a dead shard degrades
//! the answer loudly instead of hanging the router.

use std::sync::Arc;
use std::time::Instant;

use imdyn::EpochReport;
use imgraph::GraphDelta;
use imobs::EventField;

use crate::obs::{ServingMetrics, ShardLane};
use crate::protocol::TopKAlgorithm;
use crate::service::{
    CompactionReport, EventRecord, GainVector, GaugeSample, HealthReport, InfluenceService,
    MetricsReport, MutationOutcome, ServiceError, ServiceInfo, ServiceResult, ServiceStats,
    SpreadEstimate, TopKSelection,
};

/// A router over N shard backends (see the module docs for the invariant).
#[derive(Debug)]
pub struct ShardedService<S: InfluenceService> {
    shards: Vec<S>,
    /// Merged metadata, validated at construction and after every mutation.
    info: ServiceInfo,
    /// The lockstep epoch as of the last verification (construction,
    /// broadcast outcome, `stats`, or the pre-`top_k` refresh).
    epoch: u64,
    /// One memoized selection: `(k, algorithm, epoch) -> selection`. The
    /// router-driven greedy costs `k` gain rounds per shard, so repeated
    /// identical selections (the common loadtest shape) shouldn't pay it
    /// twice; backend-side LRU caches cannot help here because the router
    /// never calls backend `top_k`. Guarded by the pre-`top_k` epoch
    /// refresh, so a selection computed for a departed epoch cannot be
    /// served.
    memo: Option<(usize, TopKAlgorithm, u64, TopKSelection)>,
    /// Router-side metrics: fan-out counts plus one labelled lane per shard.
    obs: Arc<ServingMetrics>,
    /// Pre-fetched per-shard lane handles (index-aligned with `shards`), so
    /// fan-out legs record without touching the registry.
    lanes: Vec<ShardLane>,
    /// The caller's active trace id (also broadcast to every shard by
    /// [`InfluenceService::set_trace`]), retained so router-side events —
    /// torn broadcasts, deadline misses — carry the trace that hit them.
    trace: Option<u64>,
}

impl<S: InfluenceService + Send> ShardedService<S> {
    /// Assemble a router over `shards`, validating that they serve the same
    /// graph at the same epoch (anything else means the backends were not
    /// built from one shard layout, or have diverged).
    pub fn new(mut shards: Vec<S>) -> ServiceResult<Self> {
        if shards.is_empty() {
            return Err(ServiceError::Shard("no shard backends given".into()));
        }
        let mut merged: Option<ServiceInfo> = None;
        let mut epoch: Option<u64> = None;
        // Each backend's claimed global range, for the coverage check below.
        let mut ranges: Vec<(u64, u64, u64)> = Vec::with_capacity(shards.len());
        for (i, shard) in shards.iter_mut().enumerate() {
            let info = shard.info()?;
            let stats = shard.stats()?;
            ranges.push((
                info.shard_offset,
                info.shard_offset + info.pool_size as u64,
                info.global_pool,
            ));
            match &mut merged {
                None => {
                    merged = Some(info);
                    epoch = Some(stats.epoch);
                }
                Some(m) => {
                    if info.graph_id != m.graph_id
                        || info.model != m.model
                        || info.num_vertices != m.num_vertices
                        || info.num_edges != m.num_edges
                    {
                        return Err(ServiceError::Shard(format!(
                            "shard {i} serves {}/{} ({}x{}) but shard 0 serves {}/{} ({}x{})",
                            info.graph_id,
                            info.model,
                            info.num_vertices,
                            info.num_edges,
                            m.graph_id,
                            m.model,
                            m.num_vertices,
                            m.num_edges
                        )));
                    }
                    if Some(stats.epoch) != epoch {
                        return Err(ServiceError::Shard(format!(
                            "shard {i} is at epoch {} but shard 0 is at {}",
                            stats.epoch,
                            epoch.unwrap_or(0)
                        )));
                    }
                    m.pool_size += info.pool_size;
                }
            }
        }
        // The backends must cover one contiguous, disjoint slice of the
        // global set-id space — no duplicates (the same address listed
        // twice would double-count its covered sets), no overlaps, no
        // interior gaps. Every backend reports its global range via `info`,
        // so a misconfigured shard set fails here instead of merging wrong
        // answers. (A group covering a contiguous *sub*-range is legal: it
        // behaves as one larger shard, which is what lets routers nest; the
        // merged `info` exposes `pool_size < global_pool` so partial
        // coverage stays observable.)
        let global = ranges[0].2;
        if let Some((i, _)) = ranges.iter().enumerate().find(|(_, r)| r.2 != global) {
            return Err(ServiceError::Shard(format!(
                "shard {i} claims a global pool of {} but shard 0 claims {global}",
                ranges[i].2
            )));
        }
        let mut sorted = ranges.clone();
        sorted.sort_unstable();
        let group_start = sorted[0].0;
        let mut expected_start = group_start;
        for &(start, end, _) in &sorted {
            if start != expected_start {
                return Err(ServiceError::Shard(format!(
                    "shard backends do not tile the global pool of {global}: sets \
                     {expected_start}..{start} are {} — merged answers would not equal the \
                     single-pool ones (is the same shard address listed twice, or one missing?)",
                    if start < expected_start {
                        "covered twice"
                    } else {
                        "covered by no backend"
                    }
                )));
            }
            expected_start = end;
        }
        if expected_start > global {
            return Err(ServiceError::Shard(format!(
                "shard backends claim sets up to {expected_start}, past the global pool \
                 of {global}"
            )));
        }
        let mut info = merged.expect("at least one shard");
        info.shard_offset = group_start;
        info.global_pool = global;
        info.confidence_99 = 1.29 * info.num_vertices as f64 / (info.pool_size as f64).sqrt();
        // Router-side observability: its own registry (fan-out counters and
        // per-shard labelled lanes), separate from any engine's — the router
        // measures the fan-out layer, the shards measure themselves.
        let obs = ServingMetrics::with_defaults();
        let lanes: Vec<ShardLane> = (0..shards.len()).map(|i| obs.shard_lane(i)).collect();
        Ok(Self {
            shards,
            info,
            epoch: epoch.unwrap_or(0),
            memo: None,
            obs,
            lanes,
            trace: None,
        })
    }

    /// Number of shard backends behind this router.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The router-side observability surface (fan-out counters, per-shard
    /// send/recv/error lanes and round-trip histograms).
    #[must_use]
    pub fn obs(&self) -> &Arc<ServingMetrics> {
        &self.obs
    }

    /// Federate the cluster's metrics into one report: fan a `Metrics`
    /// request out to every shard concurrently, tag each answering shard's
    /// series with a leading `shard="i"` label, and merge both the tagged
    /// copy *and* the untagged original into the router's own report — so a
    /// single scrape shows the merged cluster value for every family
    /// (counters summed, cumulative histogram buckets added elementwise,
    /// keeping quantile bounds within one log₂ bucket) next to the
    /// per-shard series that sum to it. A shard that cannot answer (dead,
    /// or an older server without the `Metrics` request) degrades the
    /// report instead of failing it: its series are absent and its
    /// `imserve_shard_up{shard="i"}` gauge reads `0`.
    pub fn cluster_metrics(&mut self) -> MetricsReport {
        let results = Self::fan_out(
            &mut self.shards,
            &self.obs,
            &self.lanes,
            self.trace.unwrap_or(0),
            |shard| shard.metrics(),
        );
        let mut merged = self.obs.report();
        for (i, result) in results.into_iter().enumerate() {
            let up = match result {
                Ok(report) => {
                    merged.merge(&report.with_shard_label(i));
                    merged.merge(&report);
                    1
                }
                Err(_) => 0,
            };
            merged.gauges.push(GaugeSample {
                name: format!("imserve_shard_up{{shard=\"{i}\"}}"),
                value: up,
            });
        }
        merged
    }

    /// Run `op` on every shard concurrently (one scoped thread per shard;
    /// the single-shard case stays inline) and collect the per-shard results
    /// in shard-index order — the order every merge below depends on. Each
    /// leg records into its shard's lane (send/recv/error counters and the
    /// round-trip histogram); `obs` counts the fan-out itself and its event
    /// log receives one event per failing leg — `shard_deadline_missed` for
    /// a transport timeout, `shard_fanout_error` otherwise — stamped with
    /// `trace` (the caller's active trace id, `0` when untraced).
    fn fan_out<T: Send>(
        shards: &mut [S],
        obs: &ServingMetrics,
        lanes: &[ShardLane],
        trace: u64,
        op: impl Fn(&mut S) -> ServiceResult<T> + Sync,
    ) -> Vec<ServiceResult<T>> {
        obs.shard_fanouts.inc();
        let run = |i: usize, shard: &mut S| -> ServiceResult<T> {
            let lane = &lanes[i];
            lane.sends.inc();
            let began = Instant::now();
            let result = op(shard);
            lane.rtt_micros.record(began.elapsed().as_micros() as u64);
            match &result {
                Ok(_) => lane.recvs.inc(),
                Err(e) => {
                    lane.errors.inc();
                    let deadline_missed = matches!(
                        e,
                        ServiceError::Transport(io) if matches!(
                            io.kind(),
                            std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock
                        )
                    );
                    let code = if deadline_missed {
                        "shard_deadline_missed"
                    } else {
                        "shard_fanout_error"
                    };
                    obs.event_log.warn(
                        code,
                        trace,
                        vec![
                            EventField::u64("shard", i as u64),
                            EventField::text("error", e.to_string()),
                        ],
                    );
                }
            }
            result
        };
        if shards.len() == 1 {
            return vec![run(0, &mut shards[0])];
        }
        std::thread::scope(|scope| {
            let handles: Vec<_> = shards
                .iter_mut()
                .enumerate()
                .map(|(i, shard)| {
                    let run = &run;
                    scope.spawn(move || run(i, shard))
                })
                .collect();
            handles
                .into_iter()
                .map(|handle| {
                    handle.join().unwrap_or_else(|_| {
                        Err(ServiceError::Backend(
                            "shard fan-out worker panicked".into(),
                        ))
                    })
                })
                .collect()
        })
    }

    /// Type a shard's fan-out failure. Request-level rejections (`Query`,
    /// `Mutation`) pass through untouched — every shard rejects an invalid
    /// request deterministically alike, so the caller sees the same typed
    /// error a single-pool backend returns. Anything else means shard `i`
    /// itself broke (dropped connection, deadline expiry, protocol
    /// violation): the union invariant is gone and the error says which
    /// shard took it.
    fn shard_error(i: usize, e: ServiceError) -> ServiceError {
        match e {
            ServiceError::Query(_) | ServiceError::Mutation(_) | ServiceError::Shard(_) => e,
            other => ServiceError::Shard(format!("shard {i} failed during fan-out: {other}")),
        }
    }

    /// Unwrap a fan-out's results, failing on the lowest-indexed shard error.
    fn merge_results<T>(results: Vec<ServiceResult<T>>) -> ServiceResult<Vec<T>> {
        let mut values = Vec::with_capacity(results.len());
        for (i, result) in results.into_iter().enumerate() {
            values.push(result.map_err(|e| Self::shard_error(i, e))?);
        }
        Ok(values)
    }

    /// Re-read every shard's epoch (concurrently), verify they are still in
    /// lockstep, and record the common value (one cheap `stats` round per
    /// shard). Makes out-of-band mutations visible — and the `top_k` memo
    /// safe — at the cost of the verification round.
    fn refresh_epoch(&mut self) -> ServiceResult<u64> {
        let all = Self::merge_results(Self::fan_out(
            &mut self.shards,
            &self.obs,
            &self.lanes,
            self.trace.unwrap_or(0),
            |shard| shard.stats(),
        ))?;
        let mut epoch: Option<u64> = None;
        for (i, stats) in all.iter().enumerate() {
            let observed = stats.epoch;
            match epoch {
                None => epoch = Some(observed),
                Some(e) if e == observed => {}
                Some(e) => {
                    return Err(ServiceError::Shard(format!(
                        "shard {i} is at epoch {observed} but shard 0 is at {e}; the shards \
                         were mutated outside this router or a broadcast was torn"
                    )))
                }
            }
        }
        let epoch = epoch.expect("at least one shard");
        self.epoch = epoch;
        Ok(epoch)
    }

    /// Sum every shard's gain vector elementwise (one greedy round over the
    /// union pool). The vectors are fetched concurrently and summed in
    /// shard-index order; integer addition commutes, so the sums equal the
    /// sequential ones bit for bit.
    fn summed_gains(&mut self, selected: &[u32]) -> ServiceResult<GainVector> {
        let n = self.info.num_vertices;
        let all = Self::merge_results(Self::fan_out(
            &mut self.shards,
            &self.obs,
            &self.lanes,
            self.trace.unwrap_or(0),
            |shard| shard.gains(selected),
        ))?;
        let mut sum = vec![0u64; n];
        let mut covered = 0u64;
        let mut pool = 0u64;
        for (i, gv) in all.iter().enumerate() {
            if gv.gains.len() != n {
                return Err(ServiceError::Shard(format!(
                    "shard {i} answered {} gains for {n} vertices",
                    gv.gains.len()
                )));
            }
            for (acc, g) in sum.iter_mut().zip(&gv.gains) {
                *acc += g;
            }
            covered += gv.covered;
            pool += gv.pool;
        }
        Ok(GainVector {
            gains: sum,
            covered,
            pool,
        })
    }

    /// Router-driven greedy maximum coverage over the union pool —
    /// replicates [`im_core::InfluenceOracle::greedy_seed_set`] exactly:
    /// each round picks the *first* vertex attaining the maximal summed
    /// gain (strictly-greater to win, so ties keep the lowest id).
    fn greedy(&mut self, k: usize) -> ServiceResult<Vec<u32>> {
        let n = self.info.num_vertices;
        let k = k.min(n);
        let mut selected: Vec<u32> = Vec::with_capacity(k);
        let mut is_selected = vec![false; n];
        for _ in 0..k {
            let round = self.summed_gains(&selected)?;
            let mut best: Option<(usize, u64)> = None;
            for (v, &gain) in round.gains.iter().enumerate() {
                if is_selected[v] {
                    continue;
                }
                match best {
                    Some((_, best_gain)) if gain <= best_gain => {}
                    _ => best = Some((v, gain)),
                }
            }
            let Some((chosen, _)) = best else { break };
            is_selected[chosen] = true;
            selected.push(chosen as u32);
        }
        Ok(selected)
    }

    /// Rank vertices by singleton coverage (the integer form of singleton
    /// influence) and take the best `k` — replicates
    /// [`im_core::InfluenceOracle::top_influential_vertices`] (ties broken
    /// by vertex id; coverage order equals influence order because the
    /// union pool divisor is shared).
    fn singleton_rank(&mut self, k: usize) -> ServiceResult<Vec<u32>> {
        let singles = self.summed_gains(&[])?;
        let mut ranked: Vec<(u32, u64)> = singles
            .gains
            .iter()
            .enumerate()
            .map(|(v, &g)| (v as u32, g))
            .collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked.truncate(k);
        Ok(ranked.into_iter().map(|(v, _)| v).collect())
    }
}

impl<S: InfluenceService + Send> InfluenceService for ShardedService<S> {
    fn info(&mut self) -> ServiceResult<ServiceInfo> {
        Ok(self.info.clone())
    }

    fn estimate(&mut self, seeds: &[u32]) -> ServiceResult<SpreadEstimate> {
        let all = Self::merge_results(Self::fan_out(
            &mut self.shards,
            &self.obs,
            &self.lanes,
            self.trace.unwrap_or(0),
            |shard| shard.estimate(seeds),
        ))?;
        let mut covered = 0u64;
        let mut pool = 0u64;
        for estimate in &all {
            covered += estimate.covered;
            pool += estimate.pool;
        }
        // Re-derive the union spread from the summed integers: the same
        // expression a whole-pool oracle evaluates, hence bit-identical.
        Ok(SpreadEstimate {
            seeds: seeds.to_vec(),
            spread: self.info.num_vertices as f64 * covered as f64 / pool as f64,
            covered,
            pool,
        })
    }

    fn top_k(&mut self, k: usize, algorithm: TopKAlgorithm) -> ServiceResult<TopKSelection> {
        if k == 0 {
            return Err(ServiceError::Query("k must be positive".into()));
        }
        // Selections are expensive and memoized, so verify the lockstep
        // epoch first: a mutation applied behind this router's back must
        // invalidate the memo (and a torn broadcast must surface) rather
        // than silently serving a stale seed set.
        let epoch = self.refresh_epoch()?;
        if let Some((mk, malg, mepoch, selection)) = &self.memo {
            if *mk == k && *malg == algorithm && *mepoch == epoch {
                return Ok(selection.clone());
            }
        }
        let seeds = match algorithm {
            TopKAlgorithm::Greedy => self.greedy(k)?,
            TopKAlgorithm::SingletonRank => self.singleton_rank(k)?,
        };
        let spread = self.estimate(&seeds)?.spread;
        let selection = TopKSelection {
            seeds,
            spread,
            algorithm,
        };
        self.memo = Some((k, algorithm, self.epoch, selection.clone()));
        Ok(selection)
    }

    fn gains(&mut self, selected: &[u32]) -> ServiceResult<GainVector> {
        self.summed_gains(selected)
    }

    fn mutate_batch(&mut self, deltas: &[GraphDelta]) -> ServiceResult<MutationOutcome> {
        // Broadcast to every shard concurrently. Shard-local batches are
        // atomic, so the only torn state is *between* shards: if some shards
        // applied the batch and others rejected it, the union invariant is
        // broken and we say so loudly instead of returning a
        // mergeable-looking answer. If *every* shard rejected, nothing was
        // applied anywhere and the batch is simply invalid — the caller sees
        // shard 0's error untouched, exactly as a single-pool backend would
        // report it.
        let results = Self::fan_out(
            &mut self.shards,
            &self.obs,
            &self.lanes,
            self.trace.unwrap_or(0),
            |shard| shard.mutate_batch(deltas),
        );
        if results.iter().all(Result::is_err) {
            let first = results.into_iter().next().expect("at least one shard");
            return Err(first.expect_err("all results are errors"));
        }
        if let Some((i, Err(e))) = results
            .iter()
            .enumerate()
            .find(|(_, r)| r.is_err())
            .map(|(i, r)| (i, r.as_ref()))
        {
            // Partial application: the epochs have diverged, so the memo
            // (keyed by the lockstep epoch) must not survive.
            self.memo = None;
            self.obs.event_log.error(
                "torn_broadcast",
                self.trace.unwrap_or(0),
                vec![
                    EventField::u64("shard", i as u64),
                    EventField::u64("epoch_before", self.epoch),
                    EventField::u64("deltas", deltas.len() as u64),
                    EventField::text("error", e.to_string()),
                ],
            );
            return Err(ServiceError::Shard(format!(
                "broadcast torn: shard {i} rejected the batch ({e}) while other shards \
                 applied it; shards have diverged and must be re-synchronized"
            )));
        }
        let outcomes: Vec<MutationOutcome> =
            results.into_iter().map(|r| r.expect("no errors")).collect();
        let mut first: Option<MutationOutcome> = None;
        let mut resampled = 0usize;
        let mut compacted = false;
        for (i, outcome) in outcomes.into_iter().enumerate() {
            match &first {
                None => {
                    resampled += outcome.resampled;
                    compacted |= outcome.compacted;
                    first = Some(outcome);
                }
                Some(f) => {
                    if outcome.epoch != f.epoch || outcome.applied != f.applied {
                        return Err(ServiceError::Shard(format!(
                            "shard {i} reports epoch {} ({} applied) but shard 0 reports \
                             epoch {} ({} applied)",
                            outcome.epoch, outcome.applied, f.epoch, f.applied
                        )));
                    }
                    resampled += outcome.resampled;
                    compacted |= outcome.compacted;
                }
            }
        }
        let first = first.expect("at least one shard");
        self.epoch = first.epoch;
        self.memo = None;
        // Mutations change edge counts; refresh the merged metadata from
        // shard 0 (dimension equality was just verified via the outcomes).
        let refreshed = self.shards[0].info()?;
        self.info.num_edges = refreshed.num_edges;
        Ok(MutationOutcome {
            epoch: first.epoch,
            applied: first.applied,
            resampled,
            compacted,
        })
    }

    fn compact(&mut self) -> ServiceResult<CompactionReport> {
        let all = Self::merge_results(Self::fan_out(
            &mut self.shards,
            &self.obs,
            &self.lanes,
            self.trace.unwrap_or(0),
            |shard| shard.compact(),
        ))?;
        let mut epoch: Option<u64> = None;
        let mut folded = 0usize;
        for (i, report) in all.into_iter().enumerate() {
            match epoch {
                None => epoch = Some(report.epoch),
                Some(e) if e == report.epoch => {}
                Some(e) => {
                    return Err(ServiceError::Shard(format!(
                        "shard {i} compacted at epoch {} but shard 0 at {e}",
                        report.epoch
                    )))
                }
            }
            folded += report.folded;
        }
        Ok(CompactionReport {
            epoch: epoch.expect("at least one shard"),
            folded,
        })
    }

    fn set_deadline(&mut self, deadline: Option<std::time::Duration>) -> ServiceResult<()> {
        // Propagate to every shard so a dead backend fails its fan-out leg
        // within the deadline instead of hanging the whole router.
        Self::merge_results(Self::fan_out(
            &mut self.shards,
            &self.obs,
            &self.lanes,
            self.trace.unwrap_or(0),
            |shard| shard.set_deadline(deadline),
        ))?;
        Ok(())
    }

    fn stats(&mut self) -> ServiceResult<ServiceStats> {
        let all = Self::merge_results(Self::fan_out(
            &mut self.shards,
            &self.obs,
            &self.lanes,
            self.trace.unwrap_or(0),
            |shard| shard.stats(),
        ))?;
        let mut merged: Option<ServiceStats> = None;
        let mut shard_reports: Vec<EpochReport> = Vec::with_capacity(all.len());
        for (i, stats) in all.into_iter().enumerate() {
            shard_reports.push(EpochReport {
                epoch: stats.epoch,
                snapshot_epoch: stats.snapshot_epoch,
                log_len: stats.log_len,
            });
            match &mut merged {
                None => merged = Some(stats),
                Some(m) => {
                    // Epochs are lockstep-critical; watermarks may differ
                    // (shards compact on their own policies), so the merged
                    // view reports the most conservative pair.
                    if stats.epoch != m.epoch {
                        return Err(ServiceError::Shard(format!(
                            "shard {i} is at epoch {} but shard 0 is at {}",
                            stats.epoch, m.epoch
                        )));
                    }
                    m.requests += stats.requests;
                    m.topk_cache_hits += stats.topk_cache_hits;
                    m.topk_cache_misses += stats.topk_cache_misses;
                    m.pool_size += stats.pool_size;
                    m.deltas_applied += stats.deltas_applied;
                    m.sets_resampled += stats.sets_resampled;
                    m.log_len = m.log_len.max(stats.log_len);
                    m.snapshot_epoch = m.snapshot_epoch.min(stats.snapshot_epoch);
                    m.compactions += stats.compactions;
                    // The group has served as long as its oldest member.
                    m.uptime_secs = m.uptime_secs.max(stats.uptime_secs);
                    m.requests_by_type = m.requests_by_type.merged(&stats.requests_by_type);
                    m.pool_resident_bytes += stats.pool_resident_bytes;
                    if m.pool_layout != stats.pool_layout {
                        m.pool_layout = "mixed".to_string();
                    }
                }
            }
        }
        let mut stats = merged.expect("at least one shard");
        stats.shards = shard_reports;
        Ok(stats)
    }

    /// Federated cluster metrics — see [`ShardedService::cluster_metrics`].
    fn metrics(&mut self) -> ServiceResult<MetricsReport> {
        Ok(self.cluster_metrics())
    }

    /// Cluster readiness from real signals: one `shard_{i}_reachable` signal
    /// per backend (from a concurrent `stats` fan-out, so a dead shard is
    /// named with the error that killed its leg) plus one `epoch_lockstep`
    /// signal over the reachable shards (naming the diverging shards and
    /// epochs when a torn broadcast or out-of-band mutation split them).
    /// Never fails: an unreachable shard degrades the report, it does not
    /// error the probe — `/readyz` must keep answering while degraded.
    fn health(&mut self) -> ServiceResult<HealthReport> {
        let results = Self::fan_out(
            &mut self.shards,
            &self.obs,
            &self.lanes,
            self.trace.unwrap_or(0),
            |shard| shard.stats(),
        );
        let mut report = HealthReport::new();
        let mut epochs: Vec<(usize, u64)> = Vec::with_capacity(results.len());
        for (i, result) in results.into_iter().enumerate() {
            match result {
                Ok(stats) => {
                    report.push(
                        format!("shard_{i}_reachable"),
                        true,
                        format!("epoch {}, {} requests served", stats.epoch, stats.requests),
                    );
                    epochs.push((i, stats.epoch));
                }
                Err(e) => {
                    report.push(
                        format!("shard_{i}_reachable"),
                        false,
                        format!("shard {i} is unreachable: {e}"),
                    );
                }
            }
        }
        match epochs.split_first() {
            Some((&(first_idx, first_epoch), rest)) => {
                match rest.iter().find(|&&(_, e)| e != first_epoch) {
                    Some(&(i, e)) => report.push(
                        "epoch_lockstep",
                        false,
                        format!(
                            "shard {i} is at epoch {e} but shard {first_idx} is at \
                             {first_epoch}; merged answers would mix epochs"
                        ),
                    ),
                    None => report.push(
                        "epoch_lockstep",
                        true,
                        format!("all reachable shards at epoch {first_epoch}"),
                    ),
                }
            }
            None => report.push("epoch_lockstep", false, "no shard is reachable"),
        }
        Ok(report)
    }

    /// The router's own event ring: torn broadcasts, deadline misses and
    /// fan-out errors observed at this layer. Shard-side events stay on
    /// their shards (ask them directly) — unlike metrics, events are
    /// discrete records whose interleaving across layers would be
    /// misleading without a merge key the wire does not carry.
    fn events(&mut self) -> ServiceResult<Vec<EventRecord>> {
        Ok(self
            .obs
            .event_log
            .entries()
            .iter()
            .map(EventRecord::from)
            .collect())
    }

    /// Propagate the caller's trace id to every shard: each fan-out leg
    /// stamps it onto its frames ([`crate::client::RemoteService`] hops), so
    /// the per-shard sub-requests stitch into the original request's trace.
    /// The router also retains it so its own events (torn broadcasts,
    /// deadline misses) carry the trace that hit them.
    fn set_trace(&mut self, trace: Option<u64>) {
        self.trace = trace;
        for shard in &mut self.shards {
            shard.set_trace(trace);
        }
    }
}
