//! Table 4 and Figures 4–6: influence-spread distributions.

use imnet::{Dataset, ProbabilityModel};

use crate::config::{ApproachKind, ExperimentScale, SweepConfig};
use crate::experiments::{instance_for, trials_for, ExperimentReport};
use crate::report::{fmt_float, TextTable};
use crate::runner::PreparedInstance;

/// Table 4: the top-3 single-vertex influence spreads of BA_s and BA_d under
/// every probability model — the quantity the paper uses to explain the
/// entropy decay speed of Figure 3.
#[must_use]
pub fn table4(scale: ExperimentScale) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "table4",
        "top-3 single-vertex influence spreads on BA_s / BA_d (Table 4)",
    );
    for dataset in [Dataset::BaSparse, Dataset::BaDense] {
        let mut table = TextTable::new(
            format!("Top-3 Inf(v) on {}", dataset.name()),
            &["rank", "uc0.1", "uc0.01", "iwc", "owc"],
        );
        let mut columns: Vec<Vec<f64>> = Vec::new();
        for model in ProbabilityModel::paper_models() {
            let instance = PreparedInstance::prepare(
                instance_for(dataset, model, scale),
                scale.oracle_pool(),
                4,
            );
            let top = instance.oracle.top_influential_vertices(3);
            columns.push(top.into_iter().map(|(_, inf)| inf).collect());
        }
        for rank in 0..3 {
            let mut row = vec![format!("Inf(v{})", rank + 1)];
            for column in &columns {
                row.push(fmt_float(column.get(rank).copied().unwrap_or(f64::NAN)));
            }
            table.add_row(row);
        }
        report.tables.push(table);
        // The paper's observation: the relative gap between rank 1 and rank 2
        // predicts how quickly the seed-set distribution degenerates.
        for (model, column) in ProbabilityModel::paper_models().iter().zip(&columns) {
            if column.len() >= 2 && column[0] > 0.0 {
                report.notes.push(format!(
                    "{} ({}): relative top-1/top-2 gap = {:.4}",
                    dataset.name(),
                    model.label(),
                    (column[0] - column[1]) / column[0],
                ));
            }
        }
    }
    report
}

/// Figure 4: influence distributions (notched-box-plot statistics) on
/// Physicians (uc0.1, k = 16), one table per approach.
#[must_use]
pub fn fig4(scale: ExperimentScale) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig4",
        "influence distribution vs sample number on Physicians (uc0.1, k = 16) (Figure 4)",
    );
    let k = 16;
    let instance = PreparedInstance::prepare(
        instance_for(Dataset::Physicians, ProbabilityModel::uc01(), scale),
        scale.oracle_pool(),
        5,
    );
    let trials = trials_for(Dataset::Physicians, scale);
    for approach in ApproachKind::all() {
        let sweep = match approach {
            ApproachKind::Ris => scale.ris_sweep(trials),
            _ => scale.simulation_sweep(trials),
        };
        let analyzed = instance.sweep(approach, k, &sweep);
        let mut table = TextTable::new(
            format!(
                "Influence distribution, {} on Physicians (uc0.1, k = 16)",
                approach.name()
            ),
            &[
                "sample number",
                "mean",
                "median",
                "sd",
                "p1",
                "q1",
                "q3",
                "p99",
            ],
        );
        for a in &analyzed.analyses {
            let s = &a.influence_stats;
            table.add_row(vec![
                a.sample_number.to_string(),
                fmt_float(s.mean),
                fmt_float(s.median),
                fmt_float(s.std_dev),
                fmt_float(s.p01),
                fmt_float(s.q1),
                fmt_float(s.q3),
                fmt_float(s.p99),
            ]);
        }
        report.tables.push(table);
        let first = analyzed.analyses.first().expect("non-empty sweep");
        let last = analyzed.analyses.last().expect("non-empty sweep");
        report.notes.push(format!(
            "{}: mean influence improves from {} (s = {}) to {} (s = {})",
            approach.name(),
            fmt_float(first.influence_stats.mean),
            first.sample_number,
            fmt_float(last.influence_stats.mean),
            last.sample_number,
        ));
    }
    report
}

/// Figure 5: contrasting convergence of RIS on ca-GrQc under uc0.1 (fast,
/// giant-component core) and owc (slow, similarly influential vertices).
#[must_use]
pub fn fig5(scale: ExperimentScale) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig5",
        "RIS influence distributions on ca-GrQc: quick convergence on uc0.1 vs slow improvement on owc (Figure 5)",
    );
    let trials = trials_for(Dataset::CaGrQc, scale);
    for model in [
        ProbabilityModel::uc01(),
        ProbabilityModel::OutDegreeWeighted,
    ] {
        let instance = PreparedInstance::prepare(
            instance_for(Dataset::CaGrQc, model, scale),
            scale.oracle_pool(),
            6,
        );
        let analyzed = instance.sweep(ApproachKind::Ris, 1, &scale.ris_sweep(trials));
        let mut table = TextTable::new(
            format!("RIS on ca-GrQc ({}), k = 1", model.label()),
            &["theta", "mean", "p1", "median", "p99", "mean / final mean"],
        );
        let final_mean = analyzed
            .analyses
            .last()
            .expect("non-empty")
            .influence_stats
            .mean;
        for a in &analyzed.analyses {
            let s = &a.influence_stats;
            table.add_row(vec![
                a.sample_number.to_string(),
                fmt_float(s.mean),
                fmt_float(s.p01),
                fmt_float(s.median),
                fmt_float(s.p99),
                fmt_float(if final_mean > 0.0 {
                    s.mean / final_mean
                } else {
                    0.0
                }),
            ]);
        }
        report.tables.push(table);
        let first_fraction = analyzed
            .analyses
            .first()
            .expect("non-empty")
            .influence_stats
            .mean
            / final_mean;
        report.notes.push(format!(
            "ca-GrQc ({}): the θ = 1 mean is {:.0}% of the converged mean",
            model.label(),
            100.0 * first_fraction,
        ));
    }
    report.notes.push(
        "Paper finding: under uc0.1 the mean starts below 20% of the maximum and improves quickly \
         (core vertices are easy to identify); under owc it starts above 50% but improves slowly \
         (all vertices are similarly influential)."
            .to_string(),
    );
    report
}

/// Figure 6: the relation between the mean and other statistics (standard
/// deviation, 1st percentile) is nearly independent of the algorithm, which
/// justifies comparing influence distributions by their means alone.
#[must_use]
pub fn fig6(scale: ExperimentScale) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig6",
        "mean vs SD and mean vs 1st percentile across algorithms on Physicians (Figure 6)",
    );
    let cases = [
        (ProbabilityModel::OutDegreeWeighted, 4usize),
        (ProbabilityModel::uc01(), 16usize),
    ];
    for (model, k) in cases {
        let instance = PreparedInstance::prepare(
            instance_for(Dataset::Physicians, model, scale),
            scale.oracle_pool(),
            7,
        );
        let trials = trials_for(Dataset::Physicians, scale);
        let mut table = TextTable::new(
            format!(
                "Mean vs other statistics, Physicians ({}), k = {k}",
                model.label()
            ),
            &["approach", "sample number", "mean", "sd", "p1"],
        );
        for approach in ApproachKind::all() {
            let sweep = match approach {
                ApproachKind::Ris => scale.ris_sweep(trials),
                _ => scale.simulation_sweep(trials),
            };
            let analyzed = instance.sweep(approach, k, &sweep);
            for a in &analyzed.analyses {
                table.add_row(vec![
                    approach.name().to_string(),
                    a.sample_number.to_string(),
                    fmt_float(a.influence_stats.mean),
                    fmt_float(a.influence_stats.std_dev),
                    fmt_float(a.influence_stats.p01),
                ]);
            }
        }
        report.tables.push(table);
    }
    report.notes.push(
        "Paper finding: plotting SD (or the 1st percentile) against the mean yields nearly the \
         same curve for Oneshot, Snapshot and RIS, so the mean alone ranks influence \
         distributions."
            .to_string(),
    );
    report
}

/// Helper shared by tests and benches: a cut-down Figure 4-style sweep with an
/// explicit sweep configuration (so callers control the cost precisely).
#[must_use]
pub fn influence_distribution_table(
    instance: &PreparedInstance,
    approach: ApproachKind,
    k: usize,
    sweep: &SweepConfig,
) -> TextTable {
    let analyzed = instance.sweep(approach, k, sweep);
    let mut table = TextTable::new(
        format!(
            "Influence distribution, {} on {}",
            approach.name(),
            instance.label()
        ),
        &["sample number", "mean", "median", "sd", "p1", "p99"],
    );
    for a in &analyzed.analyses {
        let s = &a.influence_stats;
        table.add_row(vec![
            a.sample_number.to_string(),
            fmt_float(s.mean),
            fmt_float(s.median),
            fmt_float(s.std_dev),
            fmt_float(s.p01),
            fmt_float(s.p99),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::InstanceConfig;

    #[test]
    fn table4_reports_three_ranks_for_both_networks() {
        let report = table4(ExperimentScale::Quick);
        assert_eq!(report.tables.len(), 2);
        for table in &report.tables {
            assert_eq!(table.num_rows(), 3);
        }
        // BA_d under uc0.1 has a dense giant component, so its top influence
        // must be far larger than under uc0.01; check via the rendered cells.
        let ba_d = &report.tables[1];
        let top_uc01: f64 = ba_d.rows()[0][1].parse().unwrap();
        let top_uc001: f64 = ba_d.rows()[0][2].parse().unwrap();
        assert!(
            top_uc01 > top_uc001,
            "uc0.1 top influence {top_uc01} should exceed uc0.01 {top_uc001}"
        );
    }

    #[test]
    fn influence_distribution_table_has_one_row_per_sample_number() {
        let instance = PreparedInstance::prepare(
            InstanceConfig::new(Dataset::Karate, ProbabilityModel::uc01()),
            5_000,
            1,
        );
        let sweep = SweepConfig {
            sample_numbers: vec![1, 32],
            trials: 20,
            base_seed: 5,
            threads: 0,
        };
        let table = influence_distribution_table(&instance, ApproachKind::Snapshot, 4, &sweep);
        assert_eq!(table.num_rows(), 2);
        let mean_small: f64 = table.rows()[0][1].parse().unwrap();
        let mean_large: f64 = table.rows()[1][1].parse().unwrap();
        assert!(
            mean_large >= mean_small * 0.9,
            "mean should not collapse with more samples"
        );
    }
}
