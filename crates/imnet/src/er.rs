//! Erdős–Rényi random graphs.
//!
//! The paper contrasts complex networks with "random graphs" (Section 4.2.1);
//! this module provides both the `G(n, m)` and `G(n, p)` variants as directed
//! graphs. They are used in tests, as baselines for the structural statistics
//! of Table 3, and by the dataset registry when a structureless control graph
//! is requested.

use imgraph::{DiGraph, GraphBuilder, VertexId};
use imrand::Rng32;
use rustc_hash::FxHashSet;

/// Generate a directed `G(n, m)` graph: exactly `m` distinct directed edges
/// (no self-loops) chosen uniformly at random.
///
/// # Panics
///
/// Panics if `m` exceeds the number of possible directed edges `n·(n−1)`.
#[must_use]
pub fn gnm_directed<R: Rng32>(n: usize, m: usize, rng: &mut R) -> DiGraph {
    let max_edges = n.saturating_mul(n.saturating_sub(1));
    assert!(
        m <= max_edges,
        "cannot place {m} distinct edges in a {n}-vertex digraph"
    );
    let mut seen: FxHashSet<(VertexId, VertexId)> = FxHashSet::default();
    let mut builder = GraphBuilder::with_capacity(n, m);
    while seen.len() < m {
        let u = rng.gen_index(n) as VertexId;
        let v = rng.gen_index(n) as VertexId;
        if u == v {
            continue;
        }
        if seen.insert((u, v)) {
            builder.add_edge(u, v);
        }
    }
    builder.build()
}

/// Generate a directed `G(n, p)` graph: every ordered pair `(u, v)`, `u ≠ v`,
/// is an edge independently with probability `p`.
///
/// Uses geometric skipping so the running time is `O(n + m)` rather than
/// `O(n²)` for sparse `p`.
#[must_use]
pub fn gnp_directed<R: Rng32>(n: usize, p: f64, rng: &mut R) -> DiGraph {
    assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
    let mut builder = GraphBuilder::new(n);
    if n == 0 || p == 0.0 {
        return builder.build();
    }
    if p >= 1.0 {
        for u in 0..n as VertexId {
            for v in 0..n as VertexId {
                if u != v {
                    builder.add_edge(u, v);
                }
            }
        }
        return builder.build();
    }
    // Iterate over the n·(n−1) candidate pairs with geometric jumps.
    let total = (n as u64) * (n as u64 - 1);
    let log_q = (1.0 - p).ln();
    let mut position: u64 = 0;
    loop {
        // Draw the gap to the next present edge: floor(ln(U) / ln(1 − p)).
        let u = rng.next_f64().max(f64::MIN_POSITIVE);
        let gap = (u.ln() / log_q).floor() as u64;
        position = match position.checked_add(gap) {
            Some(next) => next,
            None => break,
        };
        if position >= total {
            break;
        }
        let (src, mut dst) = (
            (position / (n as u64 - 1)) as usize,
            (position % (n as u64 - 1)) as usize,
        );
        // Skip the diagonal: pairs for source `src` enumerate all targets
        // except `src` itself.
        if dst >= src {
            dst += 1;
        }
        builder.add_edge(src as VertexId, dst as VertexId);
        position += 1;
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use imrand::Pcg32;

    #[test]
    fn gnm_exact_edge_count() {
        let mut rng = Pcg32::seed_from_u64(1);
        let g = gnm_directed(50, 200, &mut rng);
        assert_eq!(g.num_vertices(), 50);
        assert_eq!(g.num_edges(), 200);
    }

    #[test]
    fn gnm_no_self_loops_or_duplicates() {
        let mut rng = Pcg32::seed_from_u64(2);
        let g = gnm_directed(30, 300, &mut rng);
        let mut seen = std::collections::HashSet::new();
        for (u, v) in g.edges() {
            assert_ne!(u, v);
            assert!(seen.insert((u, v)));
        }
    }

    #[test]
    fn gnm_complete_digraph() {
        let mut rng = Pcg32::seed_from_u64(3);
        let g = gnm_directed(5, 20, &mut rng);
        assert_eq!(g.num_edges(), 20);
    }

    #[test]
    #[should_panic(expected = "cannot place")]
    fn gnm_too_many_edges_panics() {
        let mut rng = Pcg32::seed_from_u64(4);
        let _ = gnm_directed(3, 7, &mut rng);
    }

    #[test]
    fn gnp_zero_and_one() {
        let mut rng = Pcg32::seed_from_u64(5);
        assert_eq!(gnp_directed(10, 0.0, &mut rng).num_edges(), 0);
        assert_eq!(gnp_directed(5, 1.0, &mut rng).num_edges(), 20);
        assert_eq!(gnp_directed(0, 0.5, &mut rng).num_vertices(), 0);
    }

    #[test]
    fn gnp_edge_count_concentrates() {
        let mut rng = Pcg32::seed_from_u64(6);
        let n = 200;
        let p = 0.05;
        let expected = (n * (n - 1)) as f64 * p;
        let mut total = 0usize;
        let reps = 20;
        for _ in 0..reps {
            total += gnp_directed(n, p, &mut rng).num_edges();
        }
        let mean = total as f64 / reps as f64;
        assert!(
            (mean - expected).abs() < expected * 0.1,
            "mean edge count {mean} should be near {expected}"
        );
    }

    #[test]
    fn gnp_no_self_loops() {
        let mut rng = Pcg32::seed_from_u64(7);
        let g = gnp_directed(40, 0.2, &mut rng);
        for (u, v) in g.edges() {
            assert_ne!(u, v);
        }
    }

    #[test]
    fn gnp_is_deterministic_per_seed() {
        let a = gnp_directed(60, 0.1, &mut Pcg32::seed_from_u64(8));
        let b = gnp_directed(60, 0.1, &mut Pcg32::seed_from_u64(8));
        assert_eq!(a, b);
    }
}
