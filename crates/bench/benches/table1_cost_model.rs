//! Table 1 bench: the per-sample cost-model quantities (Σ Inf(v), m̃, EPT).
//!
//! Prints the Table 1 columns for Karate under all four probability models and
//! measures the cost of evaluating them from a shared oracle.

use criterion::{criterion_group, criterion_main, Criterion};
use imexp::experiments::table1::cost_model_row;
use imnet::ProbabilityModel;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    // Regenerate the table series once, so `cargo bench` output contains the
    // same rows the paper's Table 1 parameterises.
    println!("\n--- Table 1 series (Karate) ---");
    for model in ProbabilityModel::paper_models() {
        let instance = im_bench::karate(model);
        let row = cost_model_row(&instance);
        println!(
            "{:<22} sum Inf(v) = {:>9.3}  m~ = {:>8.3}  EPT = {:>7.4}  EPT<=1+m~: {}",
            instance.label(),
            row.sum_singleton_influence,
            row.expected_live_edges,
            row.ept,
            row.ept_bound_holds(0.05 * row.ept.max(1.0)),
        );
    }

    let instance = im_bench::karate(ProbabilityModel::uc01());
    let mut group = c.benchmark_group("table1_cost_model");
    group.sample_size(20);
    group.bench_function("cost_model_row/karate_uc0.1", |b| {
        b.iter(|| black_box(cost_model_row(&instance)))
    });
    group.bench_function("singleton_influences/karate_uc0.1", |b| {
        b.iter(|| black_box(instance.oracle.singleton_influences()))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
