//! Offline stand-in for the `serde_json` crate.
//!
//! Serializes the vendored `serde` crate's [`Value`] data model to JSON text
//! and parses JSON text back. Supports exactly the call surface the workspace
//! uses: [`to_string`], [`to_string_pretty`] and [`from_str`].

use serde::{Deserialize, Serialize, Value};

pub use serde::Error;

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize a value to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serialize a value to a pretty-printed JSON string (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0)?;
    Ok(out)
}

/// Deserialize a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", parser.pos)));
    }
    T::from_value(&value)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) -> Result<()> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(x) => out.push_str(&x.to_string()),
        Value::I64(x) => out.push_str(&x.to_string()),
        Value::F64(x) => {
            if !x.is_finite() {
                return Err(Error(format!("cannot serialize non-finite float {x}")));
            }
            // Rust's shortest-round-trip float formatting; force a decimal
            // point or exponent so the token re-parses as a float.
            let s = format!("{x}");
            out.push_str(&s);
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Value::Str(s) => write_json_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_json_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}, got {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!(
                "unexpected character {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast-forward over a plain UTF-8 run.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error(format!("invalid UTF-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error("unterminated escape".to_string()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("truncated \\u escape".to_string()))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error("bad \\u escape".to_string()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error(format!("bad \\u escape `{hex}`")))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by this workspace's
                            // own output (it never emits them), but accept BMP
                            // scalars.
                            s.push(
                                char::from_u32(code).ok_or_else(|| {
                                    Error(format!("invalid code point {code:#x}"))
                                })?,
                            );
                        }
                        other => {
                            return Err(Error(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error("unterminated string".to_string())),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".to_string()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|e| Error(format!("invalid float `{text}`: {e}")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|e| Error(format!("invalid integer `{text}`: {e}")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|e| Error(format!("invalid integer `{text}`: {e}")))
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `]` in array, got {:?}",
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `}}` in object, got {:?}",
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip_through_text() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&3.0f64).unwrap(), "3.0");
        assert_eq!(from_str::<f64>("3.0").unwrap(), 3.0);
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(to_string(&"a\"b\n".to_string()).unwrap(), r#""a\"b\n""#);
        assert_eq!(from_str::<String>(r#""a\"b\n""#).unwrap(), "a\"b\n");
    }

    #[test]
    fn collections_round_trip_through_text() {
        let v = vec![1u32, 2, 3];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,2,3]");
        assert_eq!(from_str::<Vec<u32>>(&json).unwrap(), v);
        let pair = (7u64, 0.25f64);
        assert_eq!(
            from_str::<(u64, f64)>(&to_string(&pair).unwrap()).unwrap(),
            pair
        );
        let opt: Option<u32> = None;
        assert_eq!(to_string(&opt).unwrap(), "null");
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
    }

    #[test]
    fn pretty_printing_indents_nested_structures() {
        let v = vec![vec![1u32], vec![2, 3]];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  ["));
        assert_eq!(from_str::<Vec<Vec<u32>>>(&pretty).unwrap(), v);
    }

    #[test]
    fn malformed_input_is_rejected() {
        assert!(from_str::<u64>("4 2").is_err());
        assert!(from_str::<Vec<u32>>("[1,").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }
}
