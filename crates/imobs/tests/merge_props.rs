//! Federation correctness, property-tested: merging K per-shard histogram
//! snapshots is indistinguishable from one histogram that saw every sample,
//! cumulative bucket series agree with the concatenated stream, and the
//! merged quantile keeps the same one-bucket error bound a single process
//! enjoys — the property that makes a federated p99 honest.

use proptest::prelude::*;

use imobs::{bucket_index, bucket_upper_bound, Histogram, HistogramSnapshot, Registry};

/// The true `q`-quantile under the histogram's rank convention.
fn true_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank - 1]
}

/// Cumulative bucket series of a snapshot, the shape `_bucket{le=...}`
/// exposition and the wire `MetricsReport` carry.
fn cumulative(snapshot: &HistogramSnapshot) -> Vec<u64> {
    let mut out = Vec::with_capacity(snapshot.buckets.len());
    let mut running = 0u64;
    for &n in &snapshot.buckets {
        running += n;
        out.push(running);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Merging K shards' snapshots equals the snapshot of the concatenated
    /// samples — raw buckets, cumulative buckets, count, and sum all match.
    #[test]
    fn merging_k_snapshots_equals_concatenated_samples(
        shards in proptest::collection::vec(
            proptest::collection::vec(0u64..10_000_000, 0..120),
            1..6,
        ),
    ) {
        let whole = Histogram::new();
        let mut merged: Option<HistogramSnapshot> = None;
        for samples in &shards {
            let shard = Histogram::new();
            for &v in samples {
                shard.record(v);
                whole.record(v);
            }
            let snap = shard.snapshot();
            match merged.as_mut() {
                Some(m) => m.merge(&snap),
                None => merged = Some(snap),
            }
        }
        let merged = merged.expect("at least one shard");
        let expected = whole.snapshot();
        prop_assert_eq!(&merged, &expected, "merged snapshot must equal the union");
        prop_assert_eq!(cumulative(&merged), cumulative(&expected));
    }

    /// A quantile of the merged snapshot keeps the one-bucket bound with
    /// respect to the *cluster-wide* sample stream: the estimate is ≥ the
    /// true quantile and sits exactly at its bucket's upper bound.
    #[test]
    fn merged_quantile_keeps_the_one_bucket_bound(
        shards in proptest::collection::vec(
            proptest::collection::vec(0u64..10_000_000, 1..120),
            1..6,
        ),
        q_permille in 0u64..=1000,
    ) {
        let q = q_permille as f64 / 1000.0;
        let mut all: Vec<u64> = Vec::new();
        let mut merged: Option<HistogramSnapshot> = None;
        for samples in &shards {
            let shard = Histogram::new();
            for &v in samples {
                shard.record(v);
            }
            all.extend_from_slice(samples);
            let snap = shard.snapshot();
            match merged.as_mut() {
                Some(m) => m.merge(&snap),
                None => merged = Some(snap),
            }
        }
        let merged = merged.expect("at least one shard");
        all.sort_unstable();
        let truth = true_quantile(&all, q);
        let estimate = merged.quantile(q);
        prop_assert!(estimate >= truth, "estimate {estimate} < true quantile {truth}");
        prop_assert_eq!(bucket_index(estimate), bucket_index(truth));
        prop_assert_eq!(estimate, bucket_upper_bound(bucket_index(truth)));
    }

    /// Registry-level merge: counters sum per series, and the merged
    /// histogram for a shared name is the union histogram.
    #[test]
    fn registry_snapshots_merge_per_series(
        left in proptest::collection::vec(0u64..100_000, 0..60),
        right in proptest::collection::vec(0u64..100_000, 0..60),
    ) {
        let ra = Registry::new();
        let rb = Registry::new();
        ra.counter("obs_requests_total", "R.").add(left.len() as u64);
        rb.counter("obs_requests_total", "R.").add(right.len() as u64);
        let ha = ra.histogram("obs_latency_micros", "L.");
        let hb = rb.histogram("obs_latency_micros", "L.");
        let whole = Histogram::new();
        for &v in &left {
            ha.record(v);
            whole.record(v);
        }
        for &v in &right {
            hb.record(v);
            whole.record(v);
        }
        let mut snap = ra.snapshot();
        snap.merge(&rb.snapshot());
        prop_assert_eq!(
            snap.counter("obs_requests_total"),
            Some((left.len() + right.len()) as u64)
        );
        prop_assert_eq!(snap.histogram("obs_latency_micros"), Some(&whole.snapshot()));
    }
}
