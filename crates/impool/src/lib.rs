//! `impool` — storage engine for RR-set pools.
//!
//! RIS-style influence indexes trade traversal cost for storage: at
//! production graph sizes the RR-set pool — not the graph — is the memory
//! wall. This crate factors the pool's physical layout out of the influence
//! oracle behind one [`PoolStore`] trait with three backends:
//!
//! * [`RawPool`] — the reference layout: one `Vec<u32>` posting list per
//!   vertex (set ids containing it) and, for incrementally maintainable
//!   pools, one sorted member trace per RR set. Fastest scans, largest
//!   footprint.
//! * compressed ([`PackedPool`]) — delta-varint encoding of both
//!   directions, segmented into fixed-size blocks of [`BLOCK_IDS`] ids with
//!   per-block skip headers ([`SkipEntry`]), so coverage scans run directly
//!   over the compressed form without materializing a single list.
//! * tiered (a [`PackedPool`] with cold storage attached) — the compressed
//!   layout with its data regions demoted to a *cold* backing file (the
//!   `PCMP` section of an index artifact): only the list directory, the
//!   skip headers, the hot lists and the mutation overlay stay resident, so
//!   a served index can exceed RAM.
//!
//! Every backend answers every query with **identical results in identical
//! order** — the oracle layered on top stays byte-identical across layouts,
//! which is what the cross-layout equivalence suite pins.
//!
//! Mutation (`replace_set`, the incremental-maintenance primitive) is
//! implemented on the compressed backends as a resident *overlay*: a dirtied
//! list is materialized once, shadowing its encoded form. Reads merge the
//! overlay transparently; re-encoding to a `PCMP` payload
//! ([`Pool::encode_pcmp_payload`]) folds it back into canonical compressed
//! form.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod codec;
mod packed;
mod pcmp;
mod raw;

pub use codec::{
    decode_list, encode_list, list_len, read_varint, scan_list, write_varint, PoolCodecError,
    SkipEntry, BLOCK_IDS,
};
pub use packed::{PackedPool, TieredConfig, DEFAULT_HOT_LIST_BYTES};
pub use pcmp::{decode_pcmp_payload, fnv1a64, PCMP_CODEC_VERSION};
pub use raw::RawPool;

use std::fs::File;
use std::sync::Arc;

/// The physical layout of a pool store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PoolLayout {
    /// Uncompressed in-RAM `Vec<Vec<u32>>` lists (the reference layout).
    Raw,
    /// Delta-varint blocked lists, fully resident.
    Compressed,
    /// Delta-varint blocked lists with cold data in a backing file.
    Tiered,
}

impl PoolLayout {
    /// The stable CLI/wire label (`raw`, `compressed`, `tiered`).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            PoolLayout::Raw => "raw",
            PoolLayout::Compressed => "compressed",
            PoolLayout::Tiered => "tiered",
        }
    }

    /// Parse a CLI label. Returns `None` for unknown labels.
    #[must_use]
    pub fn parse(label: &str) -> Option<Self> {
        match label {
            "raw" => Some(PoolLayout::Raw),
            "compressed" => Some(PoolLayout::Compressed),
            "tiered" => Some(PoolLayout::Tiered),
            _ => None,
        }
    }
}

impl std::fmt::Display for PoolLayout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The storage-engine contract every pool backend satisfies.
///
/// Two invariants make cross-layout byte-identity possible and are relied on
/// by every caller:
///
/// 1. `for_each_posting` / `for_each_trace` visit ids in **strictly
///    increasing order** — the canonical order the raw builders produce.
/// 2. `replace_set` leaves the store exactly as if the pool had been built
///    with the new member list from the start (postings and traces stay
///    inverse to each other).
pub trait PoolStore {
    /// This store's physical layout.
    fn layout(&self) -> PoolLayout;
    /// Number of vertices (posting lists).
    fn num_vertices(&self) -> usize;
    /// Number of RR sets in the pool (traces, when present).
    fn pool_size(&self) -> usize;
    /// Length of vertex `v`'s posting list.
    fn posting_len(&self, v: u32) -> usize;
    /// Visit every set id of vertex `v`'s posting list, increasing.
    fn for_each_posting(&self, v: u32, f: &mut dyn FnMut(u32));
    /// Materialize vertex `v`'s posting list.
    fn postings(&self, v: u32) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.posting_len(v));
        self.for_each_posting(v, &mut |id| out.push(id));
        out
    }
    /// Whether the store carries per-set member traces (the inverse index an
    /// incrementally maintainable pool needs).
    fn has_traces(&self) -> bool;
    /// Visit every member vertex of RR set `set`, increasing.
    ///
    /// # Panics
    ///
    /// Panics if the store carries no traces.
    fn for_each_trace(&self, set: u32, f: &mut dyn FnMut(u32));
    /// Materialize the sorted member trace of RR set `set`.
    fn trace(&self, set: u32) -> Vec<u32> {
        let mut out = Vec::new();
        self.for_each_trace(set, &mut |v| out.push(v));
        out
    }
    /// Replace RR set `set`'s members: unindex `old_members`, index
    /// `new_members` (both sorted, strictly increasing), and store the new
    /// trace. The incremental-maintenance primitive.
    ///
    /// # Panics
    ///
    /// Panics if the store carries no traces.
    fn replace_set(&mut self, set: u32, old_members: &[u32], new_members: &[u32]);
    /// Build the trace side by inverting the posting lists (used when a pool
    /// persisted without traces is re-attached for incremental maintenance).
    fn build_traces(&mut self);
    /// Bytes of process memory this store keeps resident (directories, skip
    /// headers, hot lists and overlays; a tiered store's cold file bytes are
    /// excluded — that is the point of tiering).
    fn resident_bytes(&self) -> usize;
}

/// A pool store of any layout (the concrete type the oracle embeds).
///
/// The enum exists so the oracle stays `Clone`/`Debug` and so hot query
/// loops can monomorphize per layout via the inlined `*_inline` visitors
/// instead of paying a virtual call per posting id.
#[derive(Debug, Clone)]
pub enum Pool {
    /// Uncompressed reference layout.
    Raw(RawPool),
    /// Fully resident compressed layout.
    Compressed(PackedPool),
    /// Compressed layout with cold data in a backing file.
    Tiered(PackedPool),
}

impl Pool {
    /// Build a raw pool from posting lists (and optional traces).
    #[must_use]
    pub fn raw(
        num_vertices: usize,
        pool_size: usize,
        postings: Vec<Vec<u32>>,
        traces: Option<Vec<Vec<u32>>>,
    ) -> Self {
        Pool::Raw(RawPool::new(num_vertices, pool_size, postings, traces))
    }

    /// The store as the dynamic trait object (for layout-generic callers).
    #[must_use]
    pub fn store(&self) -> &dyn PoolStore {
        match self {
            Pool::Raw(p) => p,
            Pool::Compressed(p) | Pool::Tiered(p) => p,
        }
    }

    fn store_mut(&mut self) -> &mut dyn PoolStore {
        match self {
            Pool::Raw(p) => p,
            Pool::Compressed(p) | Pool::Tiered(p) => p,
        }
    }

    /// This pool's physical layout.
    #[must_use]
    pub fn layout(&self) -> PoolLayout {
        match self {
            Pool::Raw(_) => PoolLayout::Raw,
            Pool::Compressed(_) => PoolLayout::Compressed,
            Pool::Tiered(_) => PoolLayout::Tiered,
        }
    }

    /// Number of vertices (posting lists).
    #[must_use]
    pub fn num_vertices(&self) -> usize {
        self.store().num_vertices()
    }

    /// Number of RR sets in the pool.
    #[must_use]
    pub fn pool_size(&self) -> usize {
        self.store().pool_size()
    }

    /// Length of vertex `v`'s posting list.
    #[must_use]
    pub fn posting_len(&self, v: u32) -> usize {
        match self {
            Pool::Raw(p) => p.posting_len(v),
            Pool::Compressed(p) | Pool::Tiered(p) => p.posting_len(v),
        }
    }

    /// Visit vertex `v`'s posting list in increasing order, monomorphized
    /// per layout (the coverage-scan hot path).
    #[inline]
    pub fn for_each_posting_inline(&self, v: u32, mut f: impl FnMut(u32)) {
        match self {
            Pool::Raw(p) => {
                for &id in p.posting_slice(v) {
                    f(id);
                }
            }
            Pool::Compressed(p) | Pool::Tiered(p) => p.scan_postings(v, &mut f),
        }
    }

    /// Visit RR set `set`'s sorted member trace, monomorphized per layout.
    ///
    /// # Panics
    ///
    /// Panics if the pool carries no traces.
    #[inline]
    pub fn for_each_trace_inline(&self, set: u32, mut f: impl FnMut(u32)) {
        match self {
            Pool::Raw(p) => {
                for &v in p.trace_slice(set) {
                    f(v);
                }
            }
            Pool::Compressed(p) | Pool::Tiered(p) => p.scan_trace(set, &mut f),
        }
    }

    /// Whether the pool carries per-set member traces.
    #[must_use]
    pub fn has_traces(&self) -> bool {
        self.store().has_traces()
    }

    /// Materialize the sorted member trace of one RR set.
    #[must_use]
    pub fn trace(&self, set: u32) -> Vec<u32> {
        self.store().trace(set)
    }

    /// Materialize vertex `v`'s posting list.
    #[must_use]
    pub fn postings(&self, v: u32) -> Vec<u32> {
        self.store().postings(v)
    }

    /// Replace one RR set's members (see [`PoolStore::replace_set`]).
    pub fn replace_set(&mut self, set: u32, old_members: &[u32], new_members: &[u32]) {
        self.store_mut().replace_set(set, old_members, new_members);
    }

    /// Build the trace side by posting-list inversion.
    pub fn build_traces(&mut self) {
        self.store_mut().build_traces();
    }

    /// Resident memory footprint in bytes (see [`PoolStore::resident_bytes`]).
    #[must_use]
    pub fn resident_bytes(&self) -> usize {
        self.store().resident_bytes()
    }

    /// Export the pool as raw posting lists plus optional traces (the
    /// canonical form persistence and conversion work from).
    #[must_use]
    pub fn to_raw_lists(&self) -> (Vec<Vec<u32>>, Option<Vec<Vec<u32>>>) {
        let store = self.store();
        let postings = (0..store.num_vertices() as u32)
            .map(|v| store.postings(v))
            .collect();
        let traces = store.has_traces().then(|| {
            (0..store.pool_size() as u32)
                .map(|s| store.trace(s))
                .collect()
        });
        (postings, traces)
    }

    /// Convert this pool to another layout, preserving every list exactly.
    ///
    /// Converting *to* [`PoolLayout::Tiered`] yields a tiered pool whose
    /// cold region is still resident (there is no backing file yet); demote
    /// it with [`Pool::attach_cold_file`] after the artifact containing its
    /// `PCMP` section has been written.
    #[must_use]
    pub fn convert(&self, layout: PoolLayout) -> Self {
        if layout == self.layout() {
            return self.clone();
        }
        match layout {
            PoolLayout::Raw => {
                let (postings, traces) = self.to_raw_lists();
                Pool::raw(self.num_vertices(), self.pool_size(), postings, traces)
            }
            PoolLayout::Compressed | PoolLayout::Tiered => {
                let packed = match self {
                    Pool::Compressed(p) | Pool::Tiered(p) => p.clone(),
                    Pool::Raw(_) => {
                        let (postings, traces) = self.to_raw_lists();
                        PackedPool::from_lists(
                            self.num_vertices(),
                            self.pool_size(),
                            &postings,
                            traces.as_deref(),
                        )
                    }
                };
                if layout == PoolLayout::Compressed {
                    Pool::Compressed(packed)
                } else {
                    Pool::Tiered(packed)
                }
            }
        }
    }

    /// Encode this pool as a `PCMP` section payload (self-checksummed; see
    /// [`decode_pcmp_payload`]). Any layout encodes — the payload is the
    /// canonical compressed form.
    #[must_use]
    pub fn encode_pcmp_payload(&self, hint: PoolLayout) -> Vec<u8> {
        match self {
            Pool::Compressed(p) | Pool::Tiered(p) => pcmp::encode(p, hint),
            Pool::Raw(_) => {
                let (postings, traces) = self.to_raw_lists();
                let packed = PackedPool::from_lists(
                    self.num_vertices(),
                    self.pool_size(),
                    &postings,
                    traces.as_deref(),
                );
                pcmp::encode(&packed, hint)
            }
        }
    }

    /// Demote a tiered pool's data regions to a cold backing file.
    ///
    /// `payload_offset` is the absolute byte offset, within `file`, of the
    /// `PCMP` payload this pool was decoded from ([`decode_pcmp_payload`]);
    /// the bytes there must be identical to the decoded payload. Lists whose
    /// encoded form is at least `config.hot_list_bytes` bytes stay resident
    /// (the heavy hitters every coverage scan touches); everything else is
    /// re-read from the file on demand. No-op for raw/compressed pools.
    pub fn attach_cold_file(&mut self, file: Arc<File>, payload_offset: u64, config: TieredConfig) {
        if let Pool::Tiered(p) = self {
            p.attach_cold(file, payload_offset, config);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_lists() -> (Vec<Vec<u32>>, Vec<Vec<u32>>) {
        // 4 vertices, 6 sets. Postings strictly increasing per vertex.
        let postings = vec![vec![0, 2, 5], vec![1, 2], vec![], vec![0, 1, 2, 3, 4, 5]];
        // Inverse: set -> member vertices.
        let traces = vec![
            vec![0, 3],
            vec![1, 3],
            vec![0, 1, 3],
            vec![3],
            vec![3],
            vec![0, 3],
        ];
        (postings, traces)
    }

    #[test]
    fn layout_labels_round_trip() {
        for layout in [PoolLayout::Raw, PoolLayout::Compressed, PoolLayout::Tiered] {
            assert_eq!(PoolLayout::parse(layout.label()), Some(layout));
        }
        assert_eq!(PoolLayout::parse("zstd"), None);
    }

    #[test]
    fn conversions_preserve_every_list() {
        let (postings, traces) = sample_lists();
        let raw = Pool::raw(4, 6, postings.clone(), Some(traces.clone()));
        for layout in [PoolLayout::Compressed, PoolLayout::Tiered, PoolLayout::Raw] {
            let converted = raw.convert(layout);
            assert_eq!(converted.layout(), layout);
            assert_eq!(converted.num_vertices(), 4);
            assert_eq!(converted.pool_size(), 6);
            for v in 0..4u32 {
                assert_eq!(converted.postings(v), postings[v as usize], "vertex {v}");
                assert_eq!(converted.posting_len(v), postings[v as usize].len());
            }
            for s in 0..6u32 {
                assert_eq!(converted.trace(s), traces[s as usize], "set {s}");
            }
            let (p2, t2) = converted.to_raw_lists();
            assert_eq!(p2, postings);
            assert_eq!(t2.as_ref(), Some(&traces));
        }
    }

    #[test]
    fn replace_set_is_layout_independent() {
        let (postings, traces) = sample_lists();
        let mut pools: Vec<Pool> = [PoolLayout::Raw, PoolLayout::Compressed, PoolLayout::Tiered]
            .into_iter()
            .map(|l| Pool::raw(4, 6, postings.clone(), Some(traces.clone())).convert(l))
            .collect();
        // Move set 2 from {0, 1, 3} to {1, 2}.
        for pool in &mut pools {
            pool.replace_set(2, &[0, 1, 3], &[1, 2]);
        }
        let reference = pools[0].to_raw_lists();
        for pool in &pools[1..] {
            assert_eq!(pool.to_raw_lists(), reference);
        }
        assert_eq!(pools[0].postings(0), vec![0, 5]);
        assert_eq!(pools[0].postings(2), vec![2]);
        assert_eq!(pools[0].trace(2), vec![1, 2]);
    }

    #[test]
    fn build_traces_inverts_postings() {
        let (postings, traces) = sample_lists();
        for layout in [PoolLayout::Raw, PoolLayout::Compressed] {
            let mut pool = Pool::raw(4, 6, postings.clone(), None).convert(layout);
            assert!(!pool.has_traces());
            pool.build_traces();
            assert!(pool.has_traces());
            for s in 0..6u32 {
                assert_eq!(pool.trace(s), traces[s as usize]);
            }
        }
    }

    #[test]
    fn compressed_is_smaller_than_raw_on_dense_lists() {
        // 64 vertices, every vertex contains most sets: dense, regular gaps.
        let pool_size = 512u32;
        let postings: Vec<Vec<u32>> = (0..64)
            .map(|v| (0..pool_size).filter(|id| (id + v) % 2 == 0).collect())
            .collect();
        let raw = Pool::raw(64, pool_size as usize, postings, None);
        let compressed = raw.convert(PoolLayout::Compressed);
        assert!(
            compressed.resident_bytes() * 2 < raw.resident_bytes(),
            "compressed {} vs raw {}",
            compressed.resident_bytes(),
            raw.resident_bytes()
        );
    }
}
