//! Figure 6 bench: the mean-vs-SD / mean-vs-1st-percentile relation is shared
//! by all three approaches.

use criterion::{criterion_group, criterion_main, Criterion};
use imexp::ApproachKind;
use imnet::ProbabilityModel;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let instance = im_bench::physicians(ProbabilityModel::OutDegreeWeighted);
    let sweep = im_bench::small_sweep(6, 15);

    println!("\n--- Figure 6 series (Physicians owc, k = 4, 15 trials) ---");
    for approach in ApproachKind::all() {
        let analyzed = instance.sweep(approach, 4, &sweep);
        for a in &analyzed.analyses {
            println!(
                "{:<9} s = {:>3}  mean = {:>7.3}  sd = {:>6.3}  p1 = {:>7.3}",
                approach.name(),
                a.sample_number,
                a.influence_stats.mean,
                a.influence_stats.std_dev,
                a.influence_stats.p01,
            );
        }
    }

    let mut group = c.benchmark_group("fig6_mean_vs_stats");
    group.sample_size(10);
    group.bench_function("oneshot_run/physicians_owc_k4_beta64", |b| {
        b.iter(|| {
            black_box(
                ApproachKind::Oneshot
                    .with_sample_number(64)
                    .run(&instance.graph, 4, 11),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
