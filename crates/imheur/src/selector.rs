//! The [`SeedSelector`] trait shared by every heuristic.

use imgraph::{InfluenceGraph, VertexId};
use serde::{Deserialize, Serialize};

/// The outcome of one heuristic seed selection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeuristicResult {
    /// Selected seeds in rank order (best first).
    pub seeds: Vec<VertexId>,
    /// The heuristic's internal score of each selected seed at selection time.
    /// Scores are only comparable within one heuristic; they are *not*
    /// influence estimates.
    pub scores: Vec<f64>,
    /// Vertices examined while ranking (the paper's vertex traversal cost).
    pub vertices_examined: u64,
    /// Edges examined while ranking (the paper's edge traversal cost).
    pub edges_examined: u64,
}

impl HeuristicResult {
    /// Number of seeds selected.
    #[must_use]
    pub fn len(&self) -> usize {
        self.seeds.len()
    }

    /// Whether no seed was selected.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.seeds.is_empty()
    }
}

/// A seed-selection heuristic: rank vertices by a quickly computable proxy for
/// influence and return the top `k`.
pub trait SeedSelector {
    /// Select `k` seeds from the influence graph. Implementations must return
    /// at most `min(k, n)` distinct vertices, best-ranked first.
    fn select(&self, graph: &InfluenceGraph, k: usize) -> HeuristicResult;

    /// Short name used in reports and bench labels.
    fn name(&self) -> &'static str;
}

/// Pick the `k` largest entries of `scores`, breaking ties towards the smaller
/// vertex id, and account one vertex examination per scored vertex.
///
/// This is the shared "rank and take top-k" tail of the purely score-based
/// heuristics (max-degree, weighted degree, PageRank, IRIE).
#[must_use]
pub(crate) fn top_k_by_score(scores: &[f64], k: usize) -> (Vec<VertexId>, Vec<f64>) {
    let mut order: Vec<VertexId> = (0..scores.len() as VertexId).collect();
    order.sort_by(|&a, &b| {
        scores[b as usize]
            .partial_cmp(&scores[a as usize])
            .expect("heuristic scores must not be NaN")
            .then(a.cmp(&b))
    });
    order.truncate(k.min(scores.len()));
    let picked_scores = order.iter().map(|&v| scores[v as usize]).collect();
    (order, picked_scores)
}

/// Total number of directed edges; the edge cost of any heuristic that scans
/// the full adjacency once.
pub(crate) fn full_scan_edge_cost(graph: &InfluenceGraph) -> u64 {
    graph.num_edges() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_k_orders_by_score_then_id() {
        let (seeds, scores) = top_k_by_score(&[1.0, 5.0, 5.0, 0.5], 3);
        assert_eq!(seeds, vec![1, 2, 0]);
        assert_eq!(scores, vec![5.0, 5.0, 1.0]);
    }

    #[test]
    fn top_k_clamps_to_n() {
        let (seeds, _) = top_k_by_score(&[1.0, 2.0], 10);
        assert_eq!(seeds.len(), 2);
    }

    #[test]
    fn top_k_of_zero_is_empty() {
        let (seeds, scores) = top_k_by_score(&[1.0, 2.0], 0);
        assert!(seeds.is_empty());
        assert!(scores.is_empty());
    }

    #[test]
    fn heuristic_result_len_and_serde() {
        let r = HeuristicResult {
            seeds: vec![3, 1],
            scores: vec![2.0, 1.0],
            vertices_examined: 4,
            edges_examined: 7,
        };
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
        let json = serde_json::to_string(&r).unwrap();
        assert_eq!(serde_json::from_str::<HeuristicResult>(&json).unwrap(), r);
    }
}
