//! Live-operations cluster suite, driven by the deterministic in-process
//! harness (`imserve::testkit`): WAL-shipped followers answer byte-identically
//! at every epoch, hot-swap reloads lose zero in-flight requests, a
//! mid-stream-killed follower reconverges, stale promotions are refused with
//! the epoch gap named, and a promoted follower matches a from-scratch
//! rebuild of the full mutation history.

mod fixtures;

use std::sync::atomic::Ordering;
use std::sync::Arc;

use imgraph::GraphDelta;
use imserve::client::{Connection, RemoteService};
use imserve::index::build_dataset_index_with_deltas;
use imserve::protocol::{Request, Response, TopKAlgorithm};
use imserve::service::{InfluenceService, ServiceError};
use imserve::testkit::{wait_until, TestCluster};

const POOL: usize = 2_000;
const SEED: u64 = 7;

/// Three scripted batches: epochs 0..2, 2..3, 3..4.
fn batches() -> Vec<Vec<GraphDelta>> {
    vec![
        vec![
            GraphDelta::InsertEdge {
                source: 0,
                target: 33,
                probability: 0.5,
            },
            GraphDelta::DeleteEdge {
                source: 0,
                target: 1,
            },
        ],
        vec![GraphDelta::SetProbability {
            source: 33,
            target: 32,
            probability: 1.0,
        }],
        vec![GraphDelta::InsertEdge {
            source: 16,
            target: 0,
            probability: 0.9,
        }],
    ]
}

/// The read-side wire mix every byte-identity check replays.
fn query_mix() -> Vec<Request> {
    vec![
        Request::Estimate { seeds: vec![0] },
        Request::Estimate {
            seeds: vec![0, 33, 5],
        },
        Request::TopK {
            k: 3,
            algorithm: TopKAlgorithm::Greedy,
        },
        Request::TopK {
            k: 2,
            algorithm: TopKAlgorithm::SingletonRank,
        },
        Request::Info,
    ]
}

/// Assert two live servers answer the whole mix with byte-identical frames.
fn assert_same_answers(a: std::net::SocketAddr, b: std::net::SocketAddr, what: &str) {
    let mut ca = Connection::open(a).unwrap();
    let mut cb = Connection::open(b).unwrap();
    for request in &query_mix() {
        let ra = ca.roundtrip(request).unwrap();
        let rb = cb.roundtrip(request).unwrap();
        assert!(
            !matches!(ra, Response::Error { .. }),
            "{what}: {request:?} errored: {ra:?}"
        );
        assert_eq!(ra, rb, "{what}: answers diverged for {request:?}");
    }
}

#[test]
fn followers_answer_byte_identically_at_every_epoch() {
    let cluster = TestCluster::launch(fixtures::karate(POOL, SEED), 2).unwrap();
    let mut leader = RemoteService::connect(cluster.leader_addr()).unwrap();

    // Epoch 0: both followers serve the pristine index.
    for i in 0..2 {
        cluster.wait_follower_connected(i);
        assert_same_answers(
            cluster.leader_addr(),
            cluster.follower_addr(i),
            &format!("follower {i} at epoch 0"),
        );
    }

    // Writes against a follower are refused with the typed taxonomy.
    let mut follower = RemoteService::connect(cluster.follower_addr(0)).unwrap();
    match follower.mutate_batch(&batches()[0]) {
        Err(ServiceError::ReadOnly(message)) => {
            assert!(message.contains("leader"), "{message}")
        }
        other => panic!("expected a typed ReadOnly refusal, got {other:?}"),
    }

    // Ship each batch through the leader; at every epoch boundary both
    // followers converge and answer byte-identically — both over the wire
    // and down in the pool bytes.
    let mut epoch = 0;
    for batch in batches() {
        epoch += batch.len() as u64;
        leader.mutate_batch(&batch).unwrap();
        for i in 0..2 {
            cluster.wait_follower_at_epoch(i, epoch);
            assert_same_answers(
                cluster.leader_addr(),
                cluster.follower_addr(i),
                &format!("follower {i} at epoch {epoch}"),
            );
            let leader_pool = cluster
                .leader
                .as_ref()
                .unwrap()
                .engine
                .state()
                .dynamic
                .oracle()
                .to_bytes();
            let follower_pool = cluster.followers[i]
                .as_ref()
                .unwrap()
                .engine
                .state()
                .dynamic
                .oracle()
                .to_bytes();
            assert_eq!(
                leader_pool, follower_pool,
                "follower {i} pool diverged at epoch {epoch}"
            );
        }
    }
}

#[test]
fn hot_swap_under_concurrent_load_loses_zero_requests() {
    let cluster = TestCluster::launch(fixtures::karate(POOL, SEED), 0).unwrap();
    let leader = cluster.leader.as_ref().unwrap();
    let addr = cluster.leader_addr();

    // Move past epoch 0 so the swap is not trivially the launch artifact,
    // then export the served state and compact the copy offline.
    RemoteService::connect(addr)
        .unwrap()
        .mutate_batch(&batches()[0])
        .unwrap();
    let mut exported = leader.engine.state().to_artifact();
    exported.compact();
    let path = fixtures::temp_path("hotswap", "imx");
    exported.save(path.as_str()).unwrap();

    // Hammer the server from several connections while the swap happens.
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let served: Vec<_> = (0..4u32)
        .map(|client| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut connection = Connection::open(addr).unwrap();
                let mut answers = 0u64;
                let mut reference = None;
                while !stop.load(Ordering::SeqCst) {
                    let seeds = vec![client % 34, (client + 11) % 34];
                    let response = connection
                        .roundtrip(&Request::Estimate { seeds })
                        .expect("no request may be dropped during a hot swap");
                    assert!(!matches!(response, Response::Error { .. }));
                    // The swap never changes answers: every response in this
                    // thread is identical to the first one.
                    match &reference {
                        None => reference = Some(response),
                        Some(first) => assert_eq!(&response, first, "answers changed mid-swap"),
                    }
                    answers += 1;
                }
                answers
            })
        })
        .collect();

    // Let load build up, swap, let load continue over the new snapshot.
    std::thread::sleep(std::time::Duration::from_millis(50));
    let outcome = RemoteService::connect(addr)
        .unwrap()
        .reload(path.as_str())
        .unwrap();
    assert_eq!(outcome.epoch, 2, "the swap kept the logical position");
    assert_eq!(outcome.log_len, 0, "the compacted copy folded the log");
    std::thread::sleep(std::time::Duration::from_millis(50));
    stop.store(true, Ordering::SeqCst);

    let mut total = 0;
    for thread in served {
        total += thread.join().expect("no loader thread may panic");
    }
    assert!(total > 0, "the load threads actually queried");

    // The swap is visible in the engine's own observability.
    assert_eq!(leader.engine.obs().reload.count.get(), 1);
    assert!(leader.engine.obs().index_swap_micros.count() >= 1);
}

#[test]
fn a_follower_cut_mid_stream_reconnects_and_reconverges() {
    let cluster = TestCluster::launch(fixtures::karate(POOL, SEED), 1).unwrap();
    cluster.wait_follower_connected(0);

    // Hard-drop the stream after every 2 shipped frames from now on.
    let leader = cluster.leader.as_ref().unwrap();
    leader.faults.cut_after_frames.store(2, Ordering::SeqCst);

    let mut client = RemoteService::connect(cluster.leader_addr()).unwrap();
    let mut epoch = 0;
    for batch in batches() {
        epoch += batch.len() as u64;
        client.mutate_batch(&batch).unwrap();
    }
    // Three records but the link dies every two frames: convergence requires
    // at least one mid-stream reconnect with a durable resume cursor.
    cluster.wait_follower_at_epoch(0, epoch);
    let follower = cluster.followers[0].as_ref().unwrap();
    wait_until(
        "the follower to report more than one connection attempt",
        std::time::Duration::from_secs(10),
        || follower.status.connect_attempts.load(Ordering::SeqCst) > 1,
    );
    assert_eq!(
        leader.engine.state().dynamic.oracle().to_bytes(),
        follower.engine.state().dynamic.oracle().to_bytes(),
        "the reconverged follower must hold the identical pool"
    );
    assert_same_answers(
        cluster.leader_addr(),
        cluster.follower_addr(0),
        "after mid-stream cuts",
    );
}

#[test]
fn stale_promotion_is_refused_with_the_epoch_gap_named() {
    let cluster = TestCluster::launch(fixtures::karate(POOL, SEED), 1).unwrap();
    cluster.wait_follower_connected(0);

    // Freeze replication: the leader accepts and immediately closes.
    let leader = cluster.leader.as_ref().unwrap();
    leader
        .faults
        .refuse_connections
        .store(true, Ordering::SeqCst);
    // The live stream predates the fault switch; drop it so nothing ships.
    leader.faults.cut_after_frames.store(1, Ordering::SeqCst);

    let mut client = RemoteService::connect(cluster.leader_addr()).unwrap();
    client.mutate_batch(&batches()[0]).unwrap();
    client.mutate_batch(&batches()[1]).unwrap();
    let leader_epoch = leader.engine.epoch();
    assert_eq!(leader_epoch, 3);

    // The follower is still (at most) at the cut-off; promoting it against
    // the leader's acknowledged epoch must fail, naming the gap, and leave
    // it read-only.
    let follower = cluster.followers[0].as_ref().unwrap();
    wait_until(
        "the frozen follower to fall behind",
        std::time::Duration::from_secs(10),
        || follower.engine.epoch() < leader_epoch,
    );
    let mut admin = RemoteService::connect(cluster.follower_addr(0)).unwrap();
    match admin.promote(Some(leader_epoch)) {
        Err(ServiceError::Promotion(message)) => {
            assert!(
                message.contains(&format!("epoch is {leader_epoch}")),
                "the refusal must name the expected epoch: {message}"
            );
            assert!(
                message.contains("missing"),
                "the refusal must name the gap: {message}"
            );
        }
        other => panic!("expected a typed Promotion refusal, got {other:?}"),
    }
    assert!(follower.engine.is_read_only());

    // Heal the link; once caught up the same promotion succeeds and the
    // node accepts writes.
    leader
        .faults
        .refuse_connections
        .store(false, Ordering::SeqCst);
    leader.faults.cut_after_frames.store(0, Ordering::SeqCst);
    cluster.wait_follower_at_epoch(0, leader_epoch);
    let outcome = admin.promote(Some(leader_epoch)).unwrap();
    assert!(outcome.was_read_only);
    assert_eq!(outcome.epoch, leader_epoch);
    assert!(admin.mutate_batch(&batches()[2]).is_ok());
}

#[test]
fn a_torn_leader_wal_recovers_its_valid_prefix_and_reships_it() {
    let mut cluster = TestCluster::launch(fixtures::karate(POOL, SEED), 1).unwrap();
    // Keep the follower's cursor at 0 for the whole first act, so the
    // restarted leader is never *behind* its follower.
    cluster.kill_follower(0);

    let mut client = RemoteService::connect(cluster.leader_addr()).unwrap();
    for batch in batches() {
        client.mutate_batch(&batch).unwrap();
    }
    assert_eq!(cluster.leader.as_ref().unwrap().engine.epoch(), 4);

    // kill -9, then tear the last WAL record in half.
    cluster.kill_leader();
    let removed = cluster.truncate_leader_wal_mid_record().unwrap();
    assert!(removed > 0, "the tear actually removed bytes");

    // The restarted leader recovers exactly the valid prefix (the torn
    // record never happened — it was never fsync-complete) and serves.
    cluster.restart_leader().unwrap();
    let recovered_epoch = cluster.leader.as_ref().unwrap().engine.epoch();
    assert_eq!(
        recovered_epoch, 3,
        "the torn final record (epochs 3..4) must be dropped, the prefix kept"
    );

    // A follower started from scratch converges on the recovered history.
    cluster.restart_follower(0).unwrap();
    cluster.wait_follower_at_epoch(0, recovered_epoch);
    assert_eq!(
        cluster
            .leader
            .as_ref()
            .unwrap()
            .engine
            .state()
            .dynamic
            .oracle()
            .to_bytes(),
        cluster.followers[0]
            .as_ref()
            .unwrap()
            .engine
            .state()
            .dynamic
            .oracle()
            .to_bytes()
    );
    // And the recovered lineage keeps moving: new writes replicate.
    RemoteService::connect(cluster.leader_addr())
        .unwrap()
        .mutate_batch(&batches()[2])
        .unwrap();
    cluster.wait_follower_at_epoch(0, recovered_epoch + 1);
}

#[test]
fn a_promoted_follower_matches_a_from_scratch_rebuild() {
    let mut cluster = TestCluster::launch(fixtures::karate(POOL, SEED), 1).unwrap();
    let mut client = RemoteService::connect(cluster.leader_addr()).unwrap();
    let mut epoch = 0;
    for batch in batches() {
        epoch += batch.len() as u64;
        client.mutate_batch(&batch).unwrap();
    }
    cluster.wait_follower_at_epoch(0, epoch);

    // The leader dies; the operator promotes the caught-up follower.
    cluster.kill_leader();
    let mut admin = RemoteService::connect(cluster.follower_addr(0)).unwrap();
    let outcome = admin.promote(Some(epoch)).unwrap();
    assert!(outcome.was_read_only);

    // The new leader accepts writes...
    let extra = vec![GraphDelta::DeleteEdge {
        source: 2,
        target: 3,
    }];
    admin.mutate_batch(&extra).unwrap();

    // ...and serves byte-identically to an index rebuilt from scratch over
    // the complete delta history (the dynamic-maintenance contract, now
    // across a failover).
    let full_history: Vec<GraphDelta> = batches().into_iter().flatten().chain(extra).collect();
    let rebuilt =
        build_dataset_index_with_deltas("karate", "uc0.1", POOL, SEED, &full_history).unwrap();
    let reference = fixtures::serve_artifact(rebuilt, 2);
    assert_same_answers(
        cluster.follower_addr(0),
        reference.addr(),
        "promoted follower vs from-scratch rebuild",
    );
}
