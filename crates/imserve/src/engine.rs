//! The query engine: a loaded index behind `Arc`, answering protocol requests.
//!
//! The engine is shared by every server worker. All request handling goes
//! through [`QueryEngine::handle`], which takes the caller's own
//! [`EstimateScratch`] so the `Estimate` hot path performs zero allocation and
//! the engine itself needs no interior mutability beyond the `TopK` LRU cache
//! and the serving counters.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use im_core::{EstimateScratch, InfluenceOracle};

use crate::index::IndexArtifact;
use crate::lru::LruCache;
use crate::protocol::{Request, Response, TopKAlgorithm};

/// Default capacity of the `TopK` result cache.
pub const DEFAULT_CACHE_CAPACITY: usize = 64;

/// Cache key for a `TopK` answer.
///
/// `graph_id` and `model` are constant for one engine but kept in the key
/// anyway: a fleet-level cache (or an engine hot-swapped onto a new index)
/// must never serve a seed set computed for a different influence graph.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct TopKKey {
    graph_id: String,
    model: String,
    k: usize,
    algorithm: TopKAlgorithm,
}

/// A cached `TopK` answer.
#[derive(Debug, Clone)]
struct TopKValue {
    seeds: Vec<u32>,
    spread: f64,
}

/// Serving counters (monotonic, lock-free).
#[derive(Debug, Default)]
struct Counters {
    requests: AtomicU64,
    topk_cache_hits: AtomicU64,
    topk_cache_misses: AtomicU64,
}

/// The shared, thread-safe query engine.
#[derive(Debug)]
pub struct QueryEngine {
    index: Arc<IndexArtifact>,
    topk_cache: Mutex<LruCache<TopKKey, TopKValue>>,
    counters: Counters,
}

impl QueryEngine {
    /// Wrap a loaded index with the default cache capacity.
    #[must_use]
    pub fn new(index: IndexArtifact) -> Self {
        Self::with_cache_capacity(index, DEFAULT_CACHE_CAPACITY)
    }

    /// Wrap a loaded index with an explicit `TopK` cache capacity.
    #[must_use]
    pub fn with_cache_capacity(index: IndexArtifact, capacity: usize) -> Self {
        Self {
            index: Arc::new(index),
            topk_cache: Mutex::new(LruCache::new(capacity)),
            counters: Counters::default(),
        }
    }

    /// The underlying index.
    #[must_use]
    pub fn index(&self) -> &IndexArtifact {
        &self.index
    }

    /// The oracle backing the engine (for reference checks in tests).
    #[must_use]
    pub fn oracle(&self) -> &InfluenceOracle {
        &self.index.oracle
    }

    /// A scratch sized for this engine's pool; one per worker thread.
    #[must_use]
    pub fn new_scratch(&self) -> EstimateScratch {
        self.index.oracle.scratch()
    }

    /// Answer one request. Never panics on untrusted input: invalid queries
    /// come back as [`Response::Error`].
    pub fn handle(&self, request: &Request, scratch: &mut EstimateScratch) -> Response {
        self.counters.requests.fetch_add(1, Ordering::Relaxed);
        match request {
            Request::Ping => Response::Pong,
            Request::Info => self.info(),
            Request::Estimate { seeds } => self.estimate(seeds, scratch),
            Request::TopK { k, algorithm } => self.top_k(*k, *algorithm),
            Request::Stats => Response::Stats {
                requests: self.counters.requests.load(Ordering::Relaxed),
                topk_cache_hits: self.counters.topk_cache_hits.load(Ordering::Relaxed),
                topk_cache_misses: self.counters.topk_cache_misses.load(Ordering::Relaxed),
            },
        }
    }

    fn info(&self) -> Response {
        let meta = &self.index.meta;
        Response::Info {
            graph_id: meta.graph_id.clone(),
            model: meta.model.clone(),
            num_vertices: meta.num_vertices,
            num_edges: meta.num_edges,
            pool_size: meta.pool_size,
            confidence_99: self.index.oracle.confidence_99(),
        }
    }

    fn estimate(&self, seeds: &[u32], scratch: &mut EstimateScratch) -> Response {
        let n = self.index.oracle.num_vertices();
        if let Some(&bad) = seeds.iter().find(|&&s| s as usize >= n) {
            return Response::Error {
                message: format!("seed {bad} out of range for {n} vertices"),
            };
        }
        Response::Estimate {
            seeds: seeds.to_vec(),
            spread: self.index.oracle.estimate_with(seeds, scratch),
        }
    }

    fn top_k(&self, k: usize, algorithm: TopKAlgorithm) -> Response {
        if k == 0 {
            return Response::Error {
                message: "k must be positive".into(),
            };
        }
        let key = TopKKey {
            graph_id: self.index.meta.graph_id.clone(),
            model: self.index.meta.model.clone(),
            k,
            algorithm,
        };
        if let Some(hit) = self
            .topk_cache
            .lock()
            .expect("cache lock poisoned")
            .get(&key)
        {
            self.counters
                .topk_cache_hits
                .fetch_add(1, Ordering::Relaxed);
            return Response::TopK {
                seeds: hit.seeds.clone(),
                spread: hit.spread,
                algorithm,
            };
        }

        // Compute outside the lock: selection walks the whole pool and must
        // not serialize concurrent Estimate-free workers behind it.
        let oracle = &self.index.oracle;
        let (seeds, spread) = match algorithm {
            TopKAlgorithm::Greedy => oracle.greedy_seed_set(k),
            TopKAlgorithm::SingletonRank => {
                let ranked = oracle.top_influential_vertices(k);
                let seeds: Vec<u32> = ranked.iter().map(|&(v, _)| v).collect();
                let spread = oracle.estimate(&seeds);
                (seeds, spread)
            }
        };
        self.counters
            .topk_cache_misses
            .fetch_add(1, Ordering::Relaxed);
        self.topk_cache.lock().expect("cache lock poisoned").insert(
            key,
            TopKValue {
                seeds: seeds.clone(),
                spread,
            },
        );
        Response::TopK {
            seeds,
            spread,
            algorithm,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::build_dataset_index;

    fn karate_engine() -> QueryEngine {
        QueryEngine::new(build_dataset_index("karate", "uc0.1", 5_000, 7).unwrap())
    }

    #[test]
    fn estimate_matches_the_oracle_exactly() {
        let engine = karate_engine();
        let mut scratch = engine.new_scratch();
        for seeds in [vec![0u32], vec![0, 33], vec![5, 9, 13]] {
            let expected = engine.oracle().estimate(&seeds);
            match engine.handle(
                &Request::Estimate {
                    seeds: seeds.clone(),
                },
                &mut scratch,
            ) {
                Response::Estimate {
                    spread,
                    seeds: echoed,
                } => {
                    assert_eq!(spread, expected, "engine must equal the in-process oracle");
                    assert_eq!(echoed, seeds);
                }
                other => panic!("unexpected response {other:?}"),
            }
        }
    }

    #[test]
    fn out_of_range_seed_is_an_error_response() {
        let engine = karate_engine();
        let mut scratch = engine.new_scratch();
        let response = engine.handle(&Request::Estimate { seeds: vec![999] }, &mut scratch);
        assert!(matches!(response, Response::Error { .. }));
    }

    #[test]
    fn topk_is_deterministic_and_cached() {
        let engine = karate_engine();
        let mut scratch = engine.new_scratch();
        let request = Request::TopK {
            k: 3,
            algorithm: TopKAlgorithm::Greedy,
        };
        let first = engine.handle(&request, &mut scratch);
        let second = engine.handle(&request, &mut scratch);
        assert_eq!(first, second, "cached answer must be identical");
        match engine.handle(&Request::Stats, &mut scratch) {
            Response::Stats {
                topk_cache_hits,
                topk_cache_misses,
                ..
            } => {
                assert_eq!(topk_cache_hits, 1);
                assert_eq!(topk_cache_misses, 1);
            }
            other => panic!("unexpected response {other:?}"),
        }
        // The greedy answer equals the oracle's own greedy selection.
        match first {
            Response::TopK { seeds, spread, .. } => {
                let (expected_seeds, expected_spread) = engine.oracle().greedy_seed_set(3);
                assert_eq!(seeds, expected_seeds);
                assert_eq!(spread, expected_spread);
            }
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn singleton_rank_uses_the_influence_ranking() {
        let engine = karate_engine();
        let mut scratch = engine.new_scratch();
        match engine.handle(
            &Request::TopK {
                k: 2,
                algorithm: TopKAlgorithm::SingletonRank,
            },
            &mut scratch,
        ) {
            Response::TopK { seeds, .. } => {
                let expected: Vec<u32> = engine
                    .oracle()
                    .top_influential_vertices(2)
                    .iter()
                    .map(|&(v, _)| v)
                    .collect();
                assert_eq!(seeds, expected);
            }
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn zero_k_is_rejected() {
        let engine = karate_engine();
        let mut scratch = engine.new_scratch();
        let response = engine.handle(
            &Request::TopK {
                k: 0,
                algorithm: TopKAlgorithm::Greedy,
            },
            &mut scratch,
        );
        assert!(matches!(response, Response::Error { .. }));
    }

    #[test]
    fn info_reports_the_index_metadata() {
        let engine = karate_engine();
        let mut scratch = engine.new_scratch();
        match engine.handle(&Request::Info, &mut scratch) {
            Response::Info {
                graph_id,
                model,
                num_vertices,
                pool_size,
                ..
            } => {
                assert_eq!(graph_id, "Karate");
                assert_eq!(model, "uc0.1");
                assert_eq!(num_vertices, 34);
                assert_eq!(pool_size, 5_000);
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
}
