//! Cross-crate integration tests: the full pipeline from data set to analysed
//! solution distribution, exercised through the public facade API.

use im_study::prelude::*;

/// The Karate club under uc0.1 with a shared oracle, the work-horse instance
/// of these tests (identical to the paper's smallest instance).
fn karate_instance() -> PreparedInstance {
    PreparedInstance::prepare(
        InstanceConfig::new(Dataset::Karate, ProbabilityModel::uc01()),
        60_000,
        1,
    )
}

#[test]
fn all_three_approaches_converge_to_the_same_seed_set_on_karate() {
    // Section 5.1: for a sufficiently large sample number the seed-set
    // distribution degenerates, and the limit set is the same for Oneshot,
    // Snapshot and RIS.
    let instance = karate_instance();
    let (exact, _) = instance.exact_greedy(1);

    // Sample numbers in the convergence regime of Figure 1a (the paper needed
    // β up to 2^16 before Oneshot's seed-set distribution degenerated; the two
    // most influential Karate vertices are close in influence).
    let algorithms = [
        Algorithm::Oneshot { beta: 32_768 },
        Algorithm::Snapshot { tau: 16_384 },
        Algorithm::Ris { theta: 131_072 },
    ];
    for algorithm in algorithms {
        let batch = instance.run_trials(algorithm, 1, 6, 77, true);
        let distribution = batch.seed_set_distribution();
        assert!(
            distribution.is_degenerate(),
            "{algorithm} should return a unique seed set at this sample number; got {} distinct",
            distribution.num_distinct()
        );
        let (modal, _) = distribution.mode().expect("non-empty distribution");
        assert_eq!(
            modal, &exact,
            "{algorithm} limit set should equal exact greedy"
        );
    }
}

#[test]
fn entropy_decreases_and_mean_influence_increases_with_sample_number() {
    // The two monotone trends behind Figures 1 and 4.
    let instance = karate_instance();
    let sweep = SweepConfig {
        sample_numbers: vec![1, 16, 256, 4_096],
        trials: 40,
        base_seed: 5,
        threads: 0,
    };
    let analyzed = instance.sweep(ApproachKind::Ris, 4, &sweep);
    let entropies: Vec<f64> = analyzed.analyses.iter().map(|a| a.entropy).collect();
    let means: Vec<f64> = analyzed
        .analyses
        .iter()
        .map(|a| a.influence_stats.mean)
        .collect();
    assert!(
        entropies.first().unwrap() > entropies.last().unwrap(),
        "entropy should fall from θ=1 ({}) to θ=4096 ({})",
        entropies[0],
        entropies[3]
    );
    assert!(
        means.last().unwrap() > means.first().unwrap(),
        "mean influence should rise from θ=1 ({}) to θ=4096 ({})",
        means[0],
        means[3]
    );
    // The influence distribution tightens as well.
    let first_sd = analyzed.analyses.first().unwrap().influence_stats.std_dev;
    let last_sd = analyzed.analyses.last().unwrap().influence_stats.std_dev;
    assert!(
        last_sd <= first_sd,
        "SD should not grow: {first_sd} -> {last_sd}"
    );
}

#[test]
fn oracle_and_monte_carlo_agree_on_greedy_seed_sets() {
    // The shared RR-set oracle and an independent forward Monte-Carlo
    // estimator must agree on the influence of the same seed set.
    let instance = karate_instance();
    let outcome = Algorithm::Snapshot { tau: 256 }.run(&instance.graph, 4, 3);
    let oracle_estimate = instance.oracle.estimate_seed_set(&outcome.seeds);
    let seeds: Vec<VertexId> = outcome.seeds.iter().collect();
    let mut rng = default_rng(123);
    let mc_estimate = im_study::im_core::diffusion::monte_carlo_influence(
        &instance.graph,
        &seeds,
        60_000,
        &mut rng,
    );
    let diff = (oracle_estimate - mc_estimate).abs();
    assert!(
        diff < 0.15,
        "oracle ({oracle_estimate:.3}) and Monte-Carlo ({mc_estimate:.3}) disagree by {diff:.3}"
    );
}

#[test]
fn snapshot_and_ris_sample_sizes_follow_the_paper_model() {
    // Table 1: Snapshot stores ≈ τ·(n + m̃) items, RIS stores ≈ θ·EPT vertices
    // and no edges, and EPT ≤ 1 + m̃.
    let instance = karate_instance();
    let n = instance.graph.num_vertices() as f64;
    let m_tilde = instance.graph.probability_sum();
    let tau = 64u64;
    let snapshot = Algorithm::Snapshot { tau }.run(&instance.graph, 1, 9);
    let snapshot_size = snapshot.sample_size.total() as f64;
    let expected = tau as f64 * (n + m_tilde);
    assert!(
        (snapshot_size - expected).abs() / expected < 0.2,
        "Snapshot sample size {snapshot_size} should be near τ(n + m̃) = {expected}"
    );

    let theta = 4_096u64;
    let ris = Algorithm::Ris { theta }.run(&instance.graph, 1, 9);
    assert_eq!(ris.sample_size.edges, 0, "RIS stores vertices only");
    let ept_hat = ris.sample_size.vertices as f64 / theta as f64;
    assert!(
        ept_hat <= 1.0 + m_tilde,
        "empirical EPT {ept_hat} must satisfy EPT ≤ 1 + m̃ = {}",
        1.0 + m_tilde
    );

    // Oneshot stores nothing.
    let oneshot = Algorithm::Oneshot { beta: 8 }.run(&instance.graph, 1, 9);
    assert_eq!(oneshot.sample_size.total(), 0);
}

#[test]
fn different_probability_models_change_the_optimal_seed() {
    // Section 5.1.2: experimental conclusions depend on the probability
    // assignment, which is why the paper evaluates four of them. On BA_d the
    // most influential vertex under uc0.01 (hub-driven) need not be the most
    // influential under owc (everyone spreads one unit).
    let uc = PreparedInstance::prepare(
        InstanceConfig::new(Dataset::BaDense, ProbabilityModel::uc001()),
        40_000,
        2,
    );
    let owc = PreparedInstance::prepare(
        InstanceConfig::new(Dataset::BaDense, ProbabilityModel::OutDegreeWeighted),
        40_000,
        2,
    );
    let top_uc = uc.oracle.top_influential_vertices(1)[0];
    let top_owc = owc.oracle.top_influential_vertices(1)[0];
    // The influence magnitudes certainly differ strongly.
    assert!(
        (top_uc.1 - top_owc.1).abs() > 1.0,
        "uc0.01 and owc should produce very different top influences ({} vs {})",
        top_uc.1,
        top_owc.1
    );
}

#[test]
fn run_outcomes_are_fully_reproducible_across_processes() {
    // Determinism is what makes every experiment in EXPERIMENTS.md auditable:
    // the same (dataset, model, algorithm, k, seed) tuple must give the same
    // seeds and the same traversal cost, bit for bit.
    let a = Dataset::Karate.influence_graph(ProbabilityModel::InDegreeWeighted, 0);
    let b = Dataset::Karate.influence_graph(ProbabilityModel::InDegreeWeighted, 0);
    let run_a = Algorithm::Ris { theta: 512 }.run(&a, 4, 2020);
    let run_b = Algorithm::Ris { theta: 512 }.run(&b, 4, 2020);
    assert_eq!(run_a, run_b);
}

#[test]
fn experiment_registry_runs_a_cheap_driver_end_to_end() {
    // The experiment drivers are part of the public API surface; make sure the
    // registry dispatch works and produces non-empty tables.
    let report = im_study::imexp::experiments::run_by_name("table3", ExperimentScale::Quick)
        .expect("table3 is registered");
    assert_eq!(report.id, "table3");
    assert!(!report.tables.is_empty());
    assert_eq!(report.tables[0].num_rows(), 8);
    assert!(report.render().contains("Karate"));
}
