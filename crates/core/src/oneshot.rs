//! The Oneshot approach (Algorithm 3.2): Monte-Carlo simulations on the spot.
//!
//! Build does nothing. Estimate simulates the diffusion process `β` times from
//! `S_{ℓ−1} + v` and returns the average number of activated vertices. Update
//! does nothing beyond remembering the chosen seed. The estimator is unbiased
//! but — because every Estimate call uses fresh randomness — neither monotone
//! nor submodular (Section 3.3.1), so CELF-style lazy evaluation is not
//! admissible for it.

use imgraph::{InfluenceGraph, VertexId};
use imrand::{derive_seed, DefaultRng, Rng32};

use crate::cost::{SampleSize, TraversalCost};
use crate::diffusion::IcSimulator;
use crate::estimator::InfluenceEstimator;
use crate::sampler::{self, Backend, SampleBudget};

/// Where an Estimate call's `β` simulations draw their randomness from.
enum Source<R> {
    /// The paper-faithful shared stream: every simulation advances one
    /// generator in order (inherently sequential).
    Stream(R),
    /// The batched sampler: Estimate call `c` derives its own seed from
    /// `base_seed` and fans its `β` simulations out in deterministic batches,
    /// identical on the sequential and parallel [`Backend`]s.
    Batched {
        base_seed: u64,
        backend: Backend,
        next_call: u64,
    },
}

/// The Oneshot (simulation-based) influence estimator.
pub struct OneshotEstimator<'g, R: Rng32> {
    graph: &'g InfluenceGraph,
    /// Sample number β: simulations per Estimate call.
    beta: u64,
    source: Source<R>,
    simulator: IcSimulator,
    current_seeds: Vec<VertexId>,
    cost: TraversalCost,
}

impl<'g, R: Rng32> OneshotEstimator<'g, R> {
    /// Build an Oneshot estimator (Algorithm 3.2's Build is a no-op; this just
    /// captures the graph, the sample number `β ≥ 1` and the run's generator).
    ///
    /// # Panics
    ///
    /// Panics if `beta == 0`.
    pub fn new(graph: &'g InfluenceGraph, beta: u64, rng: R) -> Self {
        assert!(
            beta >= 1,
            "Oneshot needs at least one simulation per estimate"
        );
        Self {
            graph,
            beta,
            source: Source::Stream(rng),
            simulator: IcSimulator::for_graph(graph),
            current_seeds: Vec::new(),
            cost: TraversalCost::zero(),
        }
    }

    /// The seeds committed so far.
    #[must_use]
    pub fn current_seeds(&self) -> &[VertexId] {
        &self.current_seeds
    }

    /// Estimate the influence spread of an arbitrary seed set (used by tests
    /// and by the traversal-cost experiment at k = 1 with sample number 1).
    pub fn estimate_set(&mut self, seeds: &[VertexId]) -> f64 {
        let beta = self.beta;
        let (activated, cost) = match &mut self.source {
            Source::Stream(rng) => {
                let graph = self.graph;
                let simulator = &mut self.simulator;
                sampler::fold_stream(
                    beta,
                    rng,
                    (0u64, TraversalCost::zero()),
                    |(activated, mut cost), _, rng| {
                        let outcome = simulator.simulate(graph, seeds, rng);
                        cost += outcome.cost;
                        (activated + outcome.activated as u64, cost)
                    },
                )
            }
            Source::Batched {
                base_seed,
                backend,
                next_call,
            } => {
                let call_seed = derive_seed(*base_seed, *next_call);
                let backend = *backend;
                *next_call += 1;
                let graph = self.graph;
                let budget = SampleBudget::new(beta);
                // `run_batches_reusing` lets the single worker drive the
                // estimator-owned simulator instead of allocating fresh O(n)
                // scratch on every Estimate call.
                sampler::run_batches_reusing(
                    &budget,
                    call_seed,
                    backend,
                    &mut self.simulator,
                    || IcSimulator::for_graph(graph),
                    |simulator, batch, rng| {
                        let mut activated = 0u64;
                        let mut cost = TraversalCost::zero();
                        for _ in 0..batch.len {
                            let outcome = simulator.simulate(graph, seeds, rng);
                            activated += outcome.activated as u64;
                            cost += outcome.cost;
                        }
                        (activated, cost)
                    },
                )
                .into_iter()
                .fold((0u64, TraversalCost::zero()), |(a, mut c), (ba, bc)| {
                    c += bc;
                    (a + ba, c)
                })
            }
        };
        self.cost += cost;
        activated as f64 / beta as f64
    }
}

impl<'g> OneshotEstimator<'g, DefaultRng> {
    /// Build an Oneshot estimator driven by the batched sampler: every
    /// Estimate call fans its `β` simulations out over `backend`, drawing
    /// per-batch PRNG streams derived from `base_seed` and the call index.
    /// For a fixed `base_seed` the estimates — and therefore every seed set
    /// greedy selects — are identical on the sequential and parallel
    /// [`Backend`]s.
    ///
    /// # Panics
    ///
    /// Panics if `beta == 0`.
    pub fn with_backend(
        graph: &'g InfluenceGraph,
        beta: u64,
        base_seed: u64,
        backend: Backend,
    ) -> Self {
        assert!(
            beta >= 1,
            "Oneshot needs at least one simulation per estimate"
        );
        Self {
            graph,
            beta,
            source: Source::Batched {
                base_seed,
                backend,
                next_call: 0,
            },
            simulator: IcSimulator::for_graph(graph),
            current_seeds: Vec::new(),
            cost: TraversalCost::zero(),
        }
    }
}

impl<'g, R: Rng32> InfluenceEstimator for OneshotEstimator<'g, R> {
    fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    fn estimate(&mut self, candidate: VertexId) -> f64 {
        // Simulate from S_{ℓ−1} + v; the candidate is appended temporarily.
        self.current_seeds.push(candidate);
        let seeds = std::mem::take(&mut self.current_seeds);
        let value = self.estimate_set(&seeds);
        self.current_seeds = seeds;
        self.current_seeds.pop();
        value
    }

    fn update(&mut self, chosen: VertexId) {
        self.current_seeds.push(chosen);
    }

    fn traversal_cost(&self) -> TraversalCost {
        self.cost
    }

    fn sample_size(&self) -> SampleSize {
        // Oneshot stores no samples between Estimate calls; the |A_{≤n}| ≤ n
        // vertices held during one simulation are transient (Section 3.3.2).
        SampleSize::zero()
    }

    fn approach_name(&self) -> &'static str {
        "Oneshot"
    }

    fn sample_number(&self) -> u64 {
        self.beta
    }

    fn is_submodular(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::greedy_select;
    use imgraph::DiGraph;
    use imrand::Pcg32;

    fn star(prob: f64) -> InfluenceGraph {
        // 0 -> 1..4
        let edges: Vec<_> = (1..5u32).map(|v| (0, v)).collect();
        InfluenceGraph::new(DiGraph::from_edges(5, &edges), vec![prob; 4])
    }

    #[test]
    fn estimate_of_hub_exceeds_leaf() {
        let ig = star(0.5);
        let mut est = OneshotEstimator::new(&ig, 512, Pcg32::seed_from_u64(1));
        let hub = est.estimate(0);
        let leaf = est.estimate(3);
        assert!(
            hub > leaf,
            "hub estimate {hub} should exceed leaf estimate {leaf}"
        );
        assert!((leaf - 1.0).abs() < 0.05, "a leaf activates only itself");
        assert!(
            (hub - 3.0).abs() < 0.2,
            "hub influence should be ≈ 1 + 4·0.5 = 3"
        );
    }

    #[test]
    fn estimates_are_relative_to_current_seed_set() {
        let ig = star(1.0);
        let mut est = OneshotEstimator::new(&ig, 16, Pcg32::seed_from_u64(2));
        // With the hub already selected, every additional vertex yields the
        // same total influence of 5.
        est.update(0);
        let value = est.estimate(1);
        assert!((value - 5.0).abs() < 1e-9);
        assert_eq!(est.current_seeds(), &[0]);
    }

    #[test]
    fn traversal_cost_accumulates_per_simulation() {
        let ig = star(1e-12);
        let beta = 8;
        let mut est = OneshotEstimator::new(&ig, beta, Pcg32::seed_from_u64(3));
        let _ = est.estimate(0);
        // Each simulation from {0}: scans vertex 0 and its 4 out-edges.
        assert_eq!(est.traversal_cost().vertices, beta);
        assert_eq!(est.traversal_cost().edges, 4 * beta);
    }

    #[test]
    fn sample_size_is_zero() {
        let ig = star(0.5);
        let est = OneshotEstimator::new(&ig, 4, Pcg32::seed_from_u64(4));
        assert_eq!(est.sample_size(), SampleSize::zero());
        assert_eq!(est.approach_name(), "Oneshot");
        assert_eq!(est.sample_number(), 4);
        assert!(!est.is_submodular());
    }

    #[test]
    fn greedy_with_oneshot_picks_the_hub() {
        let ig = star(0.9);
        let mut est = OneshotEstimator::new(&ig, 256, Pcg32::seed_from_u64(5));
        let result = greedy_select(&mut est, 1, &mut Pcg32::seed_from_u64(6));
        assert_eq!(result.selection_order, vec![0]);
    }

    #[test]
    fn estimate_set_matches_estimate_for_singletons() {
        let ig = star(1.0);
        let mut a = OneshotEstimator::new(&ig, 32, Pcg32::seed_from_u64(7));
        let mut b = OneshotEstimator::new(&ig, 32, Pcg32::seed_from_u64(7));
        assert!((a.estimate(0) - b.estimate_set(&[0])).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one simulation")]
    fn zero_beta_panics() {
        let ig = star(0.5);
        let _ = OneshotEstimator::new(&ig, 0, Pcg32::seed_from_u64(8));
    }
}
