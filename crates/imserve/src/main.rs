//! `imserve` — build, serve and query persistent influence indexes.
//!
//! ```text
//! imserve build    --dataset karate --model uc0.1 --pool 100000 --out karate.imx
//! imserve serve    --index karate.imx --addr 127.0.0.1:7431 --workers 4
//! imserve serve    --index karate.imx --threaded   # turn-queue fallback front end
//! imserve query    --addr 127.0.0.1:7431 --estimate 0,33
//! imserve query    --addr 127.0.0.1:7431 --topk 3 --algorithm greedy
//! imserve query    --addr 127.0.0.1:7431 --stats
//! imserve route    --addr 127.0.0.1:7431 --addr 127.0.0.1:7432 --metrics-addr 127.0.0.1:9200
//! imserve mutate   --addr 127.0.0.1:7431 --insert 0,33,0.5 --delete 0,1
//! imserve build    --dataset karate --deltas script.jsonl --out mutated.imx
//! imserve loadtest --addr 127.0.0.1:7431 --connections 8 --requests 500
//! ```
//!
//! `mutate` applies deltas *incrementally* to a running server (only the
//! dirty RR sets are resampled); `build --deltas` constructs the equivalent
//! index *from scratch*. The two are byte-identical by construction — the CI
//! smoke step diffs their served responses. `mutate --batch` applies the
//! deltas atomically (one CSR rebuild, dirty-union resampling), and
//! `compact` folds the pending log into the snapshot watermark — live over
//! TCP or offline on an artifact file:
//!
//! ```text
//! imserve mutate  --addr 127.0.0.1:7431 --batch --file script.jsonl
//! imserve compact --addr 127.0.0.1:7431
//! imserve compact --index karate.imx --out karate_compacted.imx
//! imserve serve   --index karate.imx --compact-log-len 256
//! ```

use std::process::ExitCode;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use imdyn::CompactionPolicy;
use imserve::cli::{self, Command, CompactTarget, QuerySpec};
use imserve::client::{ReconnectingService, RemoteService};
use imserve::engine::{EngineConfig, QueryEngine};
use imserve::index::{build_dataset_index_with_deltas, parse_dataset, parse_model, IndexArtifact};
use imserve::loadtest::{self, LoadtestConfig};
use imserve::protocol::{self, Request, Response};
use imserve::replica::ReplicaSet;
use imserve::server::{self, ServerConfig};
use imserve::service::{InfluenceService, ServiceError};
use imserve::shard::ShardedService;

/// Open the typed service for a set of `--addr` values: one address is a
/// plain remote backend, several are routed through a sharded service.
fn open_service(addrs: &[String]) -> Result<Box<dyn InfluenceService>, ServiceError> {
    if addrs.len() == 1 {
        return Ok(Box::new(RemoteService::connect(addrs[0].as_str())?));
    }
    let mut shards = Vec::with_capacity(addrs.len());
    for addr in addrs {
        shards.push(RemoteService::connect(addr.as_str())?);
    }
    let mut sharded = ShardedService::new(shards)?;
    let info = sharded.info()?;
    if (info.pool_size as u64) < info.global_pool {
        eprintln!(
            "warning: the given shards cover {} of {} global RR sets — answers reflect \
             the covered slice, not the whole pool (missing --addr?)",
            info.pool_size, info.global_pool
        );
    }
    Ok(Box::new(sharded))
}

/// Print a typed result in its wire-JSON form (so scripts and the CI smoke
/// steps can diff outputs across dialects and backends).
fn print_response(response: Response) -> Result<(), Box<dyn std::error::Error>> {
    println!("{}", protocol::encode(&response)?);
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match cli::parse(&args) {
        Ok(command) => command,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", cli::USAGE);
            return ExitCode::FAILURE;
        }
    };
    match run(command) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(command: Command) -> Result<(), Box<dyn std::error::Error>> {
    match command {
        Command::Build {
            dataset,
            model,
            pool,
            seed,
            out,
            deltas,
            shard,
            pool_layout,
        } => {
            let started = std::time::Instant::now();
            let mut artifact = if let Some((index, count)) = shard {
                let ds = parse_dataset(&dataset)?;
                let pm = parse_model(&model)?;
                let graph = ds.influence_graph(pm, seed);
                IndexArtifact::build_shard(ds.name(), &pm.label(), graph, pool, seed, index, count)
            } else {
                let script = match &deltas {
                    Some(path) => protocol::parse_delta_script(&std::fs::read_to_string(path)?)?,
                    None => Vec::new(),
                };
                build_dataset_index_with_deltas(&dataset, &model, pool, seed, &script)?
            };
            artifact.convert_pool_layout(pool_layout);
            artifact.save(&out)?;
            let shard_note = match (shard, artifact.shard) {
                (Some((i, n)), Some(info)) => {
                    format!(", shard {i}/{n} at global offset {}", info.offset)
                }
                _ => String::new(),
            };
            eprintln!(
                "built index {} ({} vertices, {} edges, pool {} [{} layout]{shard_note}, \
                 {} deltas) in {:.2}s -> {}",
                artifact.meta.graph_id,
                artifact.meta.num_vertices,
                artifact.meta.num_edges,
                artifact.meta.pool_size,
                artifact.pool_layout(),
                artifact.log.len(),
                started.elapsed().as_secs_f64(),
                out
            );
            Ok(())
        }
        Command::Serve {
            index,
            addr,
            reactor,
            workers,
            cache,
            compact_log_len,
            compact_dirty,
            wal,
            metrics_addr,
            slow_micros,
            repl_addr,
            follow,
            pool_layout,
        } => {
            let started = std::time::Instant::now();
            let mut artifact = IndexArtifact::load(&index)?;
            if let Some(layout) = pool_layout {
                artifact.convert_pool_layout(layout);
            }
            eprintln!(
                "loaded index {} ({} vertices, pool {} [{} layout, {} resident bytes], \
                 epoch {}) in {:.0}ms",
                artifact.meta.graph_id,
                artifact.meta.num_vertices,
                artifact.meta.pool_size,
                artifact.pool_layout(),
                artifact.oracle.pool_resident_bytes(),
                artifact.epoch(),
                started.elapsed().as_secs_f64() * 1e3
            );
            let policy = CompactionPolicy {
                max_log_len: compact_log_len,
                max_dirty_fraction: compact_dirty,
            };
            if policy.is_enabled() {
                eprintln!(
                    "auto-compaction enabled (log-len {:?}, dirty-fraction {:?})",
                    policy.max_log_len, policy.max_dirty_fraction
                );
            }
            let mut builder = QueryEngine::builder(artifact)
                .config(&EngineConfig {
                    cache_capacity: cache,
                    compaction_policy: policy,
                })
                .metrics(imserve::ServingMetrics::new(slow_micros));
            if let Some(path) = &wal {
                eprintln!("mutation WAL enabled at {path}");
                builder = builder.wal(path);
            }
            if follow.is_some() {
                // Followers start read-only; `imserve promote` flips them
                // writable once their replication cursor has caught up.
                builder = builder.read_only(true);
            }
            let engine = Arc::new(builder.build()?);
            let follower_status = follow.as_ref().map(|leader| {
                let status = Arc::new(imserve::FollowerStatus::default());
                let handle = imserve::spawn_follower(
                    leader.as_str(),
                    Arc::clone(&engine),
                    Arc::clone(&status),
                );
                eprintln!("following leader at {leader} (read-only until promoted)");
                (status, handle)
            });
            let _leader = match &repl_addr {
                Some(repl_addr) => {
                    // The CLI refuses `--repl-addr` without `--wal`, so the
                    // unwrap documents an invariant, not a hope.
                    let wal_path = wal.clone().expect("--repl-addr requires --wal");
                    let leader = imserve::spawn_leader(
                        repl_addr.as_str(),
                        Arc::clone(&engine),
                        wal_path,
                        Arc::new(imserve::ReplicationFaults::default()),
                    )?;
                    eprintln!("replication listener on {}", leader.addr());
                    // Printed on stdout so scripts can scrape the resolved port.
                    println!("imserve replication on {}", leader.addr());
                    Some(leader)
                }
                None => None,
            };
            if let Some(metrics_addr) = &metrics_addr {
                let ops_engine = Arc::clone(&engine);
                let ops_status = follower_status
                    .as_ref()
                    .map(|(status, _)| Arc::clone(status));
                let bound = imserve::spawn_ops_endpoint(metrics_addr.as_str(), move |path| {
                    let ops_status = ops_status.clone();
                    let health_engine = Arc::clone(&ops_engine);
                    imserve::route_ops_request(
                        path,
                        || ops_engine.render_metrics(),
                        || ops_engine.obs().event_log.render_json_lines(),
                        move || {
                            let mut report = health_engine.health();
                            if let Some(status) = &ops_status {
                                let connected =
                                    status.connected.load(std::sync::atomic::Ordering::SeqCst);
                                // A promoted node is a leader now: the dead
                                // stream behind it must not fail readiness.
                                let promoted = !health_engine.is_read_only();
                                let detail = if promoted {
                                    format!(
                                        "promoted; no longer following (cursor stopped at epoch {})",
                                        status
                                            .last_applied_epoch
                                            .load(std::sync::atomic::Ordering::SeqCst)
                                    )
                                } else {
                                    match status.last_error() {
                                        Some(error) if !connected => error,
                                        _ => format!(
                                            "streaming; cursor at epoch {}",
                                            status
                                                .last_applied_epoch
                                                .load(std::sync::atomic::Ordering::SeqCst)
                                        ),
                                    }
                                };
                                report.push("replication", connected || promoted, detail);
                            }
                            report
                        },
                    )
                })?;
                eprintln!(
                    "ops endpoint on http://{bound}/metrics (also /events, /healthz, /readyz; \
                     slow-query threshold {slow_micros}us)"
                );
                // Printed on stdout so scripts can scrape the resolved port.
                println!("imserve metrics on {bound}");
            }
            let handle = if reactor {
                imserve::reactor::spawn(
                    addr.as_str(),
                    engine,
                    &imserve::ReactorConfig {
                        compute_threads: workers,
                        ..imserve::ReactorConfig::default()
                    },
                )?
            } else {
                server::spawn(
                    addr.as_str(),
                    engine,
                    &ServerConfig {
                        workers,
                        ..ServerConfig::default()
                    },
                )?
            };
            eprintln!(
                "front end: {}",
                if reactor {
                    "reactor (event loop)"
                } else {
                    "threaded (turn queue)"
                }
            );
            // Printed on stdout so scripts can scrape the resolved port.
            println!("imserve listening on {}", handle.addr());
            // Serve until killed; the acceptor thread owns the listener.
            loop {
                std::thread::park();
            }
        }
        Command::Route {
            addrs,
            metrics_addr,
            deadline_ms,
        } => {
            // The cluster's operational face: a long-lived router whose
            // shard connections self-heal (a dead shard degrades /readyz
            // while it is down and readiness recovers when it returns).
            // Each `--addr` operand may name a `|`-separated replica set
            // (leader first): reads fail over to a caught-up follower while
            // writes stay leader-ordered.
            let mut shards: Vec<ReplicaSet<ReconnectingService>> = Vec::with_capacity(addrs.len());
            let mut replica_count = 0usize;
            for operand in &addrs {
                let members: Vec<(String, ReconnectingService)> =
                    imserve::parse_replica_addrs(operand)?
                        .into_iter()
                        .map(|member| {
                            let service = ReconnectingService::new(member.as_str());
                            (member, service)
                        })
                        .collect();
                replica_count += members.len().saturating_sub(1);
                shards.push(ReplicaSet::new(members));
            }
            let mut router = ShardedService::new(shards)?;
            router.set_deadline(Some(Duration::from_millis(deadline_ms)))?;
            let router = Arc::new(Mutex::new(router));
            let bound = imserve::spawn_ops_endpoint(metrics_addr.as_str(), move |path| {
                let metrics = Arc::clone(&router);
                let events = Arc::clone(&router);
                let health = Arc::clone(&router);
                imserve::route_ops_request(
                    path,
                    move || {
                        metrics
                            .lock()
                            .expect("router lock")
                            .cluster_metrics()
                            .render_prometheus()
                    },
                    move || {
                        let router = events.lock().expect("router lock");
                        router.obs().event_log.render_json_lines()
                    },
                    move || {
                        health
                            .lock()
                            .expect("router lock")
                            .health()
                            .unwrap_or_else(|e| {
                                let mut report = imserve::HealthReport::new();
                                report.push("router", false, e.to_string());
                                report
                            })
                    },
                )
            })?;
            eprintln!(
                "routing {} shard(s) ({replica_count} standby replica(s)) with a \
                 {deadline_ms}ms probe deadline; federated ops endpoint on \
                 http://{bound}/metrics (also /events, /healthz, /readyz)",
                addrs.len()
            );
            // Printed on stdout so scripts can scrape the resolved port.
            println!("imserve route on {bound}");
            // Route until killed; the endpoint thread owns the listener.
            loop {
                std::thread::park();
            }
        }
        Command::Reload { addr, index } => {
            let mut service = RemoteService::connect(addr.as_str())?;
            let outcome = service.reload(&index)?;
            eprintln!(
                "reloaded {index} at epoch {}: pool {}, {} pending deltas, swap held the \
                 write lock for {}us",
                outcome.epoch, outcome.pool_size, outcome.log_len, outcome.swap_micros
            );
            print_response(outcome.into())
        }
        Command::Promote {
            addr,
            expected_epoch,
        } => {
            let mut service = RemoteService::connect(addr.as_str())?;
            let outcome = service.promote(expected_epoch)?;
            eprintln!(
                "{} at epoch {}",
                if outcome.was_read_only {
                    "promoted follower to writable"
                } else {
                    "already writable (promotion is idempotent)"
                },
                outcome.epoch
            );
            print_response(outcome.into())
        }
        Command::Query { addrs, request, v1 } => {
            if v1 {
                // The legacy dialect, kept for compatibility checks: bare
                // frames over a fresh connection, errors in-band.
                let request = match request {
                    QuerySpec::Estimate(seeds) => Request::Estimate { seeds },
                    QuerySpec::TopK(k, algorithm) => Request::TopK { k, algorithm },
                    QuerySpec::Info => Request::Info,
                    QuerySpec::Stats => Request::Stats,
                    QuerySpec::Metrics => Request::Metrics,
                    QuerySpec::Health | QuerySpec::Events => {
                        return Err(Box::new(imserve::ServeError::Query(
                            "--health and --events need protocol v2 (drop --v1)".into(),
                        )));
                    }
                };
                let response = imserve::client::query_once(addrs[0].as_str(), &request)?;
                print_response(response.clone())?;
                if matches!(response, Response::Error { .. }) {
                    return Err(Box::new(imserve::ServeError::Query(
                        "server answered with an error".into(),
                    )));
                }
                return Ok(());
            }
            let mut service = open_service(&addrs)?;
            match request {
                QuerySpec::Estimate(seeds) => print_response(service.estimate(&seeds)?.into()),
                QuerySpec::TopK(k, algorithm) => {
                    print_response(service.top_k(k, algorithm)?.into())
                }
                QuerySpec::Info => print_response(service.info()?.into()),
                QuerySpec::Stats => {
                    let stats = service.stats()?;
                    for (i, shard) in stats.shards.iter().enumerate() {
                        eprintln!(
                            "shard {i}: epoch {} (watermark {}, {} pending)",
                            shard.epoch, shard.snapshot_epoch, shard.log_len
                        );
                    }
                    print_response(stats.into())
                }
                QuerySpec::Metrics => print_response(service.metrics()?.into()),
                QuerySpec::Health => {
                    let report = service.health()?;
                    eprint!("{}", report.render_text());
                    let degraded = !report.ready;
                    print_response(report.into())?;
                    if degraded {
                        return Err(Box::new(imserve::ServeError::Query(
                            "service reports not ready".into(),
                        )));
                    }
                    Ok(())
                }
                QuerySpec::Events => print_response(service.events()?.into()),
            }
        }
        Command::Mutate {
            addrs,
            deltas,
            batch,
        } => {
            if batch {
                let mut service = open_service(&addrs)?;
                return print_response(service.mutate_batch(&deltas)?.into());
            }
            // Per-delta semantics only exist on the legacy engine path; the
            // CLI parser guarantees a single address here.
            let response =
                imserve::client::query_once(addrs[0].as_str(), &Request::Mutate { deltas })?;
            print_response(response.clone())?;
            if matches!(response, Response::Error { .. }) {
                return Err(Box::new(imserve::ServeError::Query(
                    "server answered with an error".into(),
                )));
            }
            Ok(())
        }
        Command::Compact { target } => match target {
            CompactTarget::Server { addr } => {
                let mut service = RemoteService::connect(addr.as_str())?;
                print_response(service.compact()?.into())
            }
            CompactTarget::File { index, out } => {
                let mut artifact = IndexArtifact::load(&index)?;
                let folded = artifact.compact();
                artifact.save(&out)?;
                eprintln!(
                    "compacted {index}: folded {folded} deltas at epoch {} -> {out}",
                    artifact.epoch()
                );
                Ok(())
            }
        },
        Command::Loadtest {
            addrs,
            connections,
            requests,
            k,
            arrival_rps,
        } => {
            let config = LoadtestConfig {
                connections,
                requests_per_connection: requests,
                k,
                seed: 1,
                arrival_rps,
            };
            let report = if addrs.len() == 1 {
                loadtest::run(addrs[0].as_str(), &config)?
            } else {
                // A sharded deployment: one router per loadtest connection,
                // each over its own connections to every shard.
                loadtest::run_with(&config, || {
                    let mut shards = Vec::with_capacity(addrs.len());
                    for addr in &addrs {
                        shards.push(RemoteService::connect(addr.as_str())?);
                    }
                    ShardedService::new(shards)
                })?
            };
            println!("{report}");
            Ok(())
        }
    }
}
