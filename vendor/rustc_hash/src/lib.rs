//! Offline stand-in for the `rustc-hash` crate.
//!
//! The build environment has no access to crates.io, so this workspace vendors
//! the small dependency surface it needs. This crate implements the same Fx
//! hash function (the FireFox / rustc hasher: a multiply-and-rotate word
//! hasher) and exposes the same `FxHashMap` / `FxHashSet` aliases.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A speedy, non-cryptographic hasher used throughout rustc.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: usize,
}

const SEED: usize = 0x51_7c_c1_b7_27_22_0a_95_u64 as usize;
const ROTATE: u32 = 5;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: usize) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(std::mem::size_of::<usize>()) {
            let mut buf = [0u8; std::mem::size_of::<usize>()];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(usize::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as usize);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as usize);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as usize);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i as usize);
        #[cfg(target_pointer_width = "32")]
        self.add_to_hash((i >> 32) as usize);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash as u64
    }
}

/// A `HashMap` using `FxHasher`.
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` using `FxHasher`.
pub type FxHashSet<V> = HashSet<V, BuildHasherDefault<FxHasher>>;

/// The `BuildHasher` for `FxHasher` (named as in rustc-hash 2.x).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(42));
        assert!(!s.insert(42));
    }

    #[test]
    fn hashing_is_deterministic() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(0xDEAD_BEEF);
        b.write_u64(0xDEAD_BEEF);
        assert_eq!(a.finish(), b.finish());
    }
}
