//! Space reduction for Snapshot and RIS: coarsening, sketches and compressed
//! RR sets.
//!
//! ```text
//! cargo run --release --example space_reduction
//! ```
//!
//! The paper's concluding Section 7 asks: "Can we cut down the memory usage of
//! Snapshot and RIS, e.g., by compressing reverse-reachable sets?" This example
//! measures three answers this repository implements:
//!
//! 1. **Compressed RR sets** (`imsketch::CompressedRrSets`) — store RIS's RR
//!    sets delta/varint-encoded and report the compression ratio;
//! 2. **Bottom-k reachability sketches** (`imsketch::ReachabilitySketches`) —
//!    replace Snapshot's per-snapshot reachable sets by fixed-size sketches and
//!    report the estimation error they introduce;
//! 3. **Influence-graph coarsening** (`imgraph::coarsen`) — contract
//!    probability-1 strongly connected components and report how much smaller
//!    every subsequent sample becomes.

use im_core::ris::generate_rr_set;
use im_study::prelude::*;
use imgraph::coarsen::coarsen_by_certain_edges;
use imgraph::live_edge::sample_snapshot;
use imgraph::reach::reachable_count;
use imsketch::descendant_counts;

fn main() {
    let graph = Dataset::CaGrQc.influence_graph(ProbabilityModel::uc01(), 0);
    println!(
        "instance: ca-GrQc analog (uc0.1), n = {}, m = {}\n",
        graph.num_vertices(),
        graph.num_edges()
    );

    // --- 1. Compressed RR sets ----------------------------------------------
    let theta = 20_000u64;
    let mut rng = default_rng(1);
    let mut compressed = CompressedRrSets::new();
    for _ in 0..theta {
        let rr = generate_rr_set(&graph, &mut rng);
        compressed.push(&rr.vertices);
    }
    println!("1. compressed RR sets (θ = {theta}):");
    println!(
        "   stored vertex ids      : {}",
        compressed.total_vertices()
    );
    println!(
        "   raw u32 payload        : {} bytes",
        compressed.uncompressed_bytes()
    );
    println!(
        "   delta/varint payload   : {} bytes",
        compressed.payload_bytes()
    );
    println!(
        "   compression ratio      : {:.2}×\n",
        compressed.compression_ratio()
    );

    // --- 2. Bottom-k sketches versus exact reachability ---------------------
    let mut rng = default_rng(2);
    let snapshot = sample_snapshot(&graph, &mut rng);
    let k_sketch = 32;
    let sketches = ReachabilitySketches::build(snapshot.graph(), k_sketch, &mut rng);
    let exact = descendant_counts(snapshot.graph());
    let mut total_abs_err = 0.0f64;
    let mut worst = 0.0f64;
    for v in 0..graph.num_vertices() as VertexId {
        let err = (sketches.estimate_reachable(v) - exact[v as usize] as f64).abs();
        total_abs_err += err;
        worst = worst.max(err);
    }
    let n = graph.num_vertices() as f64;
    println!("2. bottom-{k_sketch} sketches on one live-edge snapshot:");
    println!(
        "   exact reachable sets   : {} vertex entries",
        exact.iter().sum::<usize>()
    );
    println!(
        "   sketch storage         : {} ranks (≤ k·n = {})",
        sketches.stored_ranks(),
        k_sketch * graph.num_vertices()
    );
    println!(
        "   mean |error|           : {:.2} vertices",
        total_abs_err / n
    );
    println!("   max |error|            : {worst:.1} vertices\n");

    // --- 3. Coarsening -------------------------------------------------------
    // Promote the strongest edges to "certain" to mimic a network with
    // deterministic sub-structures, then contract.
    let boosted = ProbabilityModel::Uniform(1.0).assign(&Dataset::Karate.build(0));
    let coarse = coarsen_by_certain_edges(&boosted, 1.0);
    println!("3. coarsening Karate with all edges certain (the lossless extreme):");
    println!("   original vertices      : {}", boosted.num_vertices());
    println!("   supervertices          : {}", coarse.num_supervertices());
    println!(
        "   reduction ratio        : {:.1}%",
        100.0 * coarse.reduction_ratio()
    );
    let largest = coarse.sizes.iter().max().copied().unwrap_or(0);
    println!("   largest supervertex    : {largest} members");
    let full_reach = reachable_count(boosted.graph(), &[0]);
    println!(
        "   sanity: vertex 0 reaches {full_reach} vertices, its supervertex has size {}",
        coarse.sizes[coarse.membership[0] as usize]
    );
    println!("\nTake-away: RR-set compression gives a few-fold memory saving for free,");
    println!("sketches cap Snapshot's per-vertex state at k ranks with small error, and");
    println!("coarsening helps exactly when near-deterministic substructures exist.");
}
