//! Figure 2 bench: entropy plateaus on the iwc instances with near-tied seed
//! sets (Karate iwc k = 4, Physicians iwc k = 1).

use criterion::{criterion_group, criterion_main, Criterion};
use imexp::ApproachKind;
use imnet::ProbabilityModel;
use imstats::convergence::detect_plateau;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let karate = im_bench::karate(ProbabilityModel::InDegreeWeighted);
    let sweep = im_bench::small_sweep(8, 30);

    println!("\n--- Figure 2 series (Karate iwc, k = 4, RIS, 30 trials) ---");
    let analyzed = karate.sweep(ApproachKind::Ris, 4, &sweep);
    let curve = analyzed.entropy_curve();
    for p in &curve {
        println!("theta = {:>4}  H = {:.3}", p.sample_number, p.entropy);
    }
    println!("plateau: {:?}", detect_plateau(&curve, 3, 0.35));
    let top = karate.oracle.top_influential_vertices(2);
    println!(
        "top-2 singleton influences: {:.3} vs {:.3}",
        top[0].1, top[1].1
    );

    let mut group = c.benchmark_group("fig2_plateau");
    group.sample_size(10);
    group.bench_function("ris_sweep_point/karate_iwc_k4_s256", |b| {
        b.iter(|| {
            let batch =
                karate.run_trials(ApproachKind::Ris.with_sample_number(256), 4, 10, 5, false);
            black_box(batch.seed_set_distribution().entropy())
        })
    });
    group.bench_function("plateau_detection", |b| {
        b.iter(|| black_box(detect_plateau(&curve, 3, 0.35)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
