//! Figure 4 bench: influence distributions on Physicians (uc0.1, k = 16).

use criterion::{criterion_group, criterion_main, Criterion};
use imexp::ApproachKind;
use imnet::ProbabilityModel;
use imstats::SummaryStats;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let instance = im_bench::physicians(ProbabilityModel::uc01());
    let sweep = im_bench::small_sweep(6, 15);

    println!("\n--- Figure 4 series (Physicians uc0.1, k = 16, Snapshot, 15 trials) ---");
    let analyzed = instance.sweep(ApproachKind::Snapshot, 16, &sweep);
    for a in &analyzed.analyses {
        println!(
            "tau = {:>3}  mean = {:>7.2}  median = {:>7.2}  p1 = {:>7.2}  p99 = {:>7.2}",
            a.sample_number,
            a.influence_stats.mean,
            a.influence_stats.median,
            a.influence_stats.p01,
            a.influence_stats.p99,
        );
    }

    let influences = analyzed.analyses.last().unwrap().influences.clone();
    let mut group = c.benchmark_group("fig4_influence_dist");
    group.sample_size(10);
    group.bench_function("snapshot_run/physicians_uc0.1_k16_tau32", |b| {
        b.iter(|| {
            black_box(
                ApproachKind::Snapshot
                    .with_sample_number(32)
                    .run(&instance.graph, 16, 7),
            )
        })
    });
    group.bench_function("summary_stats", |b| {
        b.iter(|| black_box(SummaryStats::from_values(&influences)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
