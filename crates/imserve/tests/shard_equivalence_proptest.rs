//! Property test of the shard-merge soundness contract: for random small
//! graphs, random pool sizes and shard counts, and random interleaved
//! mutation batches, a [`ShardedService`] over N pool shards answers
//! `estimate` and `top_k` (both algorithms) bit-identically to a single-pool
//! [`LocalService`] built at the same derived seeds.

use std::sync::Arc;

use imdyn::workload;
use imgraph::{DiGraph, InfluenceGraph, MutableInfluenceGraph};
use imrand::Pcg32;
use imserve::engine::QueryEngine;
use imserve::index::IndexArtifact;
use imserve::protocol::TopKAlgorithm;
use imserve::service::{InfluenceService, LocalService};
use imserve::shard::ShardedService;
use proptest::prelude::*;
use proptest::TestCaseError;

/// Strategy: a random influence graph over `2..=10` vertices with `0..=20`
/// edges (parallel edges and self-loops included — both are legal).
fn arb_influence_graph() -> impl Strategy<Value = InfluenceGraph> {
    (2usize..10).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32);
        proptest::collection::vec(edge, 0..20).prop_flat_map(move |edges| {
            let len = edges.len();
            (
                Just(n),
                Just(edges),
                proptest::collection::vec(0.05f64..1.0, len),
            )
                .prop_map(|(n, edges, probs)| {
                    InfluenceGraph::new(DiGraph::from_edges(n, &edges), probs)
                })
        })
    })
}

fn local_over(artifact: IndexArtifact) -> LocalService {
    LocalService::new(Arc::new(QueryEngine::builder(artifact).build().unwrap()))
}

fn assert_same_answers(
    single: &mut LocalService,
    sharded: &mut ShardedService<LocalService>,
    n: usize,
) -> Result<(), TestCaseError> {
    for seeds in [vec![0u32], vec![(n - 1) as u32], vec![0, (n / 2) as u32]] {
        let a = single.estimate(&seeds).unwrap();
        let b = sharded.estimate(&seeds).unwrap();
        prop_assert_eq!(a.spread.to_bits(), b.spread.to_bits(), "seeds {:?}", seeds);
        prop_assert_eq!(a.covered, b.covered);
        prop_assert_eq!(a.pool, b.pool);
    }
    for algorithm in [TopKAlgorithm::Greedy, TopKAlgorithm::SingletonRank] {
        for k in 1..=3usize {
            let a = single.top_k(k, algorithm).unwrap();
            let b = sharded.top_k(k, algorithm).unwrap();
            prop_assert_eq!(&a.seeds, &b.seeds, "k {} algorithm {}", k, algorithm);
            prop_assert_eq!(a.spread.to_bits(), b.spread.to_bits());
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn sharded_equals_single_pool_under_interleaved_mutation(
        graph in arb_influence_graph(),
        pool in 4usize..48,
        shards in 1usize..4,
        base_seed in 0u64..1_000,
        workload_seed in 0u64..1_000,
        batches in proptest::collection::vec(1usize..4, 0..4),
    ) {
        let shards = shards.min(pool);
        let n = graph.num_vertices();
        let mut single = local_over(IndexArtifact::build(
            "prop", "uc", graph.clone(), pool, base_seed,
        ));
        let shard_backends: Vec<LocalService> = (0..shards)
            .map(|i| {
                local_over(IndexArtifact::build_shard(
                    "prop", "uc", graph.clone(), pool, base_seed, i, shards,
                ))
            })
            .collect();
        let mut sharded = ShardedService::new(shard_backends).unwrap();

        assert_same_answers(&mut single, &mut sharded, n)?;

        // Interleave random mutation batches with the query probes; the
        // batches are derived from the *current* graph so they stay valid.
        let mut rng = Pcg32::seed_from_u64(workload_seed);
        let mut mutable = MutableInfluenceGraph::from_graph(&graph);
        let mut epoch = 0u64;
        for batch_len in batches {
            let deltas = workload::random_deltas(&mutable, batch_len, &mut rng);
            for delta in &deltas {
                mutable.apply(delta).unwrap();
            }
            let a = single.mutate_batch(&deltas).unwrap();
            let b = sharded.mutate_batch(&deltas).unwrap();
            epoch += deltas.len() as u64;
            prop_assert_eq!(a.epoch, epoch);
            prop_assert_eq!(b.epoch, epoch);
            prop_assert_eq!(a.applied, deltas.len());
            prop_assert_eq!(b.applied, deltas.len());
            assert_same_answers(&mut single, &mut sharded, n)?;
        }

        // Epoch reporting stays in lockstep across every shard.
        let stats = sharded.stats().unwrap();
        prop_assert_eq!(stats.epoch, epoch);
        for report in &stats.shards {
            prop_assert_eq!(report.epoch, epoch);
        }
    }
}
