//! Fault injection for the sharded router's concurrent fan-out: a shard
//! that drops its connection mid-request, answers from a stale epoch, or
//! exceeds its deadline must surface as a **typed**
//! [`ServiceError::Shard`] naming the failing shard index — never as a
//! silently merged wrong answer — and the router's `(k, algorithm, epoch)`
//! selection memo must survive the episode intact: once the fault clears,
//! selections come back byte-identical to the single-pool reference.
//!
//! The faults are injected through a mock backend wrapping a healthy
//! [`LocalService`], so the suite exercises exactly the router's error
//! paths, not the transport's.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use imgraph::GraphDelta;
use imserve::engine::QueryEngine;
use imserve::index::{build_dataset_index, IndexArtifact};
use imserve::protocol::TopKAlgorithm;
use imserve::service::{
    CompactionReport, GainVector, InfluenceService, LocalService, MutationOutcome, ServiceError,
    ServiceInfo, ServiceResult, ServiceStats, SpreadEstimate, TopKSelection,
};
use imserve::shard::ShardedService;

const POOL: usize = 3_000;
const SEED: u64 = 7;
const SHARDS: usize = 3;

/// What a [`FaultyShard`] does to its next requests (until cleared).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fault {
    /// The connection is gone: every request fails with a transport error.
    Drop,
    /// The shard is unresponsive past its deadline: requests time out.
    Timeout,
    /// The shard answers `stats` from an epoch one ahead of its peers —
    /// the signature of an out-of-band mutation behind the router's back.
    StaleEpoch,
}

/// Shared remote control of one shard's injected fault.
type FaultSwitch = Arc<Mutex<Option<Fault>>>;

/// A mock shard backend: a healthy [`LocalService`] whose requests can be
/// made to fail (or report a skewed epoch) on demand.
struct FaultyShard {
    inner: LocalService,
    fault: FaultSwitch,
    /// Deadlines the router propagated to this shard, in call order.
    deadlines: Arc<Mutex<Vec<Option<Duration>>>>,
}

impl FaultyShard {
    fn gate(&self) -> ServiceResult<()> {
        match *self.fault.lock().unwrap() {
            Some(Fault::Drop) => Err(ServiceError::Transport(std::io::Error::new(
                std::io::ErrorKind::ConnectionAborted,
                "connection reset by shard",
            ))),
            Some(Fault::Timeout) => Err(ServiceError::Transport(std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                "shard deadline exceeded",
            ))),
            Some(Fault::StaleEpoch) | None => Ok(()),
        }
    }
}

impl InfluenceService for FaultyShard {
    fn info(&mut self) -> ServiceResult<ServiceInfo> {
        self.gate()?;
        self.inner.info()
    }

    fn estimate(&mut self, seeds: &[u32]) -> ServiceResult<SpreadEstimate> {
        self.gate()?;
        self.inner.estimate(seeds)
    }

    fn top_k(&mut self, k: usize, algorithm: TopKAlgorithm) -> ServiceResult<TopKSelection> {
        self.gate()?;
        self.inner.top_k(k, algorithm)
    }

    fn gains(&mut self, selected: &[u32]) -> ServiceResult<GainVector> {
        self.gate()?;
        self.inner.gains(selected)
    }

    fn mutate_batch(&mut self, deltas: &[GraphDelta]) -> ServiceResult<MutationOutcome> {
        self.gate()?;
        self.inner.mutate_batch(deltas)
    }

    fn compact(&mut self) -> ServiceResult<CompactionReport> {
        self.gate()?;
        self.inner.compact()
    }

    fn set_deadline(&mut self, deadline: Option<Duration>) -> ServiceResult<()> {
        self.deadlines.lock().unwrap().push(deadline);
        Ok(())
    }

    fn stats(&mut self) -> ServiceResult<ServiceStats> {
        self.gate()?;
        let mut stats = self.inner.stats()?;
        if *self.fault.lock().unwrap() == Some(Fault::StaleEpoch) {
            stats.epoch += 1;
        }
        Ok(stats)
    }
}

struct Fixture {
    router: ShardedService<FaultyShard>,
    switches: Vec<FaultSwitch>,
    deadlines: Vec<Arc<Mutex<Vec<Option<Duration>>>>>,
}

fn karate_graph() -> imgraph::InfluenceGraph {
    imserve::index::parse_dataset("karate")
        .unwrap()
        .influence_graph(imserve::index::parse_model("uc0.1").unwrap(), SEED)
}

fn fixture() -> Fixture {
    let graph = karate_graph();
    let mut switches = Vec::with_capacity(SHARDS);
    let mut deadlines = Vec::with_capacity(SHARDS);
    let shards: Vec<FaultyShard> = (0..SHARDS)
        .map(|i| {
            let artifact =
                IndexArtifact::build_shard("Karate", "uc0.1", graph.clone(), POOL, SEED, i, SHARDS);
            let fault: FaultSwitch = Arc::new(Mutex::new(None));
            let log = Arc::new(Mutex::new(Vec::new()));
            switches.push(Arc::clone(&fault));
            deadlines.push(Arc::clone(&log));
            FaultyShard {
                inner: LocalService::new(Arc::new(QueryEngine::builder(artifact).build().unwrap())),
                fault,
                deadlines: log,
            }
        })
        .collect();
    Fixture {
        router: ShardedService::new(shards).unwrap(),
        switches,
        deadlines,
    }
}

fn reference_selection(k: usize) -> TopKSelection {
    let engine = QueryEngine::builder(build_dataset_index("karate", "uc0.1", POOL, SEED).unwrap())
        .build()
        .unwrap();
    LocalService::new(Arc::new(engine))
        .top_k(k, TopKAlgorithm::Greedy)
        .unwrap()
}

fn set_fault(fx: &Fixture, shard: usize, fault: Option<Fault>) {
    *fx.switches[shard].lock().unwrap() = fault;
}

#[test]
fn dropped_shard_surfaces_as_typed_error_naming_the_index() {
    let mut fx = fixture();
    // Warm the router's selection memo while everything is healthy.
    let before = fx.router.top_k(2, TopKAlgorithm::Greedy).unwrap();

    set_fault(&fx, 1, Some(Fault::Drop));
    let err = fx.router.estimate(&[0, 5]).unwrap_err();
    match &err {
        ServiceError::Shard(message) => {
            assert!(message.contains("shard 1"), "names the shard: {message}");
        }
        other => panic!("expected a Shard error, got {other:?}"),
    }
    // Selections fail the same way (the pre-selection epoch check fans out).
    assert!(matches!(
        fx.router.top_k(2, TopKAlgorithm::Greedy),
        Err(ServiceError::Shard(_))
    ));

    // Once the fault clears, the memoized selection is served again,
    // byte-identical to before the episode and to the single-pool answer.
    set_fault(&fx, 1, None);
    let after = fx.router.top_k(2, TopKAlgorithm::Greedy).unwrap();
    assert_eq!(after.seeds, before.seeds);
    assert_eq!(after.spread.to_bits(), before.spread.to_bits());
    let expected = reference_selection(2);
    assert_eq!(after.seeds, expected.seeds);
    assert_eq!(after.spread.to_bits(), expected.spread.to_bits());
}

#[test]
fn timed_out_shard_surfaces_as_typed_error_naming_the_index() {
    let mut fx = fixture();
    set_fault(&fx, 2, Some(Fault::Timeout));
    let err = fx.router.estimate(&[3]).unwrap_err();
    match &err {
        ServiceError::Shard(message) => {
            assert!(message.contains("shard 2"), "names the shard: {message}");
            assert!(
                message.contains("timed out") || message.contains("deadline"),
                "carries the transport cause: {message}"
            );
        }
        other => panic!("expected a Shard error, got {other:?}"),
    }
    set_fault(&fx, 2, None);
    fx.router.estimate(&[3]).unwrap();
}

#[test]
fn stale_epoch_shard_is_caught_before_a_selection_is_served() {
    let mut fx = fixture();
    let before = fx.router.top_k(3, TopKAlgorithm::Greedy).unwrap();

    // Shard 1 now reports an epoch its peers have not reached — exactly
    // what an out-of-band mutation looks like from the router's seat.
    set_fault(&fx, 1, Some(Fault::StaleEpoch));
    let err = fx.router.top_k(3, TopKAlgorithm::Greedy).unwrap_err();
    match &err {
        ServiceError::Shard(message) => {
            assert!(message.contains("shard 1"), "names the shard: {message}");
            assert!(message.contains("epoch"), "names the cause: {message}");
        }
        other => panic!("expected a Shard error, got {other:?}"),
    }
    assert!(matches!(fx.router.stats(), Err(ServiceError::Shard(_))));

    // The memo keyed by the healthy epoch is still intact underneath.
    set_fault(&fx, 1, None);
    let after = fx.router.top_k(3, TopKAlgorithm::Greedy).unwrap();
    assert_eq!(after.seeds, before.seeds);
    assert_eq!(after.spread.to_bits(), before.spread.to_bits());
}

#[test]
fn uniformly_rejected_batch_is_not_a_shard_failure() {
    let mut fx = fixture();
    let before = fx.router.top_k(2, TopKAlgorithm::Greedy).unwrap();
    // Every shard rejects an invalid batch alike: nothing applied anywhere,
    // so the caller sees the same typed rejection a single pool returns.
    let bad = vec![GraphDelta::DeleteEdge {
        source: 0,
        target: 0,
    }];
    assert!(matches!(
        fx.router.mutate_batch(&bad),
        Err(ServiceError::Mutation(_))
    ));
    // Epoch and memo untouched.
    let after = fx.router.top_k(2, TopKAlgorithm::Greedy).unwrap();
    assert_eq!(after.seeds, before.seeds);
    assert_eq!(after.spread.to_bits(), before.spread.to_bits());
}

#[test]
fn partially_applied_broadcast_reports_a_torn_broadcast() {
    let mut fx = fixture();
    fx.router.top_k(2, TopKAlgorithm::Greedy).unwrap();

    // Shard 1 drops while its peers apply the batch: the union invariant is
    // genuinely gone and the router must say so, naming the shard.
    set_fault(&fx, 1, Some(Fault::Drop));
    let batch = vec![GraphDelta::InsertEdge {
        source: 16,
        target: 0,
        probability: 0.9,
    }];
    let err = fx.router.mutate_batch(&batch).unwrap_err();
    match &err {
        ServiceError::Shard(message) => {
            assert!(
                message.contains("broadcast torn"),
                "states the condition: {message}"
            );
            assert!(message.contains("shard 1"), "names the shard: {message}");
        }
        other => panic!("expected a Shard error, got {other:?}"),
    }

    // The shards really did diverge (0 and 2 applied, 1 did not), so the
    // next selection must fail loudly instead of serving a cross-epoch
    // merge — even with the fault cleared.
    set_fault(&fx, 1, None);
    assert!(matches!(
        fx.router.top_k(2, TopKAlgorithm::Greedy),
        Err(ServiceError::Shard(_))
    ));
}

#[test]
fn deadlines_propagate_to_every_shard() {
    let mut fx = fixture();
    fx.router
        .set_deadline(Some(Duration::from_millis(250)))
        .unwrap();
    fx.router.set_deadline(None).unwrap();
    for (i, log) in fx.deadlines.iter().enumerate() {
        let calls = log.lock().unwrap();
        assert_eq!(
            calls.as_slice(),
            &[Some(Duration::from_millis(250)), None],
            "shard {i} saw both deadline updates"
        );
    }
}
