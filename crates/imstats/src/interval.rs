//! Confidence intervals for the quantities the study estimates from trials.
//!
//! Two kinds of interval appear in the experimental methodology:
//!
//! * the *probability of an event* over `T` trials (e.g. "a near-optimal seed
//!   set is returned with probability at least 99 %", Table 5) — a binomial
//!   proportion, for which we provide the Wilson score interval;
//! * the *mean influence spread* over `T` trials (the dominant statistic of
//!   Section 5.2.3) — for which we provide a percentile bootstrap interval
//!   that makes no normality assumption, plus the classical normal-theory
//!   interval for comparison.

use imrand::{Pcg32, Rng32};

/// A two-sided confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Lower endpoint.
    pub lower: f64,
    /// Upper endpoint.
    pub upper: f64,
    /// Nominal coverage (e.g. 0.95).
    pub confidence: f64,
}

impl ConfidenceInterval {
    /// Whether the interval contains `value`.
    #[must_use]
    pub fn contains(&self, value: f64) -> bool {
        value >= self.lower && value <= self.upper
    }

    /// The interval width.
    #[must_use]
    pub fn width(&self) -> f64 {
        self.upper - self.lower
    }
}

/// The standard-normal quantile for the given two-sided confidence level,
/// computed with the Acklam rational approximation of the probit function
/// (absolute error below 1.2·10⁻⁹, far below the Monte-Carlo noise the
/// intervals are applied to).
#[must_use]
pub fn normal_quantile_two_sided(confidence: f64) -> f64 {
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence must lie in (0, 1), got {confidence}"
    );
    let p = 0.5 + confidence / 2.0;
    probit(p)
}

/// The probit function Φ⁻¹(p) for `p ∈ (0, 1)` (Acklam's approximation).
fn probit(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "probit argument must lie in (0, 1)");
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// Wilson score interval for a binomial proportion with `successes` out of
/// `trials` at the given confidence level.
///
/// Unlike the Wald interval it behaves sensibly at proportions near 0 or 1,
/// which is exactly where Table 5's "with probability ≥ 99 %" criterion
/// operates.
///
/// # Panics
///
/// Panics if `trials == 0`, `successes > trials`, or the confidence level is
/// outside `(0, 1)`.
#[must_use]
pub fn wilson_interval(successes: u64, trials: u64, confidence: f64) -> ConfidenceInterval {
    assert!(trials > 0, "need at least one trial");
    assert!(successes <= trials, "successes cannot exceed trials");
    let z = normal_quantile_two_sided(confidence);
    let n = trials as f64;
    let p_hat = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p_hat + z2 / (2.0 * n)) / denom;
    let half = z * ((p_hat * (1.0 - p_hat) + z2 / (4.0 * n)) / n).sqrt() / denom;
    // The Wilson interval provably contains p̂ (at p̂ ∈ {0, 1} the matching
    // endpoint equals p̂ exactly), but the floating-point evaluation can land
    // an ulp inside; clamp so the mathematical guarantee survives rounding.
    ConfidenceInterval {
        lower: (center - half).max(0.0).min(p_hat),
        upper: (center + half).min(1.0).max(p_hat),
        confidence,
    }
}

/// Normal-theory confidence interval for the mean of `values`.
///
/// # Panics
///
/// Panics if `values` is empty or the confidence level is outside `(0, 1)`.
#[must_use]
pub fn normal_mean_interval(values: &[f64], confidence: f64) -> ConfidenceInterval {
    assert!(!values.is_empty(), "need at least one value");
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let variance = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n.max(1.0);
    let std_err = (variance / n).sqrt();
    let z = normal_quantile_two_sided(confidence);
    ConfidenceInterval {
        lower: mean - z * std_err,
        upper: mean + z * std_err,
        confidence,
    }
}

/// Percentile bootstrap confidence interval for the mean of `values`.
///
/// Resamples the values with replacement `resamples` times using a
/// deterministic PCG32 stream seeded by `seed`, so results are reproducible.
///
/// # Panics
///
/// Panics if `values` is empty, `resamples == 0`, or the confidence level is
/// outside `(0, 1)`.
#[must_use]
pub fn bootstrap_mean_interval(
    values: &[f64],
    confidence: f64,
    resamples: usize,
    seed: u64,
) -> ConfidenceInterval {
    assert!(!values.is_empty(), "need at least one value");
    assert!(resamples > 0, "need at least one bootstrap resample");
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence must lie in (0, 1), got {confidence}"
    );
    let mut rng = Pcg32::seed_from_u64(seed);
    let n = values.len();
    let mut means = Vec::with_capacity(resamples);
    for _ in 0..resamples {
        let mut total = 0.0f64;
        for _ in 0..n {
            total += values[rng.gen_index(n)];
        }
        means.push(total / n as f64);
    }
    means.sort_by(|a, b| a.partial_cmp(b).expect("means are finite"));
    let alpha = (1.0 - confidence) / 2.0;
    let lo_idx = ((means.len() as f64 - 1.0) * alpha).round() as usize;
    let hi_idx = ((means.len() as f64 - 1.0) * (1.0 - alpha)).round() as usize;
    ConfidenceInterval {
        lower: means[lo_idx],
        upper: means[hi_idx],
        confidence,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_quantiles_match_known_values() {
        assert!((normal_quantile_two_sided(0.95) - 1.959_96).abs() < 1e-3);
        assert!((normal_quantile_two_sided(0.99) - 2.575_83).abs() < 1e-3);
        assert!((normal_quantile_two_sided(0.6827) - 1.0).abs() < 1e-2);
    }

    #[test]
    fn wilson_interval_contains_the_point_estimate() {
        let ci = wilson_interval(63, 100, 0.95);
        assert!(ci.contains(0.63));
        assert!(ci.lower > 0.5 && ci.upper < 0.75, "{ci:?}");
        assert!((ci.confidence - 0.95).abs() < 1e-12);
    }

    #[test]
    fn wilson_interval_is_sane_at_the_extremes() {
        let all = wilson_interval(100, 100, 0.99);
        assert!(all.upper <= 1.0 && all.lower > 0.9);
        let none = wilson_interval(0, 100, 0.99);
        assert!(none.lower >= 0.0 && none.upper < 0.1);
    }

    #[test]
    fn wilson_interval_narrows_with_more_trials() {
        let small = wilson_interval(9, 10, 0.95);
        let large = wilson_interval(900, 1_000, 0.95);
        assert!(large.width() < small.width());
    }

    #[test]
    fn bootstrap_interval_covers_the_sample_mean() {
        let values: Vec<f64> = (0..200).map(|i| f64::from(i % 17)).collect();
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let ci = bootstrap_mean_interval(&values, 0.95, 500, 42);
        assert!(ci.contains(mean), "{ci:?} should contain {mean}");
        assert!(ci.width() < 2.0);
    }

    #[test]
    fn bootstrap_is_reproducible_and_narrows_with_sample_size() {
        let small: Vec<f64> = (0..20).map(f64::from).collect();
        let large: Vec<f64> = (0..2_000).map(|i| f64::from(i % 20)).collect();
        let a = bootstrap_mean_interval(&small, 0.95, 300, 7);
        let b = bootstrap_mean_interval(&small, 0.95, 300, 7);
        assert_eq!(a, b, "same seed gives the same interval");
        let wide = bootstrap_mean_interval(&small, 0.95, 300, 9);
        let narrow = bootstrap_mean_interval(&large, 0.95, 300, 9);
        assert!(narrow.width() < wide.width());
    }

    #[test]
    fn normal_and_bootstrap_intervals_roughly_agree() {
        let values: Vec<f64> = (0..500).map(|i| f64::from(i % 11)).collect();
        let normal = normal_mean_interval(&values, 0.95);
        let boot = bootstrap_mean_interval(&values, 0.95, 1_000, 3);
        assert!(
            (normal.lower - boot.lower).abs() < 0.3,
            "{normal:?} vs {boot:?}"
        );
        assert!((normal.upper - boot.upper).abs() < 0.3);
    }

    #[test]
    fn degenerate_values_give_a_point_interval() {
        let values = vec![5.0; 50];
        let ci = bootstrap_mean_interval(&values, 0.99, 100, 1);
        assert_eq!(ci.lower, 5.0);
        assert_eq!(ci.upper, 5.0);
        let normal = normal_mean_interval(&values, 0.99);
        assert!(normal.width() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "successes cannot exceed trials")]
    fn wilson_rejects_impossible_counts() {
        let _ = wilson_interval(5, 3, 0.95);
    }

    #[test]
    #[should_panic(expected = "need at least one value")]
    fn bootstrap_rejects_empty_input() {
        let _ = bootstrap_mean_interval(&[], 0.95, 10, 1);
    }

    #[test]
    #[should_panic(expected = "confidence must lie in (0, 1)")]
    fn invalid_confidence_panics() {
        let _ = normal_quantile_two_sided(1.0);
    }
}
