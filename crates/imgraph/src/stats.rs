//! Network statistics (Table 3 of the paper).
//!
//! The paper characterises every data set by its vertex/edge counts, maximum
//! out- and in-degree, global clustering coefficient and average distance.
//! [`GraphStats::compute`] reproduces those columns; average distance is
//! estimated by sampling BFS sources (the paper leaves it blank for the larger
//! networks, and an exact all-pairs computation would defeat the purpose of a
//! statistics table).

use imrand::{seq, Pcg32};
use rustc_hash::FxHashSet;
use serde::{Deserialize, Serialize};

use crate::reach::ReachWorkspace;
use crate::{DiGraph, VertexId};

/// Summary statistics of a directed network, mirroring Table 3.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphStats {
    /// Number of vertices `n`.
    pub num_vertices: usize,
    /// Number of directed edges `m`.
    pub num_edges: usize,
    /// Maximum out-degree `∆⁺`.
    pub max_out_degree: usize,
    /// Maximum in-degree `∆⁻`.
    pub max_in_degree: usize,
    /// Mean out-degree `m / n` (0 for an empty graph).
    pub mean_degree: f64,
    /// Global clustering coefficient of the undirected projection:
    /// `3 × (#triangles) / (#connected triplets)`, or `None` when the graph
    /// has no connected triplet.
    pub clustering_coefficient: Option<f64>,
    /// Average finite directed distance, estimated from sampled BFS sources;
    /// `None` if no finite pair was found or estimation was skipped.
    pub average_distance: Option<f64>,
}

/// Controls how expensive the optional statistics are.
#[derive(Debug, Clone, Copy)]
pub struct StatsConfig {
    /// Number of BFS sources sampled for the average-distance estimate.
    /// `0` skips the estimate entirely.
    pub distance_sources: usize,
    /// Skip the clustering coefficient when the graph has more edges than
    /// this (triangle counting is the most expensive part on dense graphs).
    pub max_edges_for_clustering: usize,
    /// Seed for source sampling.
    pub seed: u64,
}

impl Default for StatsConfig {
    fn default() -> Self {
        Self {
            distance_sources: 64,
            max_edges_for_clustering: 50_000_000,
            seed: 0x5747_5354,
        }
    }
}

impl GraphStats {
    /// Compute statistics with the default configuration.
    #[must_use]
    pub fn compute(graph: &DiGraph) -> Self {
        Self::compute_with(graph, StatsConfig::default())
    }

    /// Compute statistics with an explicit configuration.
    #[must_use]
    pub fn compute_with(graph: &DiGraph, config: StatsConfig) -> Self {
        let n = graph.num_vertices();
        let m = graph.num_edges();
        let clustering = if m <= config.max_edges_for_clustering {
            global_clustering_coefficient(graph)
        } else {
            None
        };
        let average_distance = if config.distance_sources > 0 && n > 1 {
            estimate_average_distance(graph, config.distance_sources, config.seed)
        } else {
            None
        };
        Self {
            num_vertices: n,
            num_edges: m,
            max_out_degree: graph.max_out_degree(),
            max_in_degree: graph.max_in_degree(),
            mean_degree: if n == 0 { 0.0 } else { m as f64 / n as f64 },
            clustering_coefficient: clustering,
            average_distance,
        }
    }
}

/// Global clustering coefficient of the *undirected projection* of `graph`:
/// `3 × triangles / connected triplets`. Returns `None` when the graph has no
/// connected triplet (e.g. a star of degree < 2 everywhere).
#[must_use]
pub fn global_clustering_coefficient(graph: &DiGraph) -> Option<f64> {
    let n = graph.num_vertices();
    if n == 0 {
        return None;
    }
    // Undirected neighbour sets (deduplicated, without self-loops).
    let mut neighbors: Vec<Vec<VertexId>> = vec![Vec::new(); n];
    for u in graph.vertices() {
        for &v in graph.out_neighbors(u) {
            if u != v {
                neighbors[u as usize].push(v);
                neighbors[v as usize].push(u);
            }
        }
    }
    for list in &mut neighbors {
        list.sort_unstable();
        list.dedup();
    }

    // Count triangles with the standard ordered-neighbour intersection: a
    // triangle {u, v, w} is counted once for its smallest vertex pair order.
    let mut triangles: u64 = 0;
    let mut triplets: u64 = 0;
    let mut marker: FxHashSet<VertexId> = FxHashSet::default();
    for u in 0..n as u32 {
        let deg = neighbors[u as usize].len() as u64;
        // Connected triplets centred at u: C(deg, 2).
        triplets += deg * deg.saturating_sub(1) / 2;
        marker.clear();
        marker.extend(neighbors[u as usize].iter().copied());
        for &v in &neighbors[u as usize] {
            if v <= u {
                continue;
            }
            for &w in &neighbors[v as usize] {
                if w > v && marker.contains(&w) {
                    triangles += 1;
                }
            }
        }
    }
    if triplets == 0 {
        None
    } else {
        Some(3.0 * triangles as f64 / triplets as f64)
    }
}

/// Estimate the average finite directed distance by running BFS from
/// `sources` randomly chosen vertices. Pairs with no directed path are
/// excluded (the convention used for "avg. dis." in Table 3).
#[must_use]
pub fn estimate_average_distance(graph: &DiGraph, sources: usize, seed: u64) -> Option<f64> {
    let n = graph.num_vertices();
    if n < 2 {
        return None;
    }
    let mut rng = Pcg32::seed_from_u64(seed);
    let sources = sources.min(n);
    let chosen: Vec<VertexId> = if sources == n {
        (0..n as u32).collect()
    } else {
        seq::sample_distinct(n, sources, &mut rng)
    };
    let mut ws = ReachWorkspace::new(n);
    let mut total = 0.0f64;
    let mut pairs = 0u64;
    for &s in &chosen {
        let dist = ws.bfs_distances(graph, s);
        for (v, d) in dist.iter().enumerate() {
            if v as u32 != s {
                if let Some(d) = d {
                    total += f64::from(*d);
                    pairs += 1;
                }
            }
        }
    }
    if pairs == 0 {
        None
    } else {
        Some(total / pairs as f64)
    }
}

/// Degree distribution helper: `result[d]` is the number of vertices with the
/// given out-degree (`direction = Direction::Out`) or in-degree.
#[must_use]
pub fn degree_histogram(graph: &DiGraph, direction: Direction) -> Vec<usize> {
    let max_deg = match direction {
        Direction::Out => graph.max_out_degree(),
        Direction::In => graph.max_in_degree(),
    };
    let mut hist = vec![0usize; max_deg + 1];
    for v in graph.vertices() {
        let d = match direction {
            Direction::Out => graph.out_degree(v),
            Direction::In => graph.in_degree(v),
        };
        hist[d] += 1;
    }
    hist
}

/// Edge direction selector for degree statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Out-degrees.
    Out,
    /// In-degrees.
    In,
}

/// Fit the exponent of a power-law `P(k) ∝ k^(−γ)` to the degree distribution
/// using the discrete maximum-likelihood estimator of Clauset–Shalizi–Newman
/// with `k_min = 1` (approximate form). Returns `None` if fewer than two
/// vertices have positive degree.
#[must_use]
pub fn power_law_exponent_mle(graph: &DiGraph, direction: Direction) -> Option<f64> {
    let mut count = 0usize;
    let mut log_sum = 0.0f64;
    for v in graph.vertices() {
        let d = match direction {
            Direction::Out => graph.out_degree(v),
            Direction::In => graph.in_degree(v),
        };
        if d >= 1 {
            count += 1;
            // k_min = 1; the CSN estimator uses ln(k / (k_min - 1/2)).
            log_sum += (d as f64 / 0.5).ln();
        }
    }
    if count < 2 || log_sum == 0.0 {
        None
    } else {
        Some(1.0 + count as f64 / log_sum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> DiGraph {
        // Undirected triangle (6 arcs).
        DiGraph::from_edges(3, &[(0, 1), (1, 0), (1, 2), (2, 1), (0, 2), (2, 0)])
    }

    #[test]
    fn triangle_clustering_is_one() {
        let c = global_clustering_coefficient(&triangle()).unwrap();
        assert!(
            (c - 1.0).abs() < 1e-12,
            "triangle clustering should be 1, got {c}"
        );
    }

    #[test]
    fn path_clustering_is_zero() {
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let c = global_clustering_coefficient(&g).unwrap();
        assert_eq!(c, 0.0);
    }

    #[test]
    fn star_without_triplet_center_counts() {
        // Undirected star with 3 leaves: center has C(3,2)=3 triplets, no triangle.
        let g = DiGraph::from_edges(4, &[(0, 1), (1, 0), (0, 2), (2, 0), (0, 3), (3, 0)]);
        let c = global_clustering_coefficient(&g).unwrap();
        assert_eq!(c, 0.0);
    }

    #[test]
    fn clustering_none_without_triplets() {
        let g = DiGraph::from_edges(2, &[(0, 1), (1, 0)]);
        assert!(global_clustering_coefficient(&g).is_none());
    }

    #[test]
    fn clustering_ignores_edge_direction_and_multiplicity() {
        // Triangle given with only one arc per undirected edge plus a duplicate.
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0), (0, 1)]);
        let c = global_clustering_coefficient(&g).unwrap();
        assert!((c - 1.0).abs() < 1e-12);
    }

    #[test]
    fn average_distance_on_directed_path() {
        // 0 -> 1 -> 2; finite distances: (0,1)=1, (0,2)=2, (1,2)=1 → mean 4/3.
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let d = estimate_average_distance(&g, 3, 1).unwrap();
        assert!((d - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn average_distance_none_when_no_edges() {
        let g = DiGraph::from_edges(3, &[]);
        assert!(estimate_average_distance(&g, 3, 1).is_none());
    }

    #[test]
    fn stats_compute_full() {
        let stats = GraphStats::compute(&triangle());
        assert_eq!(stats.num_vertices, 3);
        assert_eq!(stats.num_edges, 6);
        assert_eq!(stats.max_out_degree, 2);
        assert_eq!(stats.max_in_degree, 2);
        assert!((stats.mean_degree - 2.0).abs() < 1e-12);
        assert!((stats.clustering_coefficient.unwrap() - 1.0).abs() < 1e-12);
        assert!((stats.average_distance.unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stats_respect_config_toggles() {
        let g = triangle();
        let stats = GraphStats::compute_with(
            &g,
            StatsConfig {
                distance_sources: 0,
                max_edges_for_clustering: 0,
                seed: 1,
            },
        );
        assert!(stats.average_distance.is_none());
        assert!(stats.clustering_coefficient.is_none());
    }

    #[test]
    fn degree_histogram_counts() {
        let g = DiGraph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2)]);
        let out = degree_histogram(&g, Direction::Out);
        assert_eq!(out, vec![2, 1, 0, 1]); // two sinks, one deg-1, one deg-3
        let inn = degree_histogram(&g, Direction::In);
        assert_eq!(inn, vec![1, 2, 1]);
    }

    #[test]
    fn power_law_exponent_is_plausible_for_star() {
        // A hub-and-spoke graph has a heavy-tailed in-degree distribution; the
        // MLE should produce a finite exponent > 1 over the 99 leaves.
        let mut edges = Vec::new();
        for i in 1..100u32 {
            edges.push((0u32, i));
        }
        let g = DiGraph::from_edges(100, &edges);
        let gamma = power_law_exponent_mle(&g, Direction::In).unwrap();
        assert!(gamma > 1.0 && gamma.is_finite());
        // Out-degrees: only the hub has positive degree, so no fit is possible.
        assert!(power_law_exponent_mle(&g, Direction::Out).is_none());
    }

    #[test]
    fn power_law_exponent_none_for_empty() {
        let g = DiGraph::from_edges(3, &[]);
        assert!(power_law_exponent_mle(&g, Direction::Out).is_none());
    }
}
