//! Comparable number and size ratios (Section 5.2.3).
//!
//! The paper compares two algorithms by asking, for each sample number `s₁` of
//! algorithm 1, what is the *least* sample number `s₂` of algorithm 2 whose
//! influence distribution is at least as good (the paper shows the mean is the
//! dominant statistic, so "better" means "has a mean at least as large").
//! `s₂ / s₁` is the *comparable number ratio*; weighting each side by its
//! per-sample size gives the *comparable size ratio*.

use serde::{Deserialize, Serialize};

/// The mean-influence curve of one algorithm on one instance: mean influence
/// (and per-run sample size) for each evaluated sample number.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct SampleCurve {
    points: Vec<CurvePoint>,
}

/// One point of a [`SampleCurve`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CurvePoint {
    /// The sample number (β, τ or θ).
    pub sample_number: u64,
    /// Mean influence spread over the trials at this sample number.
    pub mean_influence: f64,
    /// Total sample size (stored vertices + edges) at this sample number.
    pub sample_size: f64,
}

impl SampleCurve {
    /// An empty curve.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a point; points may be added in any order.
    pub fn push(&mut self, sample_number: u64, mean_influence: f64, sample_size: f64) {
        self.points.push(CurvePoint {
            sample_number,
            mean_influence,
            sample_size,
        });
        self.points.sort_by_key(|p| p.sample_number);
    }

    /// Build a curve from `(sample number, mean influence)` pairs with zero
    /// sample sizes (useful when only the number ratio is needed).
    #[must_use]
    pub fn from_means(pairs: &[(u64, f64)]) -> Self {
        let mut curve = Self::new();
        for &(s, m) in pairs {
            curve.push(s, m, 0.0);
        }
        curve
    }

    /// The points in increasing sample-number order.
    #[must_use]
    pub fn points(&self) -> &[CurvePoint] {
        &self.points
    }

    /// Number of points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the curve has no points.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Mean influence at exactly this sample number, if evaluated.
    #[must_use]
    pub fn mean_at(&self, sample_number: u64) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.sample_number == sample_number)
            .map(|p| p.mean_influence)
    }

    /// The least sample number whose mean influence reaches `target`, together
    /// with that point; `None` if the curve never reaches the target.
    #[must_use]
    pub fn least_sample_reaching(&self, target: f64) -> Option<&CurvePoint> {
        self.points.iter().find(|p| p.mean_influence >= target)
    }
}

/// The comparable ratios of `candidate` relative to `reference` at one
/// reference sample number.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComparablePoint {
    /// The reference algorithm's sample number `s₁`.
    pub reference_sample_number: u64,
    /// The least candidate sample number `s₂` whose mean matches or exceeds
    /// the reference mean at `s₁`.
    pub candidate_sample_number: u64,
    /// `s₂ / s₁`.
    pub number_ratio: f64,
    /// `(candidate sample size at s₂) / (reference sample size at s₁)`, or
    /// `None` when either size is zero (e.g. Oneshot stores nothing).
    pub size_ratio: Option<f64>,
}

/// For every point of `reference`, find the least sample number of `candidate`
/// that is *comparable* (mean influence at least as large), as defined in
/// Section 5.2.3. Reference points the candidate never matches are omitted
/// (the paper leaves those cells blank).
#[must_use]
pub fn comparable_number_ratio(
    reference: &SampleCurve,
    candidate: &SampleCurve,
) -> Vec<ComparablePoint> {
    let mut result = Vec::new();
    for ref_point in reference.points() {
        if let Some(cand_point) = candidate.least_sample_reaching(ref_point.mean_influence) {
            let number_ratio = cand_point.sample_number as f64 / ref_point.sample_number as f64;
            let size_ratio = if ref_point.sample_size > 0.0 && cand_point.sample_size > 0.0 {
                Some(cand_point.sample_size / ref_point.sample_size)
            } else {
                None
            };
            result.push(ComparablePoint {
                reference_sample_number: ref_point.sample_number,
                candidate_sample_number: cand_point.sample_number,
                number_ratio,
                size_ratio,
            });
        }
    }
    result
}

/// The comparable *size* ratios only (Figure 8 / Table 7 right half);
/// reference points with zero sample size are skipped.
#[must_use]
pub fn comparable_size_ratio(reference: &SampleCurve, candidate: &SampleCurve) -> Vec<f64> {
    comparable_number_ratio(reference, candidate)
        .into_iter()
        .filter_map(|p| p.size_ratio)
        .collect()
}

/// The median of a list of ratios — what Tables 6 and 7 report per instance.
/// Returns `None` for an empty list.
#[must_use]
pub fn median_ratio(ratios: &[f64]) -> Option<f64> {
    if ratios.is_empty() {
        return None;
    }
    let mut sorted = ratios.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("ratios must not be NaN"));
    let n = sorted.len();
    Some(if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference curve: mean doubles in quality every 4× samples.
    fn reference() -> SampleCurve {
        SampleCurve::from_means(&[(1, 10.0), (4, 20.0), (16, 30.0), (64, 40.0)])
    }

    /// Candidate needs 2× the samples of the reference for the same mean.
    fn slower_candidate() -> SampleCurve {
        SampleCurve::from_means(&[(1, 5.0), (2, 10.0), (8, 20.0), (32, 30.0), (128, 40.0)])
    }

    #[test]
    fn curve_accessors() {
        let c = reference();
        assert_eq!(c.len(), 4);
        assert!(!c.is_empty());
        assert_eq!(c.mean_at(4), Some(20.0));
        assert_eq!(c.mean_at(5), None);
        assert_eq!(c.least_sample_reaching(25.0).unwrap().sample_number, 16);
        assert!(c.least_sample_reaching(99.0).is_none());
        assert!(SampleCurve::new().is_empty());
    }

    #[test]
    fn points_are_sorted_regardless_of_insertion_order() {
        let mut c = SampleCurve::new();
        c.push(16, 3.0, 0.0);
        c.push(1, 1.0, 0.0);
        c.push(4, 2.0, 0.0);
        let numbers: Vec<u64> = c.points().iter().map(|p| p.sample_number).collect();
        assert_eq!(numbers, vec![1, 4, 16]);
    }

    #[test]
    fn number_ratio_of_two_x_slower_candidate() {
        let ratios = comparable_number_ratio(&reference(), &slower_candidate());
        assert_eq!(ratios.len(), 4);
        for p in &ratios {
            assert!(
                (p.number_ratio - 2.0).abs() < 1e-12,
                "ratio at s1={} is {}",
                p.reference_sample_number,
                p.number_ratio
            );
        }
    }

    #[test]
    fn unreachable_targets_are_omitted() {
        let reference = SampleCurve::from_means(&[(1, 10.0), (4, 1_000.0)]);
        let candidate = SampleCurve::from_means(&[(1, 10.0), (1024, 20.0)]);
        let ratios = comparable_number_ratio(&reference, &candidate);
        assert_eq!(
            ratios.len(),
            1,
            "only the reachable reference point should appear"
        );
        assert_eq!(ratios[0].reference_sample_number, 1);
    }

    #[test]
    fn size_ratio_uses_sample_sizes() {
        // Snapshot-like reference (large per-sample size) vs RIS-like candidate
        // (small per-sample size): number ratio is large but size ratio small,
        // the Table 7 phenomenon.
        let mut snapshot = SampleCurve::new();
        snapshot.push(1, 10.0, 1_000.0);
        snapshot.push(4, 20.0, 4_000.0);
        let mut ris = SampleCurve::new();
        ris.push(64, 10.0, 128.0);
        ris.push(256, 20.0, 512.0);
        let points = comparable_number_ratio(&snapshot, &ris);
        assert_eq!(points.len(), 2);
        assert!((points[0].number_ratio - 64.0).abs() < 1e-12);
        assert!((points[0].size_ratio.unwrap() - 0.128).abs() < 1e-12);
        let sizes = comparable_size_ratio(&snapshot, &ris);
        assert_eq!(sizes.len(), 2);
        assert!(
            sizes.iter().all(|&r| r < 1.0),
            "RIS should be more space-saving"
        );
    }

    #[test]
    fn size_ratio_is_none_when_reference_stores_nothing() {
        // Oneshot stores nothing, so comparing against it yields no size ratio.
        let oneshot = SampleCurve::from_means(&[(8, 10.0)]);
        let mut snapshot = SampleCurve::new();
        snapshot.push(1, 10.0, 500.0);
        let points = comparable_number_ratio(&oneshot, &snapshot);
        assert_eq!(points.len(), 1);
        assert!(points[0].size_ratio.is_none());
        assert!(comparable_size_ratio(&oneshot, &snapshot).is_empty());
    }

    #[test]
    fn identical_curves_have_ratio_one() {
        let ratios = comparable_number_ratio(&reference(), &reference());
        assert!(ratios.iter().all(|p| (p.number_ratio - 1.0).abs() < 1e-12));
    }

    #[test]
    fn median_ratio_handles_odd_even_empty() {
        assert_eq!(median_ratio(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median_ratio(&[4.0, 1.0, 2.0, 3.0]), Some(2.5));
        assert_eq!(median_ratio(&[]), None);
    }
}
