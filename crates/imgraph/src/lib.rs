//! Directed-graph and influence-graph substrate for the influence-maximization
//! study.
//!
//! The paper works with two kinds of graph (Section 2.1):
//!
//! * a *deterministic* directed graph `G = (V, E)`, represented here by
//!   [`DiGraph`] — a compressed sparse row (CSR) structure over `u32` vertex
//!   ids with both forward and reverse adjacency;
//! * an *influence graph* `G = (V, E, p)` attaching an influence probability
//!   `p(e) ∈ (0, 1]` to each edge, represented by [`InfluenceGraph`].
//!
//! On top of the storage types this crate provides the graph operations the
//! three algorithmic approaches need:
//!
//! * [`reach`] — breadth-first reachability with reusable workspaces; computes
//!   `r_G(S)`, the number of vertices reachable from a seed set, which is what
//!   Snapshot's estimator evaluates (Algorithm 3.3);
//! * [`live_edge`] — sampling of live-edge graphs ("random graphs" `G ∼ 𝒢` in
//!   the paper's random-graph interpretation of the IC model);
//! * [`components`] — weakly/strongly connected components, used to verify the
//!   giant-component behaviour discussed in Section 5.3;
//! * [`stats`] — the network statistics of Table 3 (degrees, clustering
//!   coefficient, average distance);
//! * [`io`] — plain-text edge-list parsing and writing;
//! * [`binio`] — the checksummed binary artifact format (magic/version header,
//!   tagged length-prefixed sections) shared by every persisted index in the
//!   workspace, with the [`InfluenceGraph`] codec;
//! * [`delta`] — typed graph mutations ([`GraphDelta`]), the mutable
//!   edge-list representation ([`MutableInfluenceGraph`]) they apply to
//!   (singly or in atomic batches), the persisted mutation log
//!   ([`DeltaLog`]) behind the evolving-graph subsystem (`imdyn`), and the
//!   epoch-stamped compaction snapshot ([`GraphSnapshot`]) the log folds
//!   into.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod binio;
pub mod builder;
pub mod coarsen;
pub mod components;
mod csr;
pub mod delta;
mod influence;
pub mod io;
pub mod live_edge;
pub mod reach;
pub mod stats;

pub use builder::GraphBuilder;
pub use csr::DiGraph;
pub use delta::{
    BatchEffect, BatchError, DeltaEffect, DeltaError, DeltaLog, GraphDelta, GraphSnapshot,
    MutableInfluenceGraph,
};
pub use influence::{is_valid_probability, InfluenceGraph};

/// Vertex identifier. Graphs in this study have at most a few million
/// vertices, so 32 bits suffice and halve the memory traffic of adjacency
/// arrays compared with `usize`.
pub type VertexId = u32;

/// A directed edge `(source, target)`.
pub type Edge = (VertexId, VertexId);
