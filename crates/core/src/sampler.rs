//! The shared batch-sampling execution layer.
//!
//! All three approaches spend their time drawing independent samples — forward
//! Monte-Carlo simulations (Oneshot), live-edge graphs (Snapshot) and
//! reverse-reachable sets (RIS) — so the workspace funnels every such loop
//! through this module. Two sampling disciplines are offered:
//!
//! * **Stream** ([`fold_stream`]): all samples are drawn in order from one
//!   shared generator, exactly as the paper's reference implementation does
//!   (Section 4.1 seeds one MT19937 per run). This is what the classic
//!   `new(graph, s, rng)` estimator constructors use; it is inherently
//!   sequential.
//! * **Batched** ([`run_batches`] / [`sample_batched`]): the sample budget is
//!   split into fixed batches and every batch draws from its *own* PCG32
//!   stream, seeded by running the base seed and the batch index through
//!   SplitMix64 ([`imrand::derive_seed`]). Because each batch is
//!   self-contained and results are merged in batch order, the output is a
//!   pure function of `(budget, base_seed)` — the sequential and the parallel
//!   [`Backend`] produce byte-identical samples, so parallelism never changes
//!   a seed set.
//!
//! The parallel backend is feature-gated (`parallel`) and fans batches out to
//! a crew of workers via `rayon::scope`; without the feature,
//! [`Backend::Parallel`] silently degrades to the sequential executor, which
//! keeps every caller correct on single-threaded builds.

use imrand::{derive_seed, Pcg32, Rng32};

/// How many samples to draw, and how they are grouped into batches.
///
/// The grouping is part of the deterministic contract: two runs with the same
/// budget and base seed produce identical samples on every backend. The
/// default grouping is therefore derived from `total` alone, never from the
/// machine's thread count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleBudget {
    total: u64,
    batch_size: u64,
}

impl SampleBudget {
    /// Largest default batch size; keeps per-batch PRNG setup amortised while
    /// leaving enough batches for load balancing.
    const MAX_BATCH: u64 = 8_192;

    /// A budget of `total` samples with the default batch grouping
    /// (`total / 128`, clamped to `1..=8192`).
    #[must_use]
    pub fn new(total: u64) -> Self {
        Self::with_batch_size(total, (total / 128).clamp(1, Self::MAX_BATCH))
    }

    /// A budget with an explicit batch size (`>= 1`).
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    #[must_use]
    pub fn with_batch_size(total: u64, batch_size: u64) -> Self {
        assert!(batch_size >= 1, "batch size must be positive");
        Self { total, batch_size }
    }

    /// Total number of samples.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Size of every batch except possibly the last.
    #[must_use]
    pub fn batch_size(&self) -> u64 {
        self.batch_size
    }

    /// Number of batches the budget splits into.
    #[must_use]
    pub fn num_batches(&self) -> u64 {
        self.total.div_ceil(self.batch_size)
    }

    /// The `index`-th batch.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.num_batches()` (in release builds too — a
    /// wrapped subtraction here would silently yield a near-`u64::MAX`
    /// batch length).
    #[must_use]
    pub fn batch(&self, index: u64) -> Batch {
        let start = index * self.batch_size;
        assert!(
            start < self.total,
            "batch index {index} out of range for a budget of {} batches",
            self.num_batches()
        );
        Batch {
            index,
            start,
            len: self.batch_size.min(self.total - start),
        }
    }
}

/// One contiguous slice of a [`SampleBudget`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Batch {
    /// Position of the batch in the budget (also its PRNG stream index).
    pub index: u64,
    /// Global index of the batch's first sample.
    pub start: u64,
    /// Number of samples in the batch.
    pub len: u64,
}

/// Which executor drives the batches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// Run batches in index order on the calling thread.
    #[default]
    Sequential,
    /// Fan batches out to worker threads (`threads == 0` means one worker per
    /// available core). Requires the `parallel` feature; without it this
    /// degrades to the sequential executor.
    Parallel {
        /// Worker count, `0` = auto.
        threads: usize,
    },
}

impl Backend {
    /// The auto-sized parallel backend.
    #[must_use]
    pub fn parallel() -> Self {
        Backend::Parallel { threads: 0 }
    }

    /// The number of worker threads this backend will actually use.
    #[must_use]
    pub fn effective_threads(&self) -> usize {
        match self {
            Backend::Sequential => 1,
            #[cfg(feature = "parallel")]
            Backend::Parallel { threads: 0 } => rayon::current_num_threads(),
            #[cfg(not(feature = "parallel"))]
            Backend::Parallel { threads: 0 } => 1,
            Backend::Parallel { threads } => (*threads).max(1),
        }
    }
}

/// The generator type batched sampling hands to each batch: one small-state
/// PCG32 per batch, per [`imrand`]'s guidance for worker streams.
pub type BatchRng = Pcg32;

/// The deterministic per-batch generator: `base_seed` and the batch index are
/// mixed through SplitMix64 so nearby batches get unrelated streams.
#[must_use]
pub fn batch_rng(base_seed: u64, batch_index: u64) -> BatchRng {
    Pcg32::seed_from_u64(derive_seed(base_seed, batch_index))
}

/// Stream discipline: fold `total` samples drawn in order from `rng`.
///
/// This is the paper-faithful sequential path used by the classic estimator
/// constructors; it exists here so every sampling loop in the workspace goes
/// through one module.
pub fn fold_stream<R: Rng32, Acc, F>(total: u64, rng: &mut R, init: Acc, mut f: F) -> Acc
where
    F: FnMut(Acc, u64, &mut R) -> Acc,
{
    let mut acc = init;
    for i in 0..total {
        acc = f(acc, i, rng);
    }
    acc
}

/// Batched discipline: run every batch of `budget` and return the per-batch
/// outputs **in batch order**, whatever the backend.
///
/// `make_scratch` builds one scratch value per worker (per call on the
/// sequential backend); scratch exists only to avoid reallocation and must
/// not influence the sampled values. `run` receives the batch descriptor and
/// the batch's own deterministic generator.
pub fn run_batches<B, S, FS, F>(
    budget: &SampleBudget,
    base_seed: u64,
    backend: Backend,
    make_scratch: FS,
    run: F,
) -> Vec<B>
where
    B: Send,
    FS: Fn() -> S + Sync,
    F: Fn(&mut S, Batch, &mut BatchRng) -> B + Sync,
{
    if budget.total() == 0 {
        return Vec::new();
    }
    let workers = backend
        .effective_threads()
        .min(budget.num_batches() as usize);
    #[cfg(feature = "parallel")]
    if workers > 1 {
        return run_batches_parallel(budget, base_seed, workers, &make_scratch, &run);
    }
    let _ = workers;
    let mut scratch = make_scratch();
    run_batches_sequential(budget, base_seed, &mut scratch, &run)
}

/// [`run_batches`] with a caller-owned scratch value: when the backend
/// resolves to a single worker the batches run on `scratch` directly, so a
/// long-lived caller (e.g. Oneshot's per-Estimate simulation loop) avoids
/// rebuilding O(n) scratch on every invocation. Parallel execution still
/// builds one scratch per worker via `make_scratch`. Output is identical to
/// [`run_batches`] either way — scratch never influences sampled values.
pub fn run_batches_reusing<B, S, FS, F>(
    budget: &SampleBudget,
    base_seed: u64,
    backend: Backend,
    scratch: &mut S,
    make_scratch: FS,
    run: F,
) -> Vec<B>
where
    B: Send,
    FS: Fn() -> S + Sync,
    F: Fn(&mut S, Batch, &mut BatchRng) -> B + Sync,
{
    if budget.total() == 0 {
        return Vec::new();
    }
    let workers = backend
        .effective_threads()
        .min(budget.num_batches() as usize);
    #[cfg(feature = "parallel")]
    if workers > 1 {
        return run_batches_parallel(budget, base_seed, workers, &make_scratch, &run);
    }
    let _ = (workers, &make_scratch);
    run_batches_sequential(budget, base_seed, scratch, &run)
}

fn run_batches_sequential<B, S, F>(
    budget: &SampleBudget,
    base_seed: u64,
    scratch: &mut S,
    run: &F,
) -> Vec<B>
where
    F: Fn(&mut S, Batch, &mut BatchRng) -> B,
{
    let mut out = Vec::with_capacity(budget.num_batches() as usize);
    for index in 0..budget.num_batches() {
        let mut rng = batch_rng(base_seed, index);
        out.push(run(scratch, budget.batch(index), &mut rng));
    }
    out
}

#[cfg(feature = "parallel")]
fn run_batches_parallel<B, S, FS, F>(
    budget: &SampleBudget,
    base_seed: u64,
    workers: usize,
    make_scratch: &FS,
    run: &F,
) -> Vec<B>
where
    B: Send,
    FS: Fn() -> S + Sync,
    F: Fn(&mut S, Batch, &mut BatchRng) -> B + Sync,
{
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Mutex;

    let num_batches = budget.num_batches();
    let next = AtomicU64::new(0);
    let collected: Mutex<Vec<(u64, B)>> = Mutex::new(Vec::with_capacity(num_batches as usize));
    rayon::scope(|s| {
        for _ in 0..workers {
            s.spawn(|_| {
                let mut scratch = make_scratch();
                let mut local: Vec<(u64, B)> = Vec::new();
                loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    if index >= num_batches {
                        break;
                    }
                    let mut rng = batch_rng(base_seed, index);
                    local.push((index, run(&mut scratch, budget.batch(index), &mut rng)));
                }
                collected
                    .lock()
                    .expect("batch results poisoned")
                    .extend(local);
            });
        }
    });
    let mut tagged = collected.into_inner().expect("batch results poisoned");
    debug_assert_eq!(tagged.len() as u64, num_batches);
    tagged.sort_unstable_by_key(|(index, _)| *index);
    tagged.into_iter().map(|(_, b)| b).collect()
}

/// Batched discipline, one output per *sample*: `sample_one` is called with
/// the sample's global index and its batch's generator; outputs come back in
/// global sample order on every backend.
pub fn sample_batched<T, S, FS, F>(
    budget: &SampleBudget,
    base_seed: u64,
    backend: Backend,
    make_scratch: FS,
    sample_one: F,
) -> Vec<T>
where
    T: Send,
    FS: Fn() -> S + Sync,
    F: Fn(&mut S, u64, &mut BatchRng) -> T + Sync,
{
    run_batches(
        budget,
        base_seed,
        backend,
        make_scratch,
        |scratch, batch, rng| {
            (0..batch.len)
                .map(|i| sample_one(scratch, batch.start + i, rng))
                .collect::<Vec<T>>()
        },
    )
    .into_iter()
    .flatten()
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_covers_every_sample_exactly_once() {
        for total in [1u64, 7, 128, 129, 8_191, 100_000] {
            let budget = SampleBudget::new(total);
            let mut covered = 0u64;
            for b in 0..budget.num_batches() {
                let batch = budget.batch(b);
                assert_eq!(batch.start, covered);
                covered += batch.len;
            }
            assert_eq!(covered, total);
        }
    }

    #[test]
    fn default_batching_depends_only_on_total() {
        let a = SampleBudget::new(50_000);
        let b = SampleBudget::new(50_000);
        assert_eq!(a, b);
    }

    #[test]
    fn fold_stream_visits_in_order() {
        let mut rng = Pcg32::seed_from_u64(1);
        let seen = fold_stream(5, &mut rng, Vec::new(), |mut acc, i, _| {
            acc.push(i);
            acc
        });
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn backends_produce_identical_outputs() {
        let budget = SampleBudget::with_batch_size(1_000, 13);
        let draw = |_: &mut (), i: u64, rng: &mut BatchRng| (i, rng.next_u32());
        let seq = sample_batched(&budget, 42, Backend::Sequential, || (), draw);
        let par = sample_batched(&budget, 42, Backend::Parallel { threads: 4 }, || (), draw);
        assert_eq!(seq, par);
        let par_auto = sample_batched(&budget, 42, Backend::parallel(), || (), draw);
        assert_eq!(seq, par_auto);
    }

    #[test]
    fn different_seeds_give_different_samples() {
        let budget = SampleBudget::new(64);
        let draw = |_: &mut (), _: u64, rng: &mut BatchRng| rng.next_u32();
        let a = sample_batched(&budget, 1, Backend::Sequential, || (), draw);
        let b = sample_batched(&budget, 2, Backend::Sequential, || (), draw);
        assert_ne!(a, b);
    }

    #[test]
    fn run_batches_reports_batches_in_order() {
        let budget = SampleBudget::with_batch_size(100, 9);
        let indexes = run_batches(
            &budget,
            7,
            Backend::Parallel { threads: 3 },
            || (),
            |_, b, _| b.index,
        );
        let expected: Vec<u64> = (0..budget.num_batches()).collect();
        assert_eq!(indexes, expected);
    }

    #[test]
    fn empty_budget_runs_nothing() {
        let budget = SampleBudget::new(0);
        let out = sample_batched(&budget, 3, Backend::Sequential, || (), |_, i, _| i);
        assert!(out.is_empty());
    }

    #[test]
    fn effective_threads_are_sane() {
        assert_eq!(Backend::Sequential.effective_threads(), 1);
        assert_eq!(Backend::Parallel { threads: 3 }.effective_threads(), 3);
        assert!(Backend::parallel().effective_threads() >= 1);
    }
}
