//! Divergences between empirical distributions.
//!
//! Section 5.1 tracks a *single* distribution's diversity via its Shannon
//! entropy. When comparing two algorithms (or the same algorithm at two sample
//! numbers), one also wants to know how far apart their seed-set distributions
//! are — e.g. to confirm that Oneshot, Snapshot and RIS converge to the *same*
//! degenerate distribution, not merely to degenerate ones. This module
//! provides the standard distances on discrete distributions with finite
//! support:
//!
//! * [`total_variation_distance`] — `½·Σ |p(x) − q(x)|`, in `[0, 1]`;
//! * [`jensen_shannon_divergence`] — the symmetrised, smoothed KL divergence,
//!   in `[0, 1]` when using base-2 logarithms;
//! * [`overlap_coefficient`] — `Σ min(p(x), q(x))`, the shared probability
//!   mass;
//! * [`support_jaccard`] — the Jaccard index of the two supports, a cruder
//!   but easily interpretable "do they even return the same seed sets" score.

use std::collections::HashSet;
use std::hash::Hash;

use crate::distribution::EmpiricalDistribution;

/// Iterate over the union support of two distributions.
fn union_support<'a, T: Eq + Hash>(
    p: &'a EmpiricalDistribution<T>,
    q: &'a EmpiricalDistribution<T>,
) -> Vec<&'a T> {
    let mut seen: HashSet<&T> = HashSet::new();
    let mut support = Vec::new();
    for (x, _) in p.iter().chain(q.iter()) {
        if seen.insert(x) {
            support.push(x);
        }
    }
    support
}

/// Total variation distance `½·Σ_x |p(x) − q(x)|` between two empirical
/// distributions. Ranges from 0 (identical) to 1 (disjoint supports).
#[must_use]
pub fn total_variation_distance<T: Eq + Hash>(
    p: &EmpiricalDistribution<T>,
    q: &EmpiricalDistribution<T>,
) -> f64 {
    0.5 * union_support(p, q)
        .into_iter()
        .map(|x| (p.probability(x) - q.probability(x)).abs())
        .sum::<f64>()
}

/// Jensen–Shannon divergence (base-2 logarithm), in `[0, 1]`.
///
/// `JS(p, q) = ½·KL(p ‖ m) + ½·KL(q ‖ m)` with `m = ½(p + q)`; unlike raw KL
/// it is symmetric and finite even when the supports differ.
#[must_use]
pub fn jensen_shannon_divergence<T: Eq + Hash>(
    p: &EmpiricalDistribution<T>,
    q: &EmpiricalDistribution<T>,
) -> f64 {
    let mut js = 0.0f64;
    for x in union_support(p, q) {
        let px = p.probability(x);
        let qx = q.probability(x);
        let mx = 0.5 * (px + qx);
        if px > 0.0 {
            js += 0.5 * px * (px / mx).log2();
        }
        if qx > 0.0 {
            js += 0.5 * qx * (qx / mx).log2();
        }
    }
    js.clamp(0.0, 1.0)
}

/// Overlap coefficient `Σ_x min(p(x), q(x))`: the probability mass the two
/// distributions agree on. Equals `1 − TV(p, q)`.
#[must_use]
pub fn overlap_coefficient<T: Eq + Hash>(
    p: &EmpiricalDistribution<T>,
    q: &EmpiricalDistribution<T>,
) -> f64 {
    union_support(p, q)
        .into_iter()
        .map(|x| p.probability(x).min(q.probability(x)))
        .sum()
}

/// Jaccard index of the two supports: `|supp(p) ∩ supp(q)| / |supp(p) ∪ supp(q)|`.
///
/// Returns 1 for two empty distributions (they trivially agree).
#[must_use]
pub fn support_jaccard<T: Eq + Hash>(
    p: &EmpiricalDistribution<T>,
    q: &EmpiricalDistribution<T>,
) -> f64 {
    let p_support: HashSet<&T> = p.iter().map(|(x, _)| x).collect();
    let q_support: HashSet<&T> = q.iter().map(|(x, _)| x).collect();
    let union = p_support.union(&q_support).count();
    if union == 0 {
        return 1.0;
    }
    let intersection = p_support.intersection(&q_support).count();
    intersection as f64 / union as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dist(outcomes: &[(u32, u64)]) -> EmpiricalDistribution<u32> {
        let mut d = EmpiricalDistribution::new();
        for &(x, c) in outcomes {
            d.record_many(x, c);
        }
        d
    }

    #[test]
    fn identical_distributions_have_zero_distance() {
        let p = dist(&[(1, 10), (2, 30), (3, 60)]);
        let q = dist(&[(1, 1), (2, 3), (3, 6)]);
        assert!(total_variation_distance(&p, &q) < 1e-12);
        assert!(jensen_shannon_divergence(&p, &q) < 1e-12);
        assert!((overlap_coefficient(&p, &q) - 1.0).abs() < 1e-12);
        assert!((support_jaccard(&p, &q) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_supports_are_maximally_far() {
        let p = dist(&[(1, 5), (2, 5)]);
        let q = dist(&[(3, 5), (4, 5)]);
        assert!((total_variation_distance(&p, &q) - 1.0).abs() < 1e-12);
        assert!((jensen_shannon_divergence(&p, &q) - 1.0).abs() < 1e-9);
        assert!(overlap_coefficient(&p, &q) < 1e-12);
        assert_eq!(support_jaccard(&p, &q), 0.0);
    }

    #[test]
    fn tv_and_overlap_are_complementary() {
        let p = dist(&[(1, 7), (2, 3)]);
        let q = dist(&[(1, 2), (2, 6), (3, 2)]);
        let tv = total_variation_distance(&p, &q);
        let ov = overlap_coefficient(&p, &q);
        assert!(
            (tv + ov - 1.0).abs() < 1e-12,
            "TV {tv} + overlap {ov} should be 1"
        );
        assert!(tv > 0.0 && tv < 1.0);
    }

    #[test]
    fn divergences_are_symmetric() {
        let p = dist(&[(1, 8), (2, 2)]);
        let q = dist(&[(1, 3), (3, 7)]);
        assert!(
            (total_variation_distance(&p, &q) - total_variation_distance(&q, &p)).abs() < 1e-12
        );
        assert!(
            (jensen_shannon_divergence(&p, &q) - jensen_shannon_divergence(&q, &p)).abs() < 1e-12
        );
        assert!((support_jaccard(&p, &q) - support_jaccard(&q, &p)).abs() < 1e-12);
    }

    #[test]
    fn half_shifted_distribution_has_intermediate_distance() {
        // p is uniform on {1, 2}; q is uniform on {2, 3}: TV = 0.5.
        let p = dist(&[(1, 5), (2, 5)]);
        let q = dist(&[(2, 5), (3, 5)]);
        assert!((total_variation_distance(&p, &q) - 0.5).abs() < 1e-12);
        let js = jensen_shannon_divergence(&p, &q);
        assert!(js > 0.0 && js < 1.0);
        assert!((support_jaccard(&p, &q) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_distributions() {
        let empty: EmpiricalDistribution<u32> = EmpiricalDistribution::new();
        let p = dist(&[(1, 3)]);
        assert_eq!(support_jaccard(&empty, &empty), 1.0);
        assert_eq!(support_jaccard(&empty, &p), 0.0);
        assert!((total_variation_distance(&empty, &p) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn works_on_seed_set_like_outcomes() {
        let mut p: EmpiricalDistribution<Vec<u32>> = EmpiricalDistribution::new();
        let mut q: EmpiricalDistribution<Vec<u32>> = EmpiricalDistribution::new();
        p.record(vec![0, 3]);
        p.record(vec![0, 3]);
        p.record(vec![1, 3]);
        q.record(vec![0, 3]);
        q.record(vec![1, 3]);
        let tv = total_variation_distance(&p, &q);
        assert!(tv > 0.0 && tv < 0.5);
    }
}
