//! Ablation: sample-number determination (Section 7's open direction).
//!
//! Runs the TIM⁺/IMM determination pipeline on two instances, prints the
//! worst-case `θ`, the adapted `β`/`τ` and the empirical least sample numbers
//! from the Table 5 driver, and times the determination itself (the price a
//! practitioner pays before the first seed is selected).

use criterion::{criterion_group, criterion_main, Criterion};
use im_core::determination::{determine_all_sample_numbers, tim_kpt_estimate, AccuracyTarget};
use imexp::experiments::least_samples::{least_sample_numbers, NearOptimalCriterion};
use imexp::ExperimentScale;
use imnet::ProbabilityModel;
use imrand::default_rng;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let target = AccuracyTarget {
        epsilon: 0.1,
        delta: 0.05,
        k: 1,
    };

    println!("\n--- Ablation: worst-case determination vs empirical least sample number ---");
    for (label, instance) in [
        ("Karate uc0.1", im_bench::karate(ProbabilityModel::uc01())),
        (
            "BA_s iwc",
            im_bench::ba_sparse(ProbabilityModel::InDegreeWeighted),
        ),
    ] {
        let determined =
            determine_all_sample_numbers(&instance.graph, &target, &mut default_rng(3));
        let criterion = NearOptimalCriterion {
            quality_fraction: 0.95,
            confidence: 0.9,
        };
        let empirical = least_sample_numbers(&instance, 1, ExperimentScale::Quick, 30, criterion);
        println!(
            "{label:<14} determined: θ = {:>9.0}, β = {:>9.0}, τ = {:>9.0} | empirical: β* = {}, τ* = {}, θ* = {}",
            determined.theta,
            determined.beta,
            determined.tau,
            fmt(empirical[0].least_sample_number),
            fmt(empirical[1].least_sample_number),
            fmt(empirical[2].least_sample_number),
        );
    }

    let karate = im_bench::karate(ProbabilityModel::uc01());
    let mut group = c.benchmark_group("ablation_determination");
    group.sample_size(10);
    group.bench_function("kpt_estimate_karate", |b| {
        b.iter(|| {
            black_box(tim_kpt_estimate(
                &karate.graph,
                &target,
                &mut default_rng(5),
            ))
        })
    });
    group.bench_function("full_determination_karate", |b| {
        b.iter(|| {
            black_box(determine_all_sample_numbers(
                &karate.graph,
                &target,
                &mut default_rng(5),
            ))
        })
    });
    group.finish();
}

fn fmt(x: Option<u64>) -> String {
    x.map_or_else(|| "-".to_string(), |v| v.to_string())
}

criterion_group!(benches, bench);
criterion_main!(benches);
