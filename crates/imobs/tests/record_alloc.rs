//! Proof that the metrics record path performs zero allocation.
//!
//! A counting global allocator records every `alloc` call; once the metric
//! handles exist, a burst of counter increments, gauge updates, histogram
//! records and span stage events must leave the counter untouched. This is
//! the property that makes it safe to instrument the serving hot path: a
//! metrics layer that allocates per request would show up in the very tail
//! latencies it exists to measure.
//!
//! This file deliberately contains a single `#[test]` so no sibling test can
//! allocate concurrently on another thread and pollute the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use imobs::{Registry, Span};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAllocator;

// SAFETY: delegates directly to the system allocator; the counter is a
// side-effect-free atomic increment.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

#[test]
fn record_paths_perform_zero_allocations() {
    // Registration allocates (names, the family vectors, the bucket array) —
    // that is setup cost, paid once at engine construction.
    let registry = Registry::new();
    let counter = registry.counter("test_total", "a counter");
    let gauge = registry.gauge("test_level", "a gauge");
    let histogram = registry.histogram("test_micros", "a histogram");

    // Span events push into a pre-sized buffer; warm it up once so the one
    // lazy growth (if any) happens outside the measured window.
    let mut warm = Span::begin(imobs::next_trace_id());
    for _ in 0..16 {
        warm.event_with_micros("warm", 1);
    }
    let _ = warm.finish();

    // The counter is process-global, so the libtest harness thread can leak
    // a one-shot lazy allocation (I/O buffers, timekeeping) into a measured
    // window. Such noise is not repeatable, while a record path that truly
    // allocated would dirty every window — so require one clean window out
    // of a few rather than exactly the first.
    let mut rounds = 0u64;
    let clean = loop {
        let before = ALLOCATIONS.load(Ordering::SeqCst);
        for i in 0..10_000u64 {
            counter.inc();
            counter.add(3);
            gauge.set(i as i64);
            gauge.inc();
            gauge.dec();
            // The record sweep covers every log2 bucket, including the extremes.
            histogram.record(i);
            histogram.record(u64::MAX);
            histogram.record(0);
        }
        let after = ALLOCATIONS.load(Ordering::SeqCst);
        rounds += 1;
        if after == before {
            break true;
        }
        if rounds == 5 {
            break false;
        }
    };
    assert!(
        clean,
        "counter/gauge/histogram record paths must not allocate (5 dirty windows)"
    );

    // Contrast: snapshots clone the live state into fresh vectors — the
    // allocating side lives entirely at scrape time, off the hot path.
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let snapshot = histogram.snapshot();
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert!(snapshot.count > 0);
    assert!(
        after > before,
        "the snapshot path is expected to allocate (and may)"
    );

    // Sanity: everything recorded landed, however many windows it took.
    assert_eq!(counter.get(), rounds * 10_000 * 4);
    assert_eq!(snapshot.count, rounds * 30_000);
}
