//! `imdyn` — incremental RR-set maintenance for evolving influence graphs.
//!
//! The RR-set pool behind the serving layer is a *materialized view* over the
//! influence graph: expensive to compute, cheap to query. Before this crate,
//! any graph change invalidated the whole view — a full resample and a server
//! restart. [`DynamicOracle`] instead keeps the view consistent under a
//! stream of typed mutations ([`imgraph::GraphDelta`]), with a strong
//! correctness contract:
//!
//! > After any sequence of applied deltas, the maintained pool is
//! > **byte-identical** (via `InfluenceOracle::to_bytes`) to a pool rebuilt
//! > from scratch on the mutated graph with the same base seed.
//!
//! The contract is achievable because the pool is built with one derived
//! PRNG stream *per RR set* (`InfluenceOracle::build_incremental`), and the
//! reverse BFS generating a set only examines in-edges of vertices inside the
//! set — so a mutation of edge `(u, v)` dirties exactly the sets containing
//! `v`, and those are listed by the pool's own posting list for `v`. See
//! `README.md` next to this crate for the full argument.
//!
//! [`workload`] provides deterministic random mutation generators used by the
//! proptest suite, the `evolve` experiment and the maintenance bench.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use im_core::sampler::Backend;
use im_core::InfluenceOracle;
use imgraph::{DeltaError, DeltaLog, GraphDelta, InfluenceGraph, MutableInfluenceGraph};

pub mod workload;

/// Monotonic counters describing the maintenance work performed so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaintenanceStats {
    /// Deltas successfully applied through [`DynamicOracle::apply`].
    pub deltas_applied: u64,
    /// RR sets resampled across all applied deltas.
    pub sets_resampled: u64,
    /// Deltas that only patched an edge attribute (no CSR rebuild).
    pub attribute_patches: u64,
}

/// What one [`DynamicOracle::apply`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ApplyOutcome {
    /// The engine epoch after the delta (the number of deltas ever applied).
    pub epoch: u64,
    /// RR sets that were dirty and resampled.
    pub resampled: usize,
    /// Whether the adjacency structure changed (insert/delete) rather than
    /// only an edge probability.
    pub structural: bool,
}

/// An influence oracle kept consistent with an evolving graph.
///
/// Owns the graph in both mutable (edge-list) and materialized (CSR) form,
/// the incrementally maintainable RR-set pool, and the log of every applied
/// delta. All state advances in lock step inside [`DynamicOracle::apply`], so
/// readers holding `&self` always observe a consistent `(graph, pool, epoch)`
/// triple.
#[derive(Debug, Clone)]
pub struct DynamicOracle {
    mutable: MutableInfluenceGraph,
    graph: InfluenceGraph,
    oracle: InfluenceOracle,
    log: DeltaLog,
    stats: MaintenanceStats,
}

impl DynamicOracle {
    /// Build a dynamic oracle over `graph` with a fresh incremental pool.
    ///
    /// # Panics
    ///
    /// Panics if `pool_size == 0` or the graph is empty (the pool build
    /// contract).
    #[must_use]
    pub fn build(
        graph: InfluenceGraph,
        pool_size: usize,
        base_seed: u64,
        backend: Backend,
    ) -> Self {
        let oracle = InfluenceOracle::build_incremental(&graph, pool_size, base_seed, backend);
        Self {
            mutable: MutableInfluenceGraph::from_graph(&graph),
            graph,
            oracle,
            log: DeltaLog::new(),
            stats: MaintenanceStats::default(),
        }
    }

    /// Reassemble a dynamic oracle from persisted parts (graph, pool, log).
    ///
    /// `graph` and `oracle` must already be at the *same* version (the
    /// serving artifact stores the current graph and current pool; the log is
    /// provenance, not a pending queue). The oracle must carry incremental
    /// state (`InfluenceOracle::is_incremental`); reload paths re-attach it
    /// with `attach_incremental(base_seed)` before calling this.
    pub fn from_parts(
        graph: InfluenceGraph,
        oracle: InfluenceOracle,
        log: DeltaLog,
    ) -> Result<Self, String> {
        if !oracle.is_incremental() {
            return Err("oracle pool carries no incremental state (attach_incremental)".into());
        }
        if oracle.num_vertices() != graph.num_vertices() {
            return Err(format!(
                "pool indexes {} vertices but graph has {}",
                oracle.num_vertices(),
                graph.num_vertices()
            ));
        }
        Ok(Self {
            mutable: MutableInfluenceGraph::from_graph(&graph),
            graph,
            oracle,
            log,
            stats: MaintenanceStats::default(),
        })
    }

    /// Apply one mutation: update the graph, resample exactly the dirty RR
    /// sets, and append to the log. On error nothing changes.
    pub fn apply(&mut self, delta: GraphDelta) -> Result<ApplyOutcome, DeltaError> {
        let effect = self.mutable.apply(&delta)?;
        if effect.structural {
            // Insert/delete change the CSR: re-derive it from the edge list,
            // which is exactly the graph a from-scratch rebuild would see.
            self.graph = self.mutable.materialize();
        } else if let GraphDelta::SetProbability { probability, .. } = delta {
            // Attribute-only fast path: patch the one probability slot
            // in place (bit-identical to a rebuild, see `set_probability`).
            self.graph.set_probability(effect.edge_id, probability);
            self.stats.attribute_patches += 1;
        }
        let resampled = self
            .oracle
            .apply_delta(&self.graph, &delta)
            .expect("dynamic oracle state is incremental and dimension-consistent");
        self.log.push(delta);
        self.stats.deltas_applied += 1;
        self.stats.sets_resampled += resampled as u64;
        Ok(ApplyOutcome {
            epoch: self.epoch(),
            resampled,
            structural: effect.structural,
        })
    }

    /// The engine epoch: the number of deltas ever applied (including those
    /// already in the log this oracle was reassembled with).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.log.len() as u64
    }

    /// The influence graph at the current epoch.
    #[must_use]
    pub fn graph(&self) -> &InfluenceGraph {
        &self.graph
    }

    /// The mutable edge-list view of the graph at the current epoch.
    #[must_use]
    pub fn mutable_graph(&self) -> &MutableInfluenceGraph {
        &self.mutable
    }

    /// The maintained RR-set oracle at the current epoch.
    #[must_use]
    pub fn oracle(&self) -> &InfluenceOracle {
        &self.oracle
    }

    /// The log of every applied delta, in application order.
    #[must_use]
    pub fn log(&self) -> &DeltaLog {
        &self.log
    }

    /// Maintenance counters.
    #[must_use]
    pub fn stats(&self) -> &MaintenanceStats {
        &self.stats
    }

    /// The base seed the pool's per-set streams derive from.
    #[must_use]
    pub fn base_seed(&self) -> u64 {
        self.oracle
            .incremental_base_seed()
            .expect("dynamic oracle pools are always incremental")
    }

    /// Number of RR sets in the maintained pool.
    #[must_use]
    pub fn pool_size(&self) -> usize {
        self.oracle.pool_size()
    }

    /// Build the reference pool: a from-scratch incremental build on the
    /// current graph at the same seed. This is the right-hand side of the
    /// crate's correctness contract (and costs a full resample — use it for
    /// verification, not serving).
    #[must_use]
    pub fn rebuild_from_scratch(&self) -> InfluenceOracle {
        InfluenceOracle::build_incremental(
            &self.graph,
            self.pool_size(),
            self.base_seed(),
            Backend::Sequential,
        )
    }

    /// Verify the correctness contract: the maintained pool serializes to
    /// exactly the bytes a from-scratch rebuild produces.
    #[must_use]
    pub fn matches_rebuild(&self) -> bool {
        self.oracle.to_bytes() == self.rebuild_from_scratch().to_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imgraph::DiGraph;

    fn star(prob: f64) -> InfluenceGraph {
        let edges: Vec<_> = (1..5u32).map(|v| (0, v)).collect();
        InfluenceGraph::new(DiGraph::from_edges(5, &edges), vec![prob; 4])
    }

    #[test]
    fn apply_advances_epoch_log_and_stats() {
        let mut dynamic = DynamicOracle::build(star(0.5), 1_000, 7, Backend::Sequential);
        assert_eq!(dynamic.epoch(), 0);
        assert_eq!(dynamic.base_seed(), 7);
        assert_eq!(dynamic.pool_size(), 1_000);

        let outcome = dynamic
            .apply(GraphDelta::InsertEdge {
                source: 3,
                target: 4,
                probability: 0.5,
            })
            .unwrap();
        assert_eq!(outcome.epoch, 1);
        assert!(outcome.structural);
        let outcome = dynamic
            .apply(GraphDelta::SetProbability {
                source: 0,
                target: 2,
                probability: 1.0,
            })
            .unwrap();
        assert!(!outcome.structural);
        assert_eq!(dynamic.epoch(), 2);
        assert_eq!(dynamic.log().len(), 2);
        assert_eq!(dynamic.stats().deltas_applied, 2);
        assert_eq!(dynamic.stats().attribute_patches, 1);
        assert_eq!(dynamic.graph().num_edges(), 5);
        assert!(dynamic.matches_rebuild());
    }

    #[test]
    fn failed_deltas_change_nothing() {
        let mut dynamic = DynamicOracle::build(star(0.5), 500, 3, Backend::Sequential);
        let bytes_before = dynamic.oracle().to_bytes();
        let err = dynamic.apply(GraphDelta::DeleteEdge {
            source: 4,
            target: 0,
        });
        assert!(err.is_err());
        assert_eq!(dynamic.epoch(), 0);
        assert_eq!(dynamic.oracle().to_bytes(), bytes_before);
        assert_eq!(dynamic.stats(), &MaintenanceStats::default());
    }

    #[test]
    fn from_parts_requires_incremental_state_and_matching_dimensions() {
        let graph = star(0.5);
        let plain = InfluenceOracle::build_with_backend(&graph, 100, 1, Backend::Sequential);
        assert!(DynamicOracle::from_parts(graph.clone(), plain.clone(), DeltaLog::new()).is_err());

        let mut attached = plain;
        attached.attach_incremental(1);
        let dynamic = DynamicOracle::from_parts(graph.clone(), attached.clone(), DeltaLog::new())
            .expect("incremental state attached");
        assert_eq!(dynamic.epoch(), 0);

        let other = {
            let edges: Vec<_> = (1..3u32).map(|v| (0, v)).collect();
            InfluenceGraph::new(DiGraph::from_edges(3, &edges), vec![0.5; 2])
        };
        assert!(DynamicOracle::from_parts(other, attached, DeltaLog::new()).is_err());
    }

    #[test]
    fn epoch_counts_reassembled_logs() {
        let graph = star(0.5);
        let mut dynamic = DynamicOracle::build(graph, 200, 9, Backend::Sequential);
        dynamic
            .apply(GraphDelta::DeleteEdge {
                source: 0,
                target: 1,
            })
            .unwrap();
        let reassembled = DynamicOracle::from_parts(
            dynamic.graph().clone(),
            dynamic.oracle().clone(),
            dynamic.log().clone(),
        )
        .unwrap();
        assert_eq!(reassembled.epoch(), 1);
        assert!(reassembled.matches_rebuild());
    }
}
