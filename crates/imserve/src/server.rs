//! The std-only multi-threaded TCP front end.
//!
//! Architecture: one acceptor thread owns the `TcpListener`; accepted
//! connections are fanned out over an `mpsc` channel to a fixed pool of worker
//! threads, each of which owns one [`im_core::EstimateScratch`] and serves its
//! connection to completion (newline-delimited JSON, one response per request
//! line, in order). Workers share the engine behind an `Arc`; since the index
//! became mutable, queries take the engine's internal read lock briefly while
//! `Mutate` requests take the write lock — see `engine` for the locking
//! discipline (long selections snapshot the state and hold no lock).

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use crate::engine::QueryEngine;
use crate::error::ServeError;
use crate::protocol::{
    self, ErrorKind, FrameEnvelope, Outcome, Request, RequestFrame, Response, ResponseFrame,
    WireError, PROTOCOL_VERSION,
};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads serving connections.
    pub workers: usize,
    /// How long a worker waits for the next request line before dropping the
    /// connection. Workers are a fixed pool and a connection holds its worker
    /// until it closes, so without this bound `workers` idle clients would
    /// pin the whole pool; `None` disables the timeout (trusted clients
    /// only).
    pub idle_timeout: Option<std::time::Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            idle_timeout: Some(std::time::Duration::from_secs(60)),
        }
    }
}

/// A handle to a running server: its bound address and a shutdown switch.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server actually bound (resolves ephemeral port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting connections and join the acceptor thread.
    ///
    /// In-flight connections are drained by their workers; workers themselves
    /// are detached and exit once their channel sender is dropped.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the acceptor with a wake-up connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
    }
}

/// Bind `addr` and serve `engine` on a worker pool until shut down.
///
/// Returns immediately with a [`ServerHandle`]; accepting and serving happen
/// on background threads. Bind to port 0 for an ephemeral port (tests, CI).
pub fn spawn(
    addr: impl ToSocketAddrs,
    engine: Arc<QueryEngine>,
    config: &ServerConfig,
) -> Result<ServerHandle, ServeError> {
    let workers = config.workers.max(1);
    let listener = TcpListener::bind(addr)?;
    let local_addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));

    let idle_timeout = config.idle_timeout;
    let (tx, rx) = mpsc::channel::<TcpStream>();
    let rx = Arc::new(Mutex::new(rx));
    for worker_id in 0..workers {
        let rx = Arc::clone(&rx);
        let engine = Arc::clone(&engine);
        std::thread::Builder::new()
            .name(format!("imserve-worker-{worker_id}"))
            .spawn(move || {
                let mut scratch = engine.new_scratch();
                loop {
                    // Holding the lock only while receiving keeps sibling
                    // workers free to pick up the next connection.
                    let stream = match rx.lock().expect("worker queue poisoned").recv() {
                        Ok(stream) => stream,
                        Err(_) => return, // acceptor gone: shut down
                    };
                    let _ = stream.set_read_timeout(idle_timeout);
                    let _ = serve_connection(&engine, stream, &mut scratch);
                }
            })
            .expect("worker thread spawns");
    }

    let stop_flag = Arc::clone(&stop);
    let acceptor = std::thread::Builder::new()
        .name("imserve-acceptor".to_string())
        .spawn(move || {
            for stream in listener.incoming() {
                if stop_flag.load(Ordering::SeqCst) {
                    return; // drops tx; workers drain and exit
                }
                match stream {
                    Ok(stream) => {
                        if tx.send(stream).is_err() {
                            return;
                        }
                    }
                    Err(_) => continue,
                }
            }
        })
        .expect("acceptor thread spawns");

    Ok(ServerHandle {
        addr: local_addr,
        stop,
        acceptor: Some(acceptor),
    })
}

/// Serve one connection until it closes or idles past the read timeout: read
/// request lines, write one response line each, flush after every response so
/// clients can pipeline.
///
/// Each line is answered in the dialect it arrived in: an id-tagged v2
/// [`RequestFrame`] gets an id-matched [`ResponseFrame`] with the typed
/// error taxonomy; a bare v1 [`Request`] gets a bare [`Response`] (errors
/// flattened into `Response::Error`). The two dialects are structurally
/// disjoint on the wire, so detection is just "try v2 first" — and v1
/// clients keep working against this server unchanged.
fn serve_connection(
    engine: &QueryEngine,
    stream: TcpStream,
    scratch: &mut im_core::EstimateScratch,
) -> Result<(), ServeError> {
    let reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let reply = match protocol::decode::<RequestFrame>(&line) {
            Ok(frame) => {
                let body = if frame.v == PROTOCOL_VERSION {
                    match engine.handle_service(&frame.req, scratch) {
                        Ok(response) => Outcome::Ok(response),
                        Err(e) => Outcome::Err(WireError::from_service(&e)),
                    }
                } else {
                    Outcome::Err(WireError {
                        kind: ErrorKind::Unsupported,
                        message: format!(
                            "frame version {} not supported (this server speaks \
                             {PROTOCOL_VERSION})",
                            frame.v
                        ),
                    })
                };
                protocol::encode(&ResponseFrame {
                    v: PROTOCOL_VERSION,
                    id: frame.id,
                    body,
                })?
            }
            // Not a complete v2 frame. If the version/id envelope still
            // parses, the line *is* v2 with an unrecognized or malformed
            // request payload (e.g. a newer client's variant): answer an
            // id-tagged error so a pipelining client stays in sync.
            // Otherwise fall back to the v1 dialect.
            Err(frame_error) => match protocol::decode::<FrameEnvelope>(&line) {
                Ok(envelope) => protocol::encode(&ResponseFrame {
                    v: PROTOCOL_VERSION,
                    id: envelope.id,
                    body: Outcome::Err(WireError {
                        kind: ErrorKind::Unsupported,
                        message: format!(
                            "unrecognized or malformed v2 request payload: {frame_error}"
                        ),
                    }),
                })?,
                Err(_) => {
                    let response = match protocol::decode::<Request>(&line) {
                        Ok(request) => engine.handle(&request, scratch),
                        Err(e) => Response::Error {
                            message: e.to_string(),
                        },
                    };
                    protocol::encode(&response)?
                }
            },
        };
        writer.write_all(reply.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::build_dataset_index;

    #[test]
    fn serves_and_shuts_down() {
        let engine = Arc::new(
            QueryEngine::builder(build_dataset_index("karate", "uc0.1", 1_000, 3).unwrap())
                .build()
                .unwrap(),
        );
        let handle = spawn(
            "127.0.0.1:0",
            Arc::clone(&engine),
            &ServerConfig {
                workers: 2,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let addr = handle.addr();
        assert_ne!(addr.port(), 0, "ephemeral port must be resolved");

        let response = crate::client::Connection::open(addr)
            .unwrap()
            .roundtrip(&Request::Ping)
            .unwrap();
        assert_eq!(response, Response::Pong);
        handle.shutdown();
    }

    #[test]
    fn idle_connections_do_not_pin_the_worker_pool() {
        let engine = Arc::new(
            QueryEngine::builder(build_dataset_index("karate", "uc0.1", 500, 3).unwrap())
                .build()
                .unwrap(),
        );
        let handle = spawn(
            "127.0.0.1:0",
            Arc::clone(&engine),
            &ServerConfig {
                workers: 1,
                idle_timeout: Some(std::time::Duration::from_millis(100)),
            },
        )
        .unwrap();
        let addr = handle.addr();
        // Occupy the single worker with a connection that never sends a byte.
        let idle = TcpStream::connect(addr).unwrap();
        // A real client must still be served once the idler times out.
        let response = crate::client::query_once(addr, &Request::Ping).unwrap();
        assert_eq!(response, Response::Pong);
        drop(idle);
        handle.shutdown();
    }
}
