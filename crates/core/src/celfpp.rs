//! CELF++ lazy greedy (Goyal, Lu, Lakshmanan, WWW 2011).
//!
//! CELF (in [`crate::greedy::celf_select`]) re-evaluates the top heap entry
//! until its cached gain is current. CELF++ squeezes out additional Estimate
//! calls by caching, for every re-evaluated vertex `v`, *two* gains at once:
//!
//! * `mg1` — the marginal gain of `v` with respect to the committed seed set;
//! * `mg2` — the marginal gain of `v` with respect to the committed seeds plus
//!   `prev_best`, the best candidate seen so far in the ongoing iteration.
//!
//! If `prev_best` turns out to be the seed selected in this iteration, `mg2`
//! is already the fresh gain of `v` for the next iteration and no
//! re-evaluation is needed — the entry is *promoted* for free.
//!
//! The second gain requires evaluating a candidate against a seed set that
//! includes a vertex the estimator has not committed yet, which is the
//! optional [`InfluenceEstimator::estimate_with_pending`] capability. RIS
//! supports it cheaply (count uncovered RR sets containing `v` but missing
//! `prev_best`); estimators that return `None` simply never promote, and
//! CELF++ degrades gracefully to CELF. Like CELF, lazy evaluation is only
//! admissible for monotone submodular estimators; for Oneshot the function
//! falls back to plain greedy, matching the caveat of Section 3.3.1.

use imgraph::VertexId;
use imrand::{seq, Rng32};

use crate::estimator::InfluenceEstimator;
use crate::greedy::{greedy_select, GreedyResult};

/// Statistics of a CELF++ run, returned alongside the selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CelfPpStats {
    /// Estimate calls actually issued (including `estimate_with_pending`).
    pub estimate_calls: u64,
    /// Re-evaluations avoided because a cached `mg2` could be promoted.
    pub promotions: u64,
}

/// Run CELF++ and return the selection together with its call statistics.
pub fn celf_pp_select<E: InfluenceEstimator, R: Rng32>(
    estimator: &mut E,
    k: usize,
    rng: &mut R,
) -> (GreedyResult, CelfPpStats) {
    if !estimator.is_submodular() {
        let result = greedy_select(estimator, k, rng);
        let stats = CelfPpStats {
            estimate_calls: result.estimate_calls,
            promotions: 0,
        };
        return (result, stats);
    }
    let n = estimator.num_vertices();
    let order = seq::random_permutation(n, rng);
    let k = k.min(n);
    let mut selection_order = Vec::with_capacity(k);
    let mut estimates = Vec::with_capacity(k);
    let mut stats = CelfPpStats::default();

    use std::cmp::Ordering;
    #[derive(Debug)]
    struct Entry {
        mg1: f64,
        /// Gain with respect to committed seeds + `prev_best`, when available.
        mg2: Option<f64>,
        /// The best candidate of the iteration `mg1` was computed in.
        prev_best: Option<VertexId>,
        rank: u32,
        vertex: VertexId,
        /// Number of committed seeds when `mg1` was computed.
        valid_at: usize,
    }
    impl PartialEq for Entry {
        fn eq(&self, other: &Self) -> bool {
            self.mg1 == other.mg1 && self.rank == other.rank
        }
    }
    impl Eq for Entry {}
    impl PartialOrd for Entry {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Entry {
        fn cmp(&self, other: &Self) -> Ordering {
            self.mg1
                .partial_cmp(&other.mg1)
                .expect("estimates must not be NaN")
                .then(self.rank.cmp(&other.rank))
        }
    }

    // Initial pass: compute mg1 for every vertex and mg2 against the running
    // best candidate where the estimator supports it.
    let mut current_best: Option<(VertexId, f64)> = None;
    let mut heap: std::collections::BinaryHeap<Entry> = std::collections::BinaryHeap::new();
    for (rank, &v) in order.iter().enumerate() {
        let mg1 = estimator.estimate(v);
        stats.estimate_calls += 1;
        let (prev_best, mg2) = match current_best {
            Some((b, _)) => {
                let mg2 = estimator.estimate_with_pending(v, &[b]);
                if mg2.is_some() {
                    stats.estimate_calls += 1;
                }
                (Some(b), mg2)
            }
            None => (None, None),
        };
        match current_best {
            Some((_, best)) if mg1 < best => {}
            _ => current_best = Some((v, mg1)),
        }
        heap.push(Entry {
            mg1,
            mg2,
            prev_best,
            rank: rank as u32,
            vertex: v,
            valid_at: 0,
        });
    }

    let mut last_seed: Option<VertexId> = None;
    while selection_order.len() < k {
        let committed = selection_order.len();
        let Some(mut top) = heap.pop() else { break };
        if top.valid_at == committed {
            estimator.update(top.vertex);
            last_seed = Some(top.vertex);
            selection_order.push(top.vertex);
            estimates.push(top.mg1);
            current_best = None;
            continue;
        }
        let promotable = top.valid_at + 1 == committed
            && top.prev_best.is_some()
            && top.prev_best == last_seed
            && top.mg2.is_some();
        if promotable {
            // mg2 was computed against exactly the seed set we now have.
            top.mg1 = top.mg2.expect("checked above");
            stats.promotions += 1;
        } else {
            top.mg1 = estimator.estimate(top.vertex);
            stats.estimate_calls += 1;
        }
        top.valid_at = committed;
        top.prev_best = current_best.map(|(b, _)| b);
        top.mg2 = match top.prev_best {
            Some(b) => {
                let mg2 = estimator.estimate_with_pending(top.vertex, &[b]);
                if mg2.is_some() {
                    stats.estimate_calls += 1;
                }
                mg2
            }
            None => None,
        };
        match current_best {
            Some((_, best)) if top.mg1 < best => {}
            _ => current_best = Some((top.vertex, top.mg1)),
        }
        heap.push(top);
    }

    (
        GreedyResult {
            selection_order,
            estimates,
            estimate_calls: stats.estimate_calls,
        },
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::greedy_select;
    use crate::ris::RisEstimator;
    use crate::snapshot::SnapshotEstimator;
    use imgraph::{DiGraph, InfluenceGraph};
    use imrand::Pcg32;

    fn two_hubs(prob: f64) -> InfluenceGraph {
        let mut edges: Vec<(u32, u32)> = (1..5u32).map(|v| (0, v)).collect();
        edges.extend((6..10u32).map(|v| (5, v)));
        let m = edges.len();
        InfluenceGraph::new(DiGraph::from_edges(10, &edges), vec![prob; m])
    }

    #[test]
    fn matches_greedy_selection_for_ris() {
        let ig = two_hubs(0.6);
        for seed in 0..10u64 {
            let mut a = RisEstimator::new(&ig, 2_000, &mut Pcg32::seed_from_u64(seed));
            let mut b = RisEstimator::new(&ig, 2_000, &mut Pcg32::seed_from_u64(seed));
            let g = greedy_select(&mut a, 3, &mut Pcg32::seed_from_u64(seed + 100));
            let (c, _) = celf_pp_select(&mut b, 3, &mut Pcg32::seed_from_u64(seed + 100));
            assert_eq!(g.seed_set(), c.seed_set(), "seed {seed}");
        }
    }

    #[test]
    fn matches_greedy_selection_for_snapshot_without_promotion_support() {
        let ig = two_hubs(0.4);
        for seed in 0..5u64 {
            let mut a = SnapshotEstimator::new(&ig, 200, &mut Pcg32::seed_from_u64(seed));
            let mut b = SnapshotEstimator::new(&ig, 200, &mut Pcg32::seed_from_u64(seed));
            let g = greedy_select(&mut a, 2, &mut Pcg32::seed_from_u64(seed + 7));
            let (c, stats) = celf_pp_select(&mut b, 2, &mut Pcg32::seed_from_u64(seed + 7));
            assert_eq!(g.seed_set(), c.seed_set(), "seed {seed}");
            assert_eq!(
                stats.promotions, 0,
                "Snapshot does not expose pending estimates"
            );
        }
    }

    #[test]
    fn ris_pending_estimates_enable_promotions_on_overlapping_hubs() {
        // A star whose hub dominates: after the hub is committed, every leaf's
        // mg2 (computed against the hub) is exactly its new marginal gain, so
        // at least one promotion should fire across a few runs.
        let edges: Vec<(u32, u32)> = (1..8u32).map(|v| (0, v)).collect();
        let ig = InfluenceGraph::new(DiGraph::from_edges(8, &edges), vec![0.9; 7]);
        let mut total_promotions = 0u64;
        for seed in 0..10u64 {
            let mut est = RisEstimator::new(&ig, 1_000, &mut Pcg32::seed_from_u64(seed));
            let (_, stats) = celf_pp_select(&mut est, 3, &mut Pcg32::seed_from_u64(seed + 31));
            total_promotions += stats.promotions;
        }
        assert!(total_promotions > 0, "expected at least one mg2 promotion");
    }

    #[test]
    fn falls_back_to_greedy_for_non_submodular_estimators() {
        let ig = two_hubs(0.5);
        let mut est = crate::OneshotEstimator::new(&ig, 50, Pcg32::seed_from_u64(5));
        let (result, stats) = celf_pp_select(&mut est, 2, &mut Pcg32::seed_from_u64(6));
        assert_eq!(result.len(), 2);
        assert_eq!(stats.promotions, 0);
    }

    #[test]
    fn k_zero_returns_empty() {
        let ig = two_hubs(0.5);
        let mut est = RisEstimator::new(&ig, 100, &mut Pcg32::seed_from_u64(8));
        let (result, _) = celf_pp_select(&mut est, 0, &mut Pcg32::seed_from_u64(9));
        assert!(result.is_empty());
    }

    #[test]
    fn pending_estimate_matches_post_update_estimate_for_ris() {
        let ig = two_hubs(0.7);
        let mut est = RisEstimator::new(&ig, 5_000, &mut Pcg32::seed_from_u64(12));
        // Gain of leaf 1 if hub 0 were committed, computed both ways.
        let pending = est.estimate_with_pending(1, &[0]).unwrap();
        est.update(0);
        let actual = est.estimate(1);
        assert!(
            (pending - actual).abs() < 1e-12,
            "pending {pending} vs actual {actual}"
        );
    }
}
