//! The Barabási–Albert preferential-attachment model (Barabási & Albert, 1999).
//!
//! Section 4.2.2: the paper generates a sparse network `BA_s` (n = 1,000,
//! M = 1) and a dense network `BA_d` (n = 1,000, M = 11), then assigns a
//! random direction to every generated edge. This module implements exactly
//! that procedure: undirected preferential attachment followed by a random
//! orientation of each edge.

use imgraph::{DiGraph, GraphBuilder, VertexId};
use imrand::{seq, Rng32};

/// Parameters of the Barabási–Albert generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BarabasiAlbert {
    /// Total number of vertices.
    pub num_vertices: usize,
    /// Number of edges each new vertex attaches with (`M` in the paper).
    pub edges_per_vertex: usize,
}

impl BarabasiAlbert {
    /// The paper's sparse instance `BA_s`: n = 1,000, M = 1.
    #[must_use]
    pub fn sparse() -> Self {
        Self {
            num_vertices: 1_000,
            edges_per_vertex: 1,
        }
    }

    /// The paper's dense instance `BA_d`: n = 1,000, M = 11.
    ///
    /// (Table 3 describes BA_d as "n = 1,000, M = 11" in the text and lists
    /// m = 10,879 ≈ (1,000 − 11) × 11; the exact edge count varies slightly
    /// with the seed because duplicate attachments are rejected.)
    #[must_use]
    pub fn dense() -> Self {
        Self {
            num_vertices: 1_000,
            edges_per_vertex: 11,
        }
    }

    /// Generate the *undirected* attachment edge list (each edge once).
    ///
    /// The first `M + 1` vertices form a seed clique-free core: vertex `i`
    /// (for `i ≤ M`) connects to all earlier vertices, which gives every
    /// vertex an initial chance to attract attachments. Each subsequent vertex
    /// attaches to `M` distinct existing vertices chosen with probability
    /// proportional to their current degree (implemented by uniform sampling
    /// from the edge-endpoint multiset).
    ///
    /// # Panics
    ///
    /// Panics if `num_vertices <= edges_per_vertex` or `edges_per_vertex == 0`.
    #[must_use]
    pub fn generate_undirected<R: Rng32>(&self, rng: &mut R) -> Vec<(VertexId, VertexId)> {
        let n = self.num_vertices;
        let m_attach = self.edges_per_vertex;
        assert!(m_attach >= 1, "edges_per_vertex must be at least 1");
        assert!(
            n > m_attach,
            "need more vertices ({n}) than attachments per vertex ({m_attach})"
        );

        let mut edges: Vec<(VertexId, VertexId)> = Vec::with_capacity(n * m_attach);
        // `endpoints` holds every edge endpoint once; sampling an element
        // uniformly samples a vertex with probability proportional to degree.
        let mut endpoints: Vec<VertexId> = Vec::with_capacity(2 * n * m_attach);

        // Bootstrap: connect vertex i (1..=m_attach) to all earlier vertices.
        for i in 1..=m_attach {
            for j in 0..i {
                edges.push((i as VertexId, j as VertexId));
                endpoints.push(i as VertexId);
                endpoints.push(j as VertexId);
            }
        }

        let mut targets: Vec<VertexId> = Vec::with_capacity(m_attach);
        for v in (m_attach + 1)..n {
            targets.clear();
            // Rejection-sample distinct targets by preferential attachment.
            while targets.len() < m_attach {
                let pick = endpoints[rng.gen_index(endpoints.len())];
                if !targets.contains(&pick) {
                    targets.push(pick);
                }
            }
            for &t in &targets {
                edges.push((v as VertexId, t));
                endpoints.push(v as VertexId);
                endpoints.push(t);
            }
        }
        edges
    }

    /// Generate the directed network the paper uses: preferential attachment
    /// followed by a uniformly random direction for each edge.
    #[must_use]
    pub fn generate_directed<R: Rng32>(&self, rng: &mut R) -> DiGraph {
        let undirected = self.generate_undirected(rng);
        let mut builder = GraphBuilder::with_capacity(self.num_vertices, undirected.len());
        for (u, v) in undirected {
            if rng.bernoulli(0.5) {
                builder.add_edge(u, v);
            } else {
                builder.add_edge(v, u);
            }
        }
        builder.build()
    }

    /// Generate a *symmetrised* directed network (both arcs per attachment
    /// edge); not what the paper uses for BA_s/BA_d but useful for tests that
    /// need strongly-connected scale-free graphs.
    #[must_use]
    pub fn generate_symmetric<R: Rng32>(&self, rng: &mut R) -> DiGraph {
        let undirected = self.generate_undirected(rng);
        let mut builder = GraphBuilder::with_capacity(self.num_vertices, undirected.len() * 2);
        for (u, v) in undirected {
            builder.add_undirected_edge(u, v);
        }
        builder.build()
    }
}

/// Convenience: degree sequence of an undirected edge list.
#[must_use]
pub fn undirected_degrees(n: usize, edges: &[(VertexId, VertexId)]) -> Vec<usize> {
    let mut deg = vec![0usize; n];
    for &(u, v) in edges {
        deg[u as usize] += 1;
        deg[v as usize] += 1;
    }
    deg
}

/// Shuffle-and-orient helper used by analog builders: assign each undirected
/// edge a random direction.
#[must_use]
pub fn orient_randomly<R: Rng32>(
    n: usize,
    undirected: &[(VertexId, VertexId)],
    rng: &mut R,
) -> DiGraph {
    let mut builder = GraphBuilder::with_capacity(n, undirected.len());
    let mut order: Vec<usize> = (0..undirected.len()).collect();
    seq::shuffle(&mut order, rng);
    for idx in order {
        let (u, v) = undirected[idx];
        if rng.bernoulli(0.5) {
            builder.add_edge(u, v);
        } else {
            builder.add_edge(v, u);
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use imrand::Pcg32;

    #[test]
    fn sparse_instance_counts() {
        let mut rng = Pcg32::seed_from_u64(1);
        let g = BarabasiAlbert::sparse().generate_directed(&mut rng);
        // Table 3: BA_s has n = 1,000 and m = 999 (a tree).
        assert_eq!(g.num_vertices(), 1_000);
        assert_eq!(g.num_edges(), 999);
    }

    #[test]
    fn dense_instance_counts() {
        let mut rng = Pcg32::seed_from_u64(2);
        let g = BarabasiAlbert::dense().generate_directed(&mut rng);
        assert_eq!(g.num_vertices(), 1_000);
        // M = 11: bootstrap contributes C(12, 2) − C(11, 2) style counts; the
        // exact value is (11·12/2) + (1000 − 12)·11 = 66 + 10,868 = 10,934,
        // close to the paper's 10,879 (which depends on their bootstrap).
        assert_eq!(g.num_edges(), 66 + (1_000 - 12) * 11);
    }

    #[test]
    fn undirected_tree_is_connected_for_m1() {
        let mut rng = Pcg32::seed_from_u64(3);
        let g = BarabasiAlbert::sparse().generate_symmetric(&mut rng);
        assert_eq!(imgraph::components::largest_weak_component(&g), 1_000);
    }

    #[test]
    fn no_self_loops_and_no_duplicate_attachments() {
        let mut rng = Pcg32::seed_from_u64(4);
        let spec = BarabasiAlbert {
            num_vertices: 300,
            edges_per_vertex: 5,
        };
        let edges = spec.generate_undirected(&mut rng);
        let mut seen = std::collections::HashSet::new();
        for &(u, v) in &edges {
            assert_ne!(u, v, "self-loop generated");
            let key = (u.min(v), u.max(v));
            assert!(seen.insert(key), "duplicate undirected edge {key:?}");
        }
    }

    #[test]
    fn degree_distribution_is_skewed() {
        // Preferential attachment should produce a hub much larger than the
        // median degree.
        let mut rng = Pcg32::seed_from_u64(5);
        let spec = BarabasiAlbert {
            num_vertices: 2_000,
            edges_per_vertex: 2,
        };
        let edges = spec.generate_undirected(&mut rng);
        let mut deg = undirected_degrees(2_000, &edges);
        deg.sort_unstable();
        let median = deg[1_000];
        let max = *deg.last().unwrap();
        assert!(
            max >= 10 * median.max(1),
            "expected a hub: max degree {max}, median {median}"
        );
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let spec = BarabasiAlbert::sparse();
        let a = spec.generate_directed(&mut Pcg32::seed_from_u64(9));
        let b = spec.generate_directed(&mut Pcg32::seed_from_u64(9));
        assert_eq!(a, b);
        let c = spec.generate_directed(&mut Pcg32::seed_from_u64(10));
        assert_ne!(a.edges_in_insertion_order(), c.edges_in_insertion_order());
    }

    #[test]
    fn orient_randomly_preserves_edge_count() {
        let mut rng = Pcg32::seed_from_u64(11);
        let undirected = vec![(0u32, 1u32), (1, 2), (2, 3)];
        let g = orient_randomly(4, &undirected, &mut rng);
        assert_eq!(g.num_edges(), 3);
        for (u, v) in g.edges() {
            let key = (u.min(v), u.max(v));
            assert!(undirected.iter().any(|&(a, b)| (a.min(b), a.max(b)) == key));
        }
    }

    #[test]
    #[should_panic(expected = "need more vertices")]
    fn too_few_vertices_panics() {
        let mut rng = Pcg32::seed_from_u64(12);
        let _ = BarabasiAlbert {
            num_vertices: 3,
            edges_per_vertex: 3,
        }
        .generate_undirected(&mut rng);
    }
}
