//! `imserve` — build, serve and query persistent influence indexes.
//!
//! ```text
//! imserve build    --dataset karate --model uc0.1 --pool 100000 --out karate.imx
//! imserve serve    --index karate.imx --addr 127.0.0.1:7431 --workers 4
//! imserve query    --addr 127.0.0.1:7431 --estimate 0,33
//! imserve query    --addr 127.0.0.1:7431 --topk 3 --algorithm greedy
//! imserve loadtest --addr 127.0.0.1:7431 --connections 8 --requests 500
//! ```

use std::process::ExitCode;
use std::sync::Arc;

use imserve::cli::{self, Command, QuerySpec};
use imserve::engine::QueryEngine;
use imserve::index::{build_dataset_index, IndexArtifact};
use imserve::loadtest::{self, LoadtestConfig};
use imserve::protocol::{self, Request};
use imserve::server::{self, ServerConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match cli::parse(&args) {
        Ok(command) => command,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", cli::USAGE);
            return ExitCode::FAILURE;
        }
    };
    match run(command) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(command: Command) -> Result<(), Box<dyn std::error::Error>> {
    match command {
        Command::Build {
            dataset,
            model,
            pool,
            seed,
            out,
        } => {
            let started = std::time::Instant::now();
            let artifact = build_dataset_index(&dataset, &model, pool, seed)?;
            artifact.save(&out)?;
            eprintln!(
                "built index {} ({} vertices, {} edges, pool {}) in {:.2}s -> {}",
                artifact.meta.graph_id,
                artifact.meta.num_vertices,
                artifact.meta.num_edges,
                artifact.meta.pool_size,
                started.elapsed().as_secs_f64(),
                out
            );
            Ok(())
        }
        Command::Serve {
            index,
            addr,
            workers,
            cache,
        } => {
            let started = std::time::Instant::now();
            let artifact = IndexArtifact::load(&index)?;
            eprintln!(
                "loaded index {} ({} vertices, pool {}) in {:.0}ms",
                artifact.meta.graph_id,
                artifact.meta.num_vertices,
                artifact.meta.pool_size,
                started.elapsed().as_secs_f64() * 1e3
            );
            let engine = Arc::new(QueryEngine::with_cache_capacity(artifact, cache));
            let handle = server::spawn(
                addr.as_str(),
                engine,
                &ServerConfig {
                    workers,
                    ..ServerConfig::default()
                },
            )?;
            // Printed on stdout so scripts can scrape the resolved port.
            println!("imserve listening on {}", handle.addr());
            // Serve until killed; the acceptor thread owns the listener.
            loop {
                std::thread::park();
            }
        }
        Command::Query { addr, request } => {
            let request = match request {
                QuerySpec::Estimate(seeds) => Request::Estimate { seeds },
                QuerySpec::TopK(k, algorithm) => Request::TopK { k, algorithm },
                QuerySpec::Info => Request::Info,
            };
            let response = imserve::client::query_once(addr.as_str(), &request)?;
            println!("{}", protocol::encode(&response)?);
            if matches!(response, imserve::protocol::Response::Error { .. }) {
                return Err(Box::new(imserve::ServeError::Query(
                    "server answered with an error".into(),
                )));
            }
            Ok(())
        }
        Command::Loadtest {
            addr,
            connections,
            requests,
            k,
        } => {
            let report = loadtest::run(
                addr.as_str(),
                &LoadtestConfig {
                    connections,
                    requests_per_connection: requests,
                    k,
                    seed: 1,
                },
            )?;
            println!("{report}");
            Ok(())
        }
    }
}
