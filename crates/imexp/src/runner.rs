//! Trial execution and per-configuration analysis.
//!
//! The paper's methodology (Section 4): run algorithm `alg` with sample number
//! `s`, `T` times; record every seed set and its (oracle) influence; construct
//! the seed-set distribution `S(s)` and the influence distribution `I(s)`.
//! [`PreparedInstance`] holds the influence graph together with the *shared*
//! oracle so that every identical seed set receives an identical influence
//! estimate across algorithms and sample numbers, exactly as in Section 5.2.

use im_core::sampler::{self, Backend, SampleBudget};
use im_core::{Algorithm, InfluenceOracle, RunOutcome, SeedSet};
use imgraph::InfluenceGraph;
use imrand::derive_seed;
use imstats::convergence::EntropyPoint;
use imstats::{EmpiricalDistribution, SampleCurve, SummaryStats};
use serde::{Deserialize, Serialize};

use crate::config::{ApproachKind, InstanceConfig, SweepConfig};

/// A problem instance ready to run: the influence graph, the shared influence
/// oracle, and (lazily computed) the exact-greedy reference seed set.
pub struct PreparedInstance {
    /// The configuration the instance was built from.
    pub config: InstanceConfig,
    /// The influence graph.
    pub graph: InfluenceGraph,
    /// The shared oracle used to evaluate every returned seed set.
    pub oracle: InfluenceOracle,
}

impl PreparedInstance {
    /// Build the graph and the shared oracle.
    #[must_use]
    pub fn prepare(config: InstanceConfig, oracle_pool: usize, oracle_seed: u64) -> Self {
        let graph = config
            .spec
            .influence_graph(config.model, config.dataset_seed);
        let mut rng = imrand::default_rng(oracle_seed ^ ORACLE_SEED_MIX);
        let oracle = InfluenceOracle::builder(oracle_pool).sample_with_rng(&graph, &mut rng);
        Self {
            config,
            graph,
            oracle,
        }
    }

    /// Human-readable label of the instance.
    #[must_use]
    pub fn label(&self) -> String {
        self.config.label()
    }

    /// The exact-greedy reference: greedy maximum coverage on the oracle pool
    /// (Section 5.2's "Exact Greedy" limit object) and its influence.
    #[must_use]
    pub fn exact_greedy(&self, k: usize) -> (SeedSet, f64) {
        let (order, influence) = self.oracle.greedy_seed_set(k);
        (SeedSet::new(order), influence)
    }

    /// Run `trials` independent trials of `algorithm` at seed size `k`.
    ///
    /// `parallel` is a convenience switch over [`Self::run_trials_threads`]:
    /// `true` uses one worker per core, `false` runs sequentially.
    #[must_use]
    pub fn run_trials(
        &self,
        algorithm: Algorithm,
        k: usize,
        trials: usize,
        base_seed: u64,
        parallel: bool,
    ) -> TrialBatch {
        self.run_trials_threads(
            algorithm,
            k,
            trials,
            base_seed,
            if parallel { 0 } else { 1 },
        )
    }

    /// Run `trials` independent trials on an explicit number of worker
    /// threads (`0` = one per core, `1` = sequential).
    ///
    /// Every trial derives its own seed from `base_seed` and its index, so
    /// the batch is identical for every thread count.
    #[must_use]
    pub fn run_trials_threads(
        &self,
        algorithm: Algorithm,
        k: usize,
        trials: usize,
        base_seed: u64,
        threads: usize,
    ) -> TrialBatch {
        let outcomes = run_trials_on(&self.graph, algorithm, k, trials, base_seed, threads);
        TrialBatch {
            algorithm,
            seed_size: k,
            outcomes,
        }
    }

    /// Run the full sample-number sweep of one approach and analyse every
    /// sample number against the shared oracle.
    #[must_use]
    pub fn sweep(&self, approach: ApproachKind, k: usize, sweep: &SweepConfig) -> AnalyzedSweep {
        let mut analyses = Vec::with_capacity(sweep.sample_numbers.len());
        for (idx, &s) in sweep.sample_numbers.iter().enumerate() {
            let algorithm = approach.with_sample_number(s);
            let batch = self.run_trials_threads(
                algorithm,
                k,
                sweep.trials,
                derive_seed(sweep.base_seed, idx as u64),
                sweep.threads,
            );
            analyses.push(SampleAnalysis::from_batch(&batch, &self.oracle));
        }
        AnalyzedSweep {
            approach,
            seed_size: k,
            analyses,
        }
    }
}

/// Mixed into the oracle seed so the oracle's RR sets are independent of the
/// trial RR sets even when a caller reuses the same base seed for both.
const ORACLE_SEED_MIX: u64 = 0x0AC1_E5EE_D000_0001;

/// The trial fan-out: one batch per trial, dispatched through `im_core`'s
/// sampler layer so the thread count never changes the outcomes (each trial
/// is seeded from `base_seed` and its own index, not from the batch PRNG).
fn run_trials_on(
    graph: &InfluenceGraph,
    algorithm: Algorithm,
    k: usize,
    trials: usize,
    base_seed: u64,
    threads: usize,
) -> Vec<RunOutcome> {
    let backend = match threads {
        0 => Backend::parallel(),
        1 => Backend::Sequential,
        n => Backend::Parallel { threads: n },
    };
    sampler::run_batches(
        &SampleBudget::with_batch_size(trials as u64, 1),
        base_seed,
        backend,
        || (),
        |(), batch, _| algorithm.run(graph, k, derive_seed(base_seed, batch.start)),
    )
}

/// All outcomes of `T` trials of one (algorithm, sample number, k)
/// configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrialBatch {
    /// The algorithm (with sample number) that was run.
    pub algorithm: Algorithm,
    /// The seed-set size `k`.
    pub seed_size: usize,
    /// One outcome per trial.
    pub outcomes: Vec<RunOutcome>,
}

impl TrialBatch {
    /// Number of trials.
    #[must_use]
    pub fn num_trials(&self) -> usize {
        self.outcomes.len()
    }

    /// The empirical seed-set distribution of the batch.
    #[must_use]
    pub fn seed_set_distribution(&self) -> EmpiricalDistribution<SeedSet> {
        self.outcomes.iter().map(|o| o.seeds.clone()).collect()
    }

    /// Mean traversal cost per trial (vertices, edges).
    #[must_use]
    pub fn mean_traversal_cost(&self) -> (f64, f64) {
        if self.outcomes.is_empty() {
            return (0.0, 0.0);
        }
        let n = self.outcomes.len() as f64;
        let v: u64 = self
            .outcomes
            .iter()
            .map(|o| o.traversal_cost.vertices)
            .sum();
        let e: u64 = self.outcomes.iter().map(|o| o.traversal_cost.edges).sum();
        (v as f64 / n, e as f64 / n)
    }

    /// Mean sample size per trial (vertices + edges stored).
    #[must_use]
    pub fn mean_sample_size(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        let total: u64 = self.outcomes.iter().map(|o| o.sample_size.total()).sum();
        total as f64 / self.outcomes.len() as f64
    }
}

/// The analysis of one sample number: distribution, entropy, influence
/// statistics and cost aggregates.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SampleAnalysis {
    /// The sample number (β, τ or θ).
    pub sample_number: u64,
    /// Number of trials analysed.
    pub trials: usize,
    /// Shannon entropy of the seed-set distribution.
    pub entropy: f64,
    /// Number of distinct seed sets observed.
    pub distinct_seed_sets: usize,
    /// The most frequent seed set and its empirical probability.
    pub modal_seed_set: Option<(SeedSet, f64)>,
    /// Oracle influence of every trial's seed set (the influence distribution).
    pub influences: Vec<f64>,
    /// Summary statistics of the influence distribution.
    pub influence_stats: SummaryStats,
    /// Mean traversal cost per trial.
    pub mean_traversal_vertices: f64,
    /// Mean edge-traversal cost per trial.
    pub mean_traversal_edges: f64,
    /// Mean sample size per trial (vertices + edges stored in memory).
    pub mean_sample_size: f64,
}

impl SampleAnalysis {
    /// Analyse one trial batch against the shared oracle.
    #[must_use]
    pub fn from_batch(batch: &TrialBatch, oracle: &InfluenceOracle) -> Self {
        assert!(!batch.outcomes.is_empty(), "cannot analyse an empty batch");
        let distribution = batch.seed_set_distribution();
        let influences: Vec<f64> = batch
            .outcomes
            .iter()
            .map(|o| oracle.estimate_seed_set(&o.seeds))
            .collect();
        let (v, e) = batch.mean_traversal_cost();
        let modal_seed_set = distribution
            .mode()
            .map(|(s, c)| (s.clone(), c as f64 / distribution.num_trials() as f64));
        Self {
            sample_number: batch.algorithm.sample_number(),
            trials: batch.num_trials(),
            entropy: distribution.entropy(),
            distinct_seed_sets: distribution.num_distinct(),
            modal_seed_set,
            influence_stats: SummaryStats::from_values(&influences),
            influences,
            mean_traversal_vertices: v,
            mean_traversal_edges: e,
            mean_sample_size: batch.mean_sample_size(),
        }
    }

    /// Fraction of trials whose influence reached `threshold` (the Table 5
    /// near-optimality criterion uses `0.95 × exact greedy`).
    #[must_use]
    pub fn fraction_at_least(&self, threshold: f64) -> f64 {
        SummaryStats::fraction_at_least(&self.influences, threshold)
    }
}

/// The analysed sweep of one approach on one instance at one seed size.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AnalyzedSweep {
    /// The approach that was swept.
    pub approach: ApproachKind,
    /// The seed-set size `k`.
    pub seed_size: usize,
    /// One analysis per sample number, in increasing sample-number order.
    pub analyses: Vec<SampleAnalysis>,
}

impl AnalyzedSweep {
    /// The entropy-decay curve (Figures 1–3).
    #[must_use]
    pub fn entropy_curve(&self) -> Vec<EntropyPoint> {
        self.analyses
            .iter()
            .map(|a| EntropyPoint {
                sample_number: a.sample_number,
                entropy: a.entropy,
            })
            .collect()
    }

    /// The mean-influence sample curve used by the comparable-ratio analysis
    /// (Figures 7–8, Tables 6–7).
    #[must_use]
    pub fn sample_curve(&self) -> SampleCurve {
        let mut curve = SampleCurve::new();
        for a in &self.analyses {
            curve.push(a.sample_number, a.influence_stats.mean, a.mean_sample_size);
        }
        curve
    }

    /// The least sample number at which at least `confidence` of the trials
    /// reached `threshold` influence (Table 5), along with its entropy.
    #[must_use]
    pub fn least_sample_number_reaching(
        &self,
        threshold: f64,
        confidence: f64,
    ) -> Option<(u64, f64)> {
        self.analyses
            .iter()
            .find(|a| a.fraction_at_least(threshold) >= confidence)
            .map(|a| (a.sample_number, a.entropy))
    }

    /// The analysis at a specific sample number, if present.
    #[must_use]
    pub fn at(&self, sample_number: u64) -> Option<&SampleAnalysis> {
        self.analyses
            .iter()
            .find(|a| a.sample_number == sample_number)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imnet::{Dataset, ProbabilityModel};

    fn karate_instance() -> PreparedInstance {
        PreparedInstance::prepare(
            InstanceConfig::new(Dataset::Karate, ProbabilityModel::uc01()),
            5_000,
            7,
        )
    }

    #[test]
    fn prepared_instance_basics() {
        let inst = karate_instance();
        assert_eq!(inst.graph.num_vertices(), 34);
        assert_eq!(inst.label(), "Karate (uc0.1)");
        let (seeds, influence) = inst.exact_greedy(1);
        assert_eq!(seeds.len(), 1);
        assert!(influence > 1.0 && influence < 34.0);
    }

    #[test]
    fn trial_batches_are_reproducible_and_distinct_across_trials() {
        let inst = karate_instance();
        let alg = Algorithm::Ris { theta: 8 };
        let a = inst.run_trials(alg, 1, 20, 3, false);
        let b = inst.run_trials(alg, 1, 20, 3, false);
        assert_eq!(a.outcomes, b.outcomes, "same base seed ⇒ identical batch");
        let dist = a.seed_set_distribution();
        assert_eq!(dist.num_trials(), 20);
        assert!(
            dist.num_distinct() > 1,
            "θ = 8 on Karate should still produce diverse seed sets"
        );
    }

    #[test]
    fn parallel_and_serial_runs_agree() {
        let inst = karate_instance();
        let alg = Algorithm::Snapshot { tau: 4 };
        let serial = inst.run_trials(alg, 2, 12, 11, false);
        let parallel = inst.run_trials(alg, 2, 12, 11, true);
        assert_eq!(serial.outcomes, parallel.outcomes);
    }

    #[test]
    fn analysis_computes_entropy_and_influences() {
        let inst = karate_instance();
        let batch = inst.run_trials(Algorithm::Ris { theta: 64 }, 1, 30, 5, true);
        let analysis = SampleAnalysis::from_batch(&batch, &inst.oracle);
        assert_eq!(analysis.trials, 30);
        assert_eq!(analysis.influences.len(), 30);
        assert!(analysis.entropy >= 0.0);
        assert!(analysis.influence_stats.mean > 1.0);
        assert!(analysis.mean_sample_size > 0.0);
        assert!(analysis.fraction_at_least(0.0) >= 0.999);
        let (_, modal_prob) = analysis.modal_seed_set.clone().unwrap();
        assert!(modal_prob > 0.0 && modal_prob <= 1.0);
    }

    #[test]
    fn sweep_entropy_decreases_and_influence_increases() {
        let inst = karate_instance();
        let sweep = SweepConfig {
            sample_numbers: vec![1, 64, 1024],
            trials: 40,
            base_seed: 1,
            threads: 0,
        };
        let analyzed = inst.sweep(ApproachKind::Ris, 1, &sweep);
        assert_eq!(analyzed.analyses.len(), 3);
        let curve = analyzed.entropy_curve();
        assert!(
            curve.first().unwrap().entropy >= curve.last().unwrap().entropy,
            "entropy should not increase from θ=1 to θ=1024"
        );
        let means: Vec<f64> = analyzed
            .analyses
            .iter()
            .map(|a| a.influence_stats.mean)
            .collect();
        assert!(
            means[2] >= means[0],
            "mean influence should improve with more samples"
        );
        let sample_curve = analyzed.sample_curve();
        assert_eq!(sample_curve.len(), 3);
        assert!(analyzed.at(64).is_some());
        assert!(analyzed.at(65).is_none());
    }

    #[test]
    fn least_sample_number_reaching_matches_definition() {
        // A larger oracle pool than the other tests: the 0.95-near-optimality
        // margin on Karate is only ≈ 0.2 influence, so the oracle's own 99 %
        // half-width (1.29·n/√pool) must be well below that.
        let inst = PreparedInstance::prepare(
            InstanceConfig::new(Dataset::Karate, ProbabilityModel::uc01()),
            120_000,
            7,
        );
        let sweep = SweepConfig {
            sample_numbers: vec![1, 256],
            trials: 30,
            base_seed: 2,
            threads: 0,
        };
        let analyzed = inst.sweep(ApproachKind::Snapshot, 1, &sweep);
        let (_, exact) = inst.exact_greedy(1);
        // With τ = 256 on Karate, essentially every trial should be
        // near-optimal.
        let hit = analyzed.least_sample_number_reaching(0.95 * exact, 0.9);
        assert!(hit.is_some());
        assert!(analyzed
            .least_sample_number_reaching(f64::MAX, 0.9)
            .is_none());
    }
}
