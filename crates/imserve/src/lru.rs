//! A small bounded LRU cache for seed-set selection results.
//!
//! Seed-set selection (`TopK`) is the expensive query path — greedy maximum
//! coverage over the whole RR-set pool — while `Estimate` is a cheap posting-
//! list merge, so only `TopK` results are cached. The cache is tiny (distinct
//! `(graph, model, k, algorithm)` combinations number in the dozens), so a
//! linear eviction scan is simpler and faster than an intrusive list.

use std::collections::HashMap;
use std::hash::Hash;

/// A bounded map evicting the least-recently-used entry on overflow.
#[derive(Debug)]
pub struct LruCache<K, V> {
    capacity: usize,
    tick: u64,
    map: HashMap<K, (V, u64)>,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// A cache holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "LRU cache needs positive capacity");
        Self {
            capacity,
            tick: 0,
            map: HashMap::with_capacity(capacity),
        }
    }

    /// Look up `key`, marking it most-recently-used on a hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        self.tick += 1;
        let tick = self.tick;
        match self.map.get_mut(key) {
            Some((value, used)) => {
                *used = tick;
                Some(value)
            }
            None => None,
        }
    }

    /// Insert `key -> value`, evicting the least-recently-used entry if the
    /// cache is full and `key` is new.
    pub fn insert(&mut self, key: K, value: V) {
        self.tick += 1;
        if self.map.len() == self.capacity && !self.map.contains_key(&key) {
            if let Some(oldest) = self
                .map
                .iter()
                .min_by_key(|(_, (_, used))| *used)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&oldest);
            }
        }
        self.map.insert(key, (value, self.tick));
    }

    /// Number of cached entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_and_miss() {
        let mut cache: LruCache<u32, &'static str> = LruCache::new(2);
        assert!(cache.is_empty());
        cache.insert(1, "one");
        assert_eq!(cache.get(&1), Some(&"one"));
        assert_eq!(cache.get(&2), None);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.capacity(), 2);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut cache: LruCache<u32, u32> = LruCache::new(2);
        cache.insert(1, 10);
        cache.insert(2, 20);
        // Touch 1 so 2 becomes the LRU entry.
        assert_eq!(cache.get(&1), Some(&10));
        cache.insert(3, 30);
        assert_eq!(cache.get(&2), None, "2 was least recently used");
        assert_eq!(cache.get(&1), Some(&10));
        assert_eq!(cache.get(&3), Some(&30));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn reinserting_an_existing_key_does_not_evict() {
        let mut cache: LruCache<u32, u32> = LruCache::new(2);
        cache.insert(1, 10);
        cache.insert(2, 20);
        cache.insert(1, 11);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get(&1), Some(&11));
        assert_eq!(cache.get(&2), Some(&20));
    }

    #[test]
    #[should_panic(expected = "positive capacity")]
    fn zero_capacity_panics() {
        let _: LruCache<u32, u32> = LruCache::new(0);
    }
}
