//! Heuristic baselines versus the three sampling approaches.
//!
//! ```text
//! cargo run --release --example heuristics_vs_sampling
//! ```
//!
//! Section 3.6 of the paper sets heuristics aside with one sentence: they are
//! "faster than the three approaches, but resulting seed sets have less
//! influence". This example quantifies that sentence on a dense
//! Barabási–Albert network under two probability models: every heuristic in
//! `imheur` (plus the sketch-space greedy from `imsketch`) is run once, every
//! sampling approach is run at a moderate sample number, and all seed sets are
//! scored by one shared influence oracle.

use im_study::prelude::*;
use imheur::{
    DegreeDiscount, IrieSelector, MaxDegree, PageRankSelector, RandomSelector, SingleDiscount,
    WeightedDegree,
};

fn main() {
    let k = 8;
    let base = Dataset::BaDense.build(7);
    for model in [
        ProbabilityModel::uc001(),
        ProbabilityModel::InDegreeWeighted,
    ] {
        let graph = model.assign(&base);
        let mut rng = default_rng(11);
        let oracle = InfluenceOracle::builder(300_000).sample_with_rng(&graph, &mut rng);
        let (greedy_seeds, greedy_influence) = oracle.greedy_seed_set(k);
        println!(
            "\nBA_d under {} — n = {}, m = {}, k = {k}",
            model.label(),
            graph.num_vertices(),
            graph.num_edges()
        );
        println!(
            "exact-greedy reference: {:.2} (seeds {})",
            greedy_influence,
            SeedSet::new(greedy_seeds)
        );
        println!(
            "{:<18} {:>12} {:>12} {:>14}",
            "method", "influence", "% of greedy", "edges touched"
        );

        // Heuristic baselines.
        let selectors: Vec<(&str, Box<dyn SeedSelector>)> = vec![
            ("MaxDegree", Box::new(MaxDegree)),
            ("WeightedDegree", Box::new(WeightedDegree)),
            ("SingleDiscount", Box::new(SingleDiscount)),
            (
                "DegreeDiscount",
                Box::new(DegreeDiscount::with_mean_probability(&graph)),
            ),
            ("PageRank", Box::new(PageRankSelector::default())),
            ("IRIE", Box::new(IrieSelector::default())),
            ("Random", Box::new(RandomSelector::new(3))),
        ];
        for (name, selector) in &selectors {
            let result = selector.select(&graph, k);
            let influence = oracle.estimate(&result.seeds);
            println!(
                "{:<18} {:>12.2} {:>11.1}% {:>14}",
                name,
                influence,
                100.0 * influence / greedy_influence,
                result.edges_examined
            );
        }

        // Sketch-space greedy (simplified SKIM).
        let sketch = SketchGreedy::new(64, 32).select(&graph, k, &mut default_rng(21));
        let sketch_influence = oracle.estimate(&sketch.seeds);
        println!(
            "{:<18} {:>12.2} {:>11.1}% {:>14}",
            "SketchGreedy",
            sketch_influence,
            100.0 * sketch_influence / greedy_influence,
            sketch.traversal_cost
        );

        // The three sampling approaches at moderate sample numbers.
        for algorithm in [
            Algorithm::Oneshot { beta: 64 },
            Algorithm::Snapshot { tau: 128 },
            Algorithm::Ris { theta: 65_536 },
        ] {
            let outcome = algorithm.run(&graph, k, 99);
            let influence = oracle.estimate_seed_set(&outcome.seeds);
            println!(
                "{:<18} {:>12.2} {:>11.1}% {:>14}",
                algorithm.to_string(),
                influence,
                100.0 * influence / greedy_influence,
                outcome.traversal_cost.edges
            );
        }
    }
    println!("\nTake-away: on a hub-dominated BA network the degree-aware heuristics track exact");
    println!("greedy while touching orders of magnitude fewer edges, the zero-information Random");
    println!(
        "baseline collapses, and the three sampling approaches reach greedy quality at modest"
    );
    println!(
        "sample numbers — the regime where their trade-offs (Sections 3.6 and 5.2) start to matter"
    );
    println!("is low-probability or structurally flat instances, which the quickstart and the");
    println!("solution_distribution examples explore.");
}
