//! Ablation: the Snapshot subgraph-reduction Update optimisation of
//! Section 3.4.3 on vs off.

use criterion::{criterion_group, criterion_main, Criterion};
use im_core::{greedy_select, InfluenceEstimator, SnapshotEstimator};
use imnet::ProbabilityModel;
use imrand::Pcg32;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let instance = im_bench::ba_dense(ProbabilityModel::uc01());
    let graph = &instance.graph;

    println!("\n--- Ablation: Snapshot subgraph reduction (BA_d uc0.1, k = 8, tau = 16) ---");
    for (label, reduction) in [("with reduction", true), ("without reduction", false)] {
        let mut sampling = Pcg32::seed_from_u64(3);
        let mut estimator = SnapshotEstimator::with_options(graph, 16, &mut sampling, reduction);
        let result = greedy_select(&mut estimator, 8, &mut Pcg32::seed_from_u64(4));
        println!(
            "{label:<18} traversal = {} vertices / {} edges, seeds = {}",
            estimator.traversal_cost().vertices,
            estimator.traversal_cost().edges,
            result.seed_set(),
        );
    }

    let mut group = c.benchmark_group("ablation_snapshot_reduction");
    group.sample_size(10);
    for (label, reduction) in [("reduced", true), ("naive", false)] {
        group.bench_function(format!("greedy_k8_tau16/{label}"), |b| {
            b.iter(|| {
                let mut sampling = Pcg32::seed_from_u64(3);
                let mut estimator =
                    SnapshotEstimator::with_options(graph, 16, &mut sampling, reduction);
                black_box(greedy_select(
                    &mut estimator,
                    8,
                    &mut Pcg32::seed_from_u64(4),
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
