//! Shared fixtures for the `imserve` integration suites.
//!
//! Every test binary compiles this module independently (`mod fixtures;`),
//! so helpers here must stay std-only and dependency-free. The goal is
//! deflaking: one blessed way to mint collision-free temp paths (tests in
//! one binary run concurrently, and several binaries run at once under
//! `cargo test`), one blessed way to spawn a server on an ephemeral port
//! (with a retry loop for the rare bind race when a pinned port is reused),
//! and scope guards that reap servers and temp files even when an assertion
//! panics mid-test.

#![allow(dead_code)] // each suite uses its own subset

use std::net::{SocketAddr, TcpStream};
use std::ops::Deref;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use imserve::engine::QueryEngine;
use imserve::index::{build_dataset_index, IndexArtifact};
use imserve::server::{self, ServerConfig, ServerHandle};

/// Process-wide sequence number feeding [`unique_path`]: two fixtures minted
/// in the same process never collide even within one clock tick.
static SEQ: AtomicU32 = AtomicU32::new(0);

/// A temp-dir path that is unique across concurrently running test binaries
/// (pid) and across tests within one binary (sequence counter). The file is
/// *not* created; callers own the lifecycle — or use [`temp_path`] for a
/// self-reaping guard.
pub fn unique_path(tag: &str, ext: &str) -> PathBuf {
    let seq = SEQ.fetch_add(1, Ordering::SeqCst);
    std::env::temp_dir().join(format!("imserve_{tag}_{}_{seq}.{ext}", std::process::id()))
}

/// A unique temp path that removes whatever sits at it when dropped, so a
/// panicking test does not strand artifacts in the temp dir.
pub fn temp_path(tag: &str, ext: &str) -> TempPath {
    TempPath(unique_path(tag, ext))
}

/// Scope guard around a temp path (file or directory). Dereferences to
/// [`Path`]; best-effort removal on drop.
pub struct TempPath(PathBuf);

impl TempPath {
    /// The guarded path as a string (most fixture consumers feed CLI-style
    /// APIs taking `&str`).
    pub fn as_str(&self) -> &str {
        self.0.to_str().expect("temp paths are valid UTF-8")
    }
}

impl Deref for TempPath {
    type Target = Path;
    fn deref(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempPath {
    fn drop(&mut self) {
        if self.0.is_dir() {
            let _ = std::fs::remove_dir_all(&self.0);
        } else {
            let _ = std::fs::remove_file(&self.0);
        }
    }
}

/// The blessed small test index: the Karate graph under `uc0.1`. Builds are
/// deterministic per (pool, seed), so two calls return byte-identical
/// artifacts — the reference-vs-served comparisons rely on that.
pub fn karate(pool: usize, seed: u64) -> IndexArtifact {
    build_dataset_index("karate", "uc0.1", pool, seed).expect("karate index builds")
}

/// Build → save → load the Karate index, covering the persistence path, and
/// hand back the *loaded* artifact (the one a real server would run from).
/// The on-disk copy is reaped immediately — the artifact is in memory.
pub fn karate_from_disk(pool: usize, seed: u64) -> IndexArtifact {
    let built = karate(pool, seed);
    let path = temp_path("fixture_index", "imx");
    built.save(path.as_str()).expect("artifact saves");
    IndexArtifact::load(path.as_str()).expect("artifact loads")
}

/// Spawn the threaded front end for `engine` on an ephemeral loopback port,
/// retrying the bind a few times: `127.0.0.1:0` itself cannot race, but
/// fixtures that re-bind a just-released pinned port (server restarts) can,
/// and funneling every spawn through one helper keeps the retry policy in
/// one place.
pub fn spawn_server(addr: &str, engine: Arc<QueryEngine>, workers: usize) -> ServerGuard {
    let config = ServerConfig {
        workers,
        ..ServerConfig::default()
    };
    let mut last_error = None;
    for _ in 0..100 {
        match server::spawn(addr, Arc::clone(&engine), &config) {
            Ok(handle) => return ServerGuard(Some(handle)),
            Err(e) => {
                last_error = Some(e);
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
    panic!("could not bind {addr} after 100 attempts: {last_error:?}");
}

/// Build an engine over `artifact` and serve it on an ephemeral port — the
/// one-liner most suites want.
pub fn serve_artifact(artifact: IndexArtifact, workers: usize) -> ServerGuard {
    let engine = Arc::new(
        QueryEngine::builder(artifact)
            .build()
            .expect("engine builds"),
    );
    spawn_server("127.0.0.1:0", engine, workers)
}

/// Scope guard around a [`ServerHandle`]: shuts the server down on drop, so
/// a panicking test reaps its acceptor and worker threads instead of leaking
/// them into the next test's timing.
pub struct ServerGuard(Option<ServerHandle>);

impl ServerGuard {
    /// The server's resolved listen address.
    pub fn addr(&self) -> SocketAddr {
        self.0.as_ref().expect("server running").addr()
    }

    /// Shut down eagerly (idempotent with the drop guard).
    pub fn shutdown(mut self) {
        if let Some(handle) = self.0.take() {
            handle.shutdown();
        }
    }
}

impl Drop for ServerGuard {
    fn drop(&mut self) {
        if let Some(handle) = self.0.take() {
            handle.shutdown();
        }
    }
}

/// Poll until something accepts TCP connections at `addr` (readiness for
/// fixtures that spawn a server indirectly, e.g. through the CLI).
pub fn wait_listening(addr: SocketAddr) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if TcpStream::connect_timeout(&addr, Duration::from_millis(100)).is_ok() {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "nothing listening at {addr} within 10s"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}
