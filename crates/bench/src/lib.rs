//! Shared fixtures for the Criterion benches.
//!
//! Each bench target in `benches/` regenerates the series of one table or
//! figure of the paper at a reduced scale *and* measures the wall-clock cost
//! of the kernel that dominates that experiment. The fixtures here keep the
//! bench bodies small and make sure every bench uses the same instances and
//! seeds, so numbers are comparable across benches.

use im_core::InfluenceOracle;
use imexp::{InstanceConfig, PreparedInstance, SweepConfig};
use imgraph::InfluenceGraph;
use imnet::{Dataset, ProbabilityModel};

/// The Karate club under a given probability model, with a medium oracle.
#[must_use]
pub fn karate(model: ProbabilityModel) -> PreparedInstance {
    PreparedInstance::prepare(InstanceConfig::new(Dataset::Karate, model), 50_000, 17)
}

/// The Physicians analog under a given probability model.
#[must_use]
pub fn physicians(model: ProbabilityModel) -> PreparedInstance {
    PreparedInstance::prepare(InstanceConfig::new(Dataset::Physicians, model), 50_000, 17)
}

/// A scaled-down ca-GrQc analog (factor 8) under a given probability model.
#[must_use]
pub fn grqc_small(model: ProbabilityModel) -> PreparedInstance {
    PreparedInstance::prepare(
        InstanceConfig::scaled(Dataset::CaGrQc, model, 8),
        50_000,
        17,
    )
}

/// The BA_d synthetic network under a given probability model.
#[must_use]
pub fn ba_dense(model: ProbabilityModel) -> PreparedInstance {
    PreparedInstance::prepare(InstanceConfig::new(Dataset::BaDense, model), 50_000, 17)
}

/// The BA_s synthetic network under a given probability model.
#[must_use]
pub fn ba_sparse(model: ProbabilityModel) -> PreparedInstance {
    PreparedInstance::prepare(InstanceConfig::new(Dataset::BaSparse, model), 50_000, 17)
}

/// A bare influence graph without an oracle (for benches that only need runs).
#[must_use]
pub fn graph(dataset: Dataset, model: ProbabilityModel) -> InfluenceGraph {
    dataset.influence_graph(model, 17)
}

/// A small sweep used by the figure benches: powers of two up to `2^max_exp`,
/// `trials` trials each, serial execution so Criterion timings are stable.
#[must_use]
pub fn small_sweep(max_exp: u32, trials: usize) -> SweepConfig {
    SweepConfig::powers_of_two(max_exp, trials).with_parallel(false)
}

/// A tiny oracle for benches that need one built inline.
#[must_use]
pub fn small_oracle(graph: &InfluenceGraph, pool: usize) -> InfluenceOracle {
    let mut rng = imrand::default_rng(29);
    InfluenceOracle::builder(pool).sample_with_rng(graph, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        let k = karate(ProbabilityModel::uc01());
        assert_eq!(k.graph.num_vertices(), 34);
        let g = grqc_small(ProbabilityModel::OutDegreeWeighted);
        assert!(g.graph.num_vertices() < 1_000);
        assert_eq!(small_sweep(3, 5).sample_numbers, vec![1, 2, 4, 8]);
        let oracle = small_oracle(&graph(Dataset::Karate, ProbabilityModel::uc001()), 1_000);
        assert_eq!(oracle.pool_size(), 1_000);
    }
}
