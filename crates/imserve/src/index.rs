//! The persisted index artifact: influence graph + RR-set pool + metadata.
//!
//! RIS's trade-off (small traversal cost, large storage) is exactly what makes
//! a precomputed index the right serving architecture: the expensive part —
//! drawing the pool of RR sets — happens once in `imserve build`, and every
//! later `imserve serve` reloads the pool from disk in milliseconds instead of
//! resampling for minutes. The load path is structurally incapable of
//! sampling: it receives bytes only, never a graph generator or an RNG.
//!
//! On-disk layout (framing from `imgraph::binio`):
//!
//! ```text
//! magic "IMSX" | version | META (JSON)   — graph_id, model, dimensions, seed
//!                        | GRPH (nested) — InfluenceGraph artifact ("IMGB")
//!                        | POOL (nested) — RR-set pool artifact ("IMPL")
//!                        | checksum
//! ```
//!
//! The nested artifacts carry their own magic and checksum, so each layer can
//! also be produced and validated independently.

use std::path::Path;

use im_core::sampler::Backend;
use im_core::InfluenceOracle;
use imgraph::binio::{
    self, influence_graph_from_bytes, influence_graph_to_bytes, BinError, BinReader, BinWriter,
};
use imgraph::InfluenceGraph;
use imnet::{Dataset, ProbabilityModel};
use serde::{Deserialize, Serialize};

use crate::error::ServeError;

/// Magic bytes of a serialized index artifact.
pub const INDEX_MAGIC: [u8; 4] = *b"IMSX";
/// Current index format version.
pub const INDEX_VERSION: u32 = 1;

const META_TAG: [u8; 4] = *b"META";
const GRAPH_TAG: [u8; 4] = *b"GRPH";
const POOL_TAG: [u8; 4] = *b"POOL";

/// Descriptive metadata persisted with (and keyed into) every index.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IndexMeta {
    /// Stable identifier of the graph the index was built from (dataset name
    /// for registry builds, caller-chosen for ad-hoc graphs).
    pub graph_id: String,
    /// Label of the edge-probability model (`uc0.1`, `iwc`, …).
    pub model: String,
    /// Number of vertices of the indexed graph.
    pub num_vertices: usize,
    /// Number of edges of the indexed graph.
    pub num_edges: usize,
    /// Number of RR sets in the persisted pool.
    pub pool_size: usize,
    /// Base seed the pool was drawn from (provenance; never used on load).
    pub base_seed: u64,
}

/// A complete loaded index: metadata, graph and the shared RR-set oracle.
#[derive(Debug, Clone)]
pub struct IndexArtifact {
    /// Persisted metadata.
    pub meta: IndexMeta,
    /// The influence graph the pool was sampled from.
    pub graph: InfluenceGraph,
    /// The shared estimator over the persisted RR-set pool.
    pub oracle: InfluenceOracle,
}

impl IndexArtifact {
    /// Build a fresh index: sample `pool_size` RR sets from `graph` with the
    /// batched sampler (deterministic per `base_seed`, parallel when the
    /// `parallel` feature provides worker threads).
    ///
    /// # Panics
    ///
    /// Panics if `pool_size == 0` or the graph is empty (the oracle's own
    /// build contract).
    #[must_use]
    pub fn build(
        graph_id: &str,
        model: &str,
        graph: InfluenceGraph,
        pool_size: usize,
        base_seed: u64,
    ) -> Self {
        let oracle =
            InfluenceOracle::build_with_backend(&graph, pool_size, base_seed, default_backend());
        let meta = IndexMeta {
            graph_id: graph_id.to_string(),
            model: model.to_string(),
            num_vertices: graph.num_vertices(),
            num_edges: graph.num_edges(),
            pool_size,
            base_seed,
        };
        Self {
            meta,
            graph,
            oracle,
        }
    }

    /// Serialize the artifact to the binary index format.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = BinWriter::new(INDEX_MAGIC, INDEX_VERSION);
        let meta_json =
            serde_json::to_string(&self.meta).expect("index metadata always serializes");
        w.section(META_TAG, meta_json.as_bytes());
        w.section(GRAPH_TAG, &influence_graph_to_bytes(&self.graph));
        w.section(POOL_TAG, &self.oracle.to_bytes());
        w.finish()
    }

    /// Deserialize an artifact written by [`IndexArtifact::to_bytes`].
    ///
    /// Pure decoding: no sampling, no RNG, no graph traversal beyond the CSR
    /// rebuild. Cross-checks the metadata against the decoded graph and pool
    /// so a mismatched splice of two valid artifacts is rejected.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, BinError> {
        let sections = BinReader::new(bytes, INDEX_MAGIC, INDEX_VERSION)?.sections()?;

        let meta_payload = binio::require_section(&sections, META_TAG)?;
        let meta_str = std::str::from_utf8(meta_payload.rest())
            .map_err(|e| BinError::Corrupt(format!("metadata is not UTF-8: {e}")))?;
        let meta: IndexMeta = serde_json::from_str(meta_str)
            .map_err(|e| BinError::Corrupt(format!("metadata does not parse: {e}")))?;

        let graph_payload = binio::require_section(&sections, GRAPH_TAG)?;
        let graph = influence_graph_from_bytes(graph_payload.rest())?;

        let pool_payload = binio::require_section(&sections, POOL_TAG)?;
        let oracle = InfluenceOracle::from_bytes(pool_payload.rest())?;

        if graph.num_vertices() != meta.num_vertices || graph.num_edges() != meta.num_edges {
            return Err(BinError::Corrupt(format!(
                "metadata claims {}x{} but graph is {}x{}",
                meta.num_vertices,
                meta.num_edges,
                graph.num_vertices(),
                graph.num_edges()
            )));
        }
        if oracle.num_vertices() != graph.num_vertices() {
            return Err(BinError::Corrupt(format!(
                "pool indexes {} vertices but graph has {}",
                oracle.num_vertices(),
                graph.num_vertices()
            )));
        }
        if oracle.pool_size() != meta.pool_size {
            return Err(BinError::Corrupt(format!(
                "metadata claims pool of {} but pool holds {}",
                meta.pool_size,
                oracle.pool_size()
            )));
        }

        Ok(Self {
            meta,
            graph,
            oracle,
        })
    }

    /// Write the artifact to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), ServeError> {
        std::fs::write(path, self.to_bytes()).map_err(ServeError::from)
    }

    /// Read an artifact from a file.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, ServeError> {
        Ok(Self::from_bytes(&std::fs::read(path)?)?)
    }
}

/// The sampling backend used for index builds.
fn default_backend() -> Backend {
    #[cfg(feature = "parallel")]
    {
        Backend::parallel()
    }
    #[cfg(not(feature = "parallel"))]
    {
        Backend::Sequential
    }
}

/// Parse a dataset name as accepted by `imserve build --dataset`.
///
/// Accepts the paper's names case-insensitively plus common aliases
/// (`karate`, `ba_s`/`ba-sparse`, `ba_d`/`ba-dense`, …).
pub fn parse_dataset(name: &str) -> Result<Dataset, ServeError> {
    let normalized = name.to_ascii_lowercase().replace('_', "-");
    let dataset = match normalized.as_str() {
        "karate" => Dataset::Karate,
        "physicians" => Dataset::Physicians,
        "ca-grqc" | "cagrqc" => Dataset::CaGrQc,
        "wiki-vote" | "wikivote" => Dataset::WikiVote,
        "com-youtube" | "comyoutube" => Dataset::ComYoutube,
        "soc-pokec" | "socpokec" => Dataset::SocPokec,
        "ba-s" | "ba-sparse" | "basparse" => Dataset::BaSparse,
        "ba-d" | "ba-dense" | "badense" => Dataset::BaDense,
        _ => {
            return Err(ServeError::Build(format!(
                "unknown dataset {name:?} (expected one of: karate, physicians, ca-grqc, \
                 wiki-vote, com-youtube, soc-pokec, ba-s, ba-d)"
            )))
        }
    };
    Ok(dataset)
}

/// Parse a probability-model label as accepted by `imserve build --model`.
///
/// Accepts the paper's labels: `uc0.1`, `uc0.01`, a general `uc<p>`, `iwc`
/// and `owc`.
pub fn parse_model(label: &str) -> Result<ProbabilityModel, ServeError> {
    match label {
        "iwc" => return Ok(ProbabilityModel::InDegreeWeighted),
        "owc" => return Ok(ProbabilityModel::OutDegreeWeighted),
        _ => {}
    }
    if let Some(p) = label.strip_prefix("uc") {
        let p: f64 = p.parse().map_err(|_| {
            ServeError::Build(format!(
                "malformed uniform-cascade probability in {label:?}"
            ))
        })?;
        if !(p > 0.0 && p <= 1.0) {
            return Err(ServeError::Build(format!(
                "uniform-cascade probability {p} out of (0, 1]"
            )));
        }
        return Ok(ProbabilityModel::Uniform(p));
    }
    Err(ServeError::Build(format!(
        "unknown probability model {label:?} (expected uc<p>, iwc or owc)"
    )))
}

/// Build an index for a registry dataset (`imserve build`'s core).
pub fn build_dataset_index(
    dataset: &str,
    model: &str,
    pool_size: usize,
    base_seed: u64,
) -> Result<IndexArtifact, ServeError> {
    if pool_size == 0 {
        return Err(ServeError::Build("pool size must be positive".into()));
    }
    let ds = parse_dataset(dataset)?;
    let pm = parse_model(model)?;
    let graph = ds.influence_graph(pm, base_seed);
    Ok(IndexArtifact::build(
        ds.name(),
        &pm.label(),
        graph,
        pool_size,
        base_seed,
    ))
}
