//! One driver per table/figure of the paper's evaluation.
//!
//! | Driver | Paper content |
//! |---|---|
//! | [`table1`] | theoretical per-sample traversal-cost model (Table 1) |
//! | [`table3`] | network statistics (Table 3) |
//! | [`entropy::fig1`] | entropy decay on Karate, k ∈ {1, 4, 16} (Figure 1) |
//! | [`entropy::fig2`] | entropy plateaus (Figure 2) |
//! | [`entropy::fig3`] | entropy decay per probability model on BA_s/BA_d (Figure 3) |
//! | [`influence::table4`] | top-3 single-vertex influence (Table 4) |
//! | [`influence::fig4`] | influence box plots on Physicians (Figure 4) |
//! | [`least_samples::table5`] | least sample number for near-optimal seeds (Table 5) |
//! | [`influence::fig5`] | convergence contrast on ca-GrQc (Figure 5) |
//! | [`influence::fig6`] | mean vs SD / 1st percentile (Figure 6) |
//! | [`comparable::table6`] | Oneshot↔Snapshot comparable ratios (Figure 7, Table 6) |
//! | [`comparable::table7`] | RIS↔Snapshot comparable ratios (Figure 8, Table 7) |
//! | [`traversal::table8`] | per-sample traversal cost (Table 8) |
//! | [`traversal::table9`] | traversal cost at identical accuracy (Table 9) |
//! | [`least_samples::bound_gap`] | worst-case bound vs empirical gap (Section 5.2.1) |
//! | [`extensions::heuristics`] | §3.6 heuristic baselines vs oracle greedy (extension) |
//! | [`extensions::determination`] | §7 sample-number determination vs empirical requirement (extension) |
//! | [`evolve`] | incremental RR-set maintenance vs full rebuild under graph mutation (extension) |
//! | [`compaction`] | batched mutation + delta-log compaction vs per-delta apply and rebuild (extension) |

pub mod compaction;
pub mod comparable;
pub mod entropy;
pub mod evolve;
pub mod extensions;
pub mod influence;
pub mod least_samples;
pub mod table1;
pub mod table3;
pub mod traversal;

use imnet::{Dataset, DatasetSpec, ProbabilityModel};
use serde::{Deserialize, Serialize};

use crate::config::{ExperimentScale, InstanceConfig};
use crate::report::TextTable;

/// The result of one experiment driver: a set of text tables mirroring the
/// corresponding figure/table of the paper, plus free-form notes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExperimentReport {
    /// Short identifier (`"fig1"`, `"table8"`, …).
    pub id: String,
    /// What the experiment reproduces.
    pub description: String,
    /// The rendered tables.
    pub tables: Vec<TextTable>,
    /// Free-form observations produced by the driver (convergence points,
    /// detected plateaus, …).
    pub notes: Vec<String>,
}

impl ExperimentReport {
    /// Create an empty report.
    #[must_use]
    pub fn new(id: impl Into<String>, description: impl Into<String>) -> Self {
        Self {
            id: id.into(),
            description: description.into(),
            tables: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Render every table and note as one text block.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = format!("== {} — {} ==\n\n", self.id, self.description);
        for table in &self.tables {
            out.push_str(&table.render());
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str("note: ");
            out.push_str(note);
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for ExperimentReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.render())
    }
}

/// The dataset specification an experiment should use at a given scale:
/// exact data sets are untouched, analogs are scaled down by the scale's
/// factor (1 at paper scale).
#[must_use]
pub fn spec_for(dataset: Dataset, scale: ExperimentScale) -> DatasetSpec {
    let default = dataset.spec();
    if dataset.is_exact() || default.num_vertices <= 1_000 {
        default
    } else {
        let factor = scale.analog_scale_factor();
        if factor <= 1 {
            dataset.spec()
        } else {
            // Scale relative to the *default* spec (which already shrinks the
            // two web-scale networks), not the original Table 3 size.
            let default = dataset.spec();
            DatasetSpec {
                dataset,
                num_vertices: (default.num_vertices / factor).max(64),
                num_edges: (default.num_edges / factor).max(64),
            }
        }
    }
}

/// An instance configuration at the given scale.
#[must_use]
pub fn instance_for(
    dataset: Dataset,
    model: ProbabilityModel,
    scale: ExperimentScale,
) -> InstanceConfig {
    InstanceConfig {
        spec: spec_for(dataset, scale),
        model,
        dataset_seed: 0,
    }
}

/// Number of trials appropriate for a dataset at a scale (the paper uses
/// 1,000 for small networks and 20 for the ⋆-marked large ones).
#[must_use]
pub fn trials_for(dataset: Dataset, scale: ExperimentScale) -> usize {
    if dataset.is_large() {
        scale.trials_large()
    } else {
        scale.trials_small()
    }
}

/// The registry of all experiment drivers, used by the `imexp` binary and the
/// benches.
#[must_use]
pub fn experiment_names() -> Vec<&'static str> {
    vec![
        "table1",
        "table3",
        "fig1",
        "fig2",
        "fig3",
        "table4",
        "fig4",
        "table5",
        "fig5",
        "fig6",
        "table6",
        "table7",
        "table8",
        "table9",
        "bound_gap",
        "heuristics",
        "determination",
        "evolve",
        "compaction",
    ]
}

/// Run an experiment by name. Returns `None` for unknown names.
#[must_use]
pub fn run_by_name(name: &str, scale: ExperimentScale) -> Option<ExperimentReport> {
    let report = match name {
        "table1" => table1::run(scale),
        "table3" => table3::run(scale),
        "fig1" => entropy::fig1(scale),
        "fig2" => entropy::fig2(scale),
        "fig3" => entropy::fig3(scale),
        "table4" => influence::table4(scale),
        "fig4" => influence::fig4(scale),
        "table5" => least_samples::table5(scale),
        "fig5" => influence::fig5(scale),
        "fig6" => influence::fig6(scale),
        "table6" => comparable::table6(scale),
        "table7" => comparable::table7(scale),
        "table8" => traversal::table8(scale),
        "table9" => traversal::table9(scale),
        "bound_gap" => least_samples::bound_gap(scale),
        "heuristics" => extensions::heuristics(scale),
        "determination" => extensions::determination(scale),
        "evolve" => evolve::run(scale),
        "compaction" => compaction::run(scale),
        _ => return None,
    };
    Some(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_rendering_includes_tables_and_notes() {
        let mut report = ExperimentReport::new("demo", "demo experiment");
        let mut t = TextTable::new("T", &["a"]);
        t.add_row(vec!["1".into()]);
        report.tables.push(t);
        report.notes.push("something".into());
        let rendered = report.render();
        assert!(rendered.contains("== demo"));
        assert!(rendered.contains("note: something"));
        assert!(format!("{report}").contains("demo experiment"));
    }

    #[test]
    fn spec_for_scales_only_analogs() {
        let karate = spec_for(Dataset::Karate, ExperimentScale::Quick);
        assert_eq!(karate.num_vertices, 34);
        let wiki_quick = spec_for(Dataset::WikiVote, ExperimentScale::Quick);
        let wiki_paper = spec_for(Dataset::WikiVote, ExperimentScale::Paper);
        assert!(wiki_quick.num_vertices < wiki_paper.num_vertices);
        assert_eq!(wiki_paper.num_vertices, 7_115);
    }

    #[test]
    fn trials_distinguish_large_datasets() {
        assert_eq!(trials_for(Dataset::Karate, ExperimentScale::Paper), 1_000);
        assert_eq!(trials_for(Dataset::ComYoutube, ExperimentScale::Paper), 20);
    }

    #[test]
    fn registry_contains_every_paper_artifact() {
        let names = experiment_names();
        // 15 paper artifacts (Tables 1, 3–9, Figures 1–6 with 7/8 folded into
        // Tables 6/7, plus the bound-gap report) and 4 extension drivers.
        assert_eq!(names.len(), 19);
        assert!(names.contains(&"heuristics") && names.contains(&"determination"));
        assert!(names.contains(&"evolve") && names.contains(&"compaction"));
        assert!(run_by_name("definitely-not-an-experiment", ExperimentScale::Quick).is_none());
    }
}
