//! The MT19937 Mersenne Twister (Matsumoto & Nishimura, 1998).
//!
//! The paper's reference implementation drew all randomness from MT19937, so
//! this crate provides a faithful re-implementation: the state size (624
//! words), initialisation-by-seed recurrence and tempering transform match the
//! original `mt19937ar.c`, which means the generator is verifiable against the
//! published test vectors (see the unit tests at the bottom of this file).

use crate::traits::Rng32;

const N: usize = 624;
const M: usize = 397;
const MATRIX_A: u32 = 0x9908_B0DF;
const UPPER_MASK: u32 = 0x8000_0000;
const LOWER_MASK: u32 = 0x7FFF_FFFF;

/// The 32-bit Mersenne Twister generator with period `2^19937 - 1`.
///
/// The state is ~2.5 KiB; prefer [`crate::Pcg32`] when many generators are
/// held at once (e.g. one per snapshot worker).
#[derive(Clone)]
pub struct Mt19937 {
    state: Box<[u32; N]>,
    index: usize,
}

impl std::fmt::Debug for Mt19937 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mt19937")
            .field("index", &self.index)
            .finish_non_exhaustive()
    }
}

impl Mt19937 {
    /// Create a generator from a 32-bit seed using the reference `init_genrand`
    /// recurrence.
    #[must_use]
    pub fn new(seed: u32) -> Self {
        let mut state = Box::new([0u32; N]);
        state[0] = seed;
        for i in 1..N {
            // state[i] = 1812433253 * (state[i-1] ^ (state[i-1] >> 30)) + i
            state[i] = 1_812_433_253u32
                .wrapping_mul(state[i - 1] ^ (state[i - 1] >> 30))
                .wrapping_add(i as u32);
        }
        Self { state, index: N }
    }

    /// Create a generator from a 64-bit seed.
    ///
    /// The 64-bit seed is split into a two-word key and fed through the
    /// reference `init_by_array` procedure, so distinct 64-bit seeds yield
    /// well-separated states even when they share their low 32 bits.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let key = [(seed & 0xFFFF_FFFF) as u32, (seed >> 32) as u32];
        Self::from_key(&key)
    }

    /// Create a generator from an arbitrary-length key (reference
    /// `init_by_array`).
    #[must_use]
    pub fn from_key(key: &[u32]) -> Self {
        let mut mt = Self::new(19_650_218);
        let mut i = 1usize;
        let mut j = 0usize;
        let mut k = N.max(key.len());
        while k > 0 {
            let prev = mt.state[i - 1];
            mt.state[i] = (mt.state[i] ^ (prev ^ (prev >> 30)).wrapping_mul(1_664_525))
                .wrapping_add(key[j])
                .wrapping_add(j as u32);
            i += 1;
            j += 1;
            if i >= N {
                mt.state[0] = mt.state[N - 1];
                i = 1;
            }
            if j >= key.len() {
                j = 0;
            }
            k -= 1;
        }
        k = N - 1;
        while k > 0 {
            let prev = mt.state[i - 1];
            mt.state[i] = (mt.state[i] ^ (prev ^ (prev >> 30)).wrapping_mul(1_566_083_941))
                .wrapping_sub(i as u32);
            i += 1;
            if i >= N {
                mt.state[0] = mt.state[N - 1];
                i = 1;
            }
            k -= 1;
        }
        mt.state[0] = 0x8000_0000;
        mt.index = N;
        mt
    }

    /// Regenerate the state block of 624 words.
    fn twist(&mut self) {
        for i in 0..N {
            let x = (self.state[i] & UPPER_MASK) | (self.state[(i + 1) % N] & LOWER_MASK);
            let mut x_a = x >> 1;
            if x & 1 != 0 {
                x_a ^= MATRIX_A;
            }
            self.state[i] = self.state[(i + M) % N] ^ x_a;
        }
        self.index = 0;
    }
}

impl Rng32 for Mt19937 {
    fn next_u32(&mut self) -> u32 {
        if self.index >= N {
            self.twist();
        }
        let mut y = self.state[self.index];
        self.index += 1;
        // Tempering.
        y ^= y >> 11;
        y ^= (y << 7) & 0x9D2C_5680;
        y ^= (y << 15) & 0xEFC6_0000;
        y ^= y >> 18;
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference outputs of `mt19937ar.c` initialised with
    /// `init_genrand(5489)` (the C++11 `std::mt19937` default seed).
    #[test]
    fn matches_reference_vector_seed_5489() {
        let mut mt = Mt19937::new(5489);
        let expected_first = [
            3_499_211_612u32,
            581_869_302,
            3_890_346_734,
            3_586_334_585,
            545_404_204,
            4_161_255_391,
            3_922_919_429,
            949_333_985,
            2_715_962_298,
            1_323_567_403,
        ];
        for (i, &e) in expected_first.iter().enumerate() {
            assert_eq!(mt.next_u32(), e, "mismatch at output {i}");
        }
    }

    /// The C++11 standard pins the 10000th output of `std::mt19937` seeded
    /// with 5489 to 4123659995; this exercises the twist across many blocks.
    #[test]
    fn matches_cpp11_10000th_output() {
        let mut mt = Mt19937::new(5489);
        let mut last = 0u32;
        for _ in 0..10_000 {
            last = mt.next_u32();
        }
        assert_eq!(last, 4_123_659_995);
    }

    /// Reference outputs of `init_by_array({0x123, 0x234, 0x345, 0x456})`
    /// from the mt19937ar.out test vector.
    #[test]
    fn matches_reference_vector_init_by_array() {
        let mut mt = Mt19937::from_key(&[0x123, 0x234, 0x345, 0x456]);
        let expected_first = [1_067_595_299u32, 955_945_823, 477_289_528];
        for (i, &e) in expected_first.iter().enumerate() {
            assert_eq!(mt.next_u32(), e, "mismatch at output {i}");
        }
    }

    #[test]
    fn seed_from_u64_uses_both_halves() {
        let mut a = Mt19937::seed_from_u64(0x0000_0001_0000_0000);
        let mut b = Mt19937::seed_from_u64(0x0000_0002_0000_0000);
        // Seeds share their low 32 bits; streams must still differ.
        let identical = (0..64).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(identical < 8);
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = Mt19937::seed_from_u64(99);
        for _ in 0..700 {
            a.next_u32(); // crosses a twist boundary
        }
        let mut b = a.clone();
        for _ in 0..100 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn mean_of_uniform_draws_is_half() {
        let mut mt = Mt19937::seed_from_u64(2020);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| mt.next_f64()).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.005, "mean {mean} too far from 0.5");
    }
}
