//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of criterion's API that the `im-bench` suites drive —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! `sample_size`, [`Bencher::iter`], [`criterion_group!`] and
//! [`criterion_main!`] — with plain wall-clock timing: each benchmark is
//! warmed up once, then timed over `sample_size` samples whose iteration
//! count is auto-calibrated so a sample takes a measurable amount of time.
//! Median and mean per-iteration times are printed to stdout. Statistical
//! machinery (outlier analysis, HTML reports) is intentionally absent; swap
//! the `vendor/` path dependency for real criterion when the registry is
//! reachable.

use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub use std::hint::black_box;

/// Target wall-clock budget for one benchmark's measurement phase.
const MEASURE_BUDGET: Duration = Duration::from_millis(500);

/// The top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.into(), self.sample_size, f);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Set the measurement time. Accepted for API compatibility; the stand-in
    /// keeps its fixed per-bench budget.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&format!("{}/{}", self.name, id.into()), self.sample_size, f);
        self
    }

    /// Finish the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; [`Bencher::iter`] times the routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, running it `self.iters` times back to back.
    pub fn iter<T, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> T,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F>(id: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Warm-up and calibration: find an iteration count whose sample time is
    // long enough to measure, without blowing the budget.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let once = b.elapsed.max(Duration::from_nanos(1));
    let per_sample = MEASURE_BUDGET / sample_size as u32;
    let iters = (per_sample.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut samples: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    println!(
        "bench {id:<60} median {:>12}  mean {:>12}  ({sample_size} samples × {iters} iters)",
        format_time(median),
        format_time(mean),
    );
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Define a benchmark group function, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define the benchmark binary's `main`, as in criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_closure() {
        let mut c = Criterion::default();
        c.sample_size(2);
        let mut runs = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        assert!(runs > 0);
    }

    #[test]
    fn groups_run_and_finish() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_function("x", |b| b.iter(|| 1 + 1));
        group.finish();
    }

    #[test]
    fn time_formatting_covers_the_ranges() {
        assert!(format_time(2.0).ends_with(" s"));
        assert!(format_time(2e-3).ends_with(" ms"));
        assert!(format_time(2e-6).ends_with(" µs"));
        assert!(format_time(2e-9).ends_with(" ns"));
    }
}
