//! Canonical seed sets.
//!
//! The study's central object is the *distribution of seed sets* produced by
//! repeated algorithm runs (Section 4). To build that distribution, seed sets
//! must be comparable irrespective of the order in which the greedy loop
//! selected their elements; [`SeedSet`] therefore stores vertices in sorted
//! order and hashes/compares on that canonical form, while the selection order
//! is kept separately by [`crate::greedy::GreedyResult`].

use imgraph::VertexId;
use serde::{Deserialize, Serialize};

/// A set of seed vertices in canonical (sorted, deduplicated) form.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default)]
pub struct SeedSet {
    vertices: Vec<VertexId>,
}

impl SeedSet {
    /// The empty seed set.
    #[must_use]
    pub fn empty() -> Self {
        Self {
            vertices: Vec::new(),
        }
    }

    /// Build a canonical seed set from vertices in any order; duplicates are
    /// removed.
    #[must_use]
    pub fn new(mut vertices: Vec<VertexId>) -> Self {
        vertices.sort_unstable();
        vertices.dedup();
        Self { vertices }
    }

    /// Number of seeds `k`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// The seeds in sorted order.
    #[must_use]
    pub fn vertices(&self) -> &[VertexId] {
        &self.vertices
    }

    /// Whether `v` is a seed (binary search on the sorted representation).
    #[must_use]
    pub fn contains(&self, v: VertexId) -> bool {
        self.vertices.binary_search(&v).is_ok()
    }

    /// A new set with `v` added (no-op if already present).
    #[must_use]
    pub fn with(&self, v: VertexId) -> Self {
        if self.contains(v) {
            return self.clone();
        }
        let mut vertices = self.vertices.clone();
        let pos = vertices.partition_point(|&x| x < v);
        vertices.insert(pos, v);
        Self { vertices }
    }

    /// Iterate over the seeds.
    pub fn iter(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.vertices.iter().copied()
    }
}

impl From<Vec<VertexId>> for SeedSet {
    fn from(v: Vec<VertexId>) -> Self {
        SeedSet::new(v)
    }
}

impl From<&[VertexId]> for SeedSet {
    fn from(v: &[VertexId]) -> Self {
        SeedSet::new(v.to_vec())
    }
}

impl FromIterator<VertexId> for SeedSet {
    fn from_iter<T: IntoIterator<Item = VertexId>>(iter: T) -> Self {
        SeedSet::new(iter.into_iter().collect())
    }
}

impl std::fmt::Display for SeedSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        for (i, v) in self.vertices.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_form_ignores_order_and_duplicates() {
        let a = SeedSet::new(vec![3, 1, 2]);
        let b = SeedSet::new(vec![2, 3, 1, 1, 2]);
        assert_eq!(a, b);
        assert_eq!(a.vertices(), &[1, 2, 3]);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn hashing_respects_canonical_form() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(SeedSet::new(vec![5, 9]));
        assert!(set.contains(&SeedSet::new(vec![9, 5])));
        assert!(!set.contains(&SeedSet::new(vec![9])));
    }

    #[test]
    fn contains_and_with() {
        let s = SeedSet::new(vec![10, 20]);
        assert!(s.contains(10));
        assert!(!s.contains(15));
        let t = s.with(15);
        assert_eq!(t.vertices(), &[10, 15, 20]);
        assert_eq!(s.with(10), s, "adding an existing seed is a no-op");
        assert_eq!(s.len(), 2, "with() must not mutate the original");
    }

    #[test]
    fn empty_and_display() {
        let e = SeedSet::empty();
        assert!(e.is_empty());
        assert_eq!(format!("{e}"), "{}");
        assert_eq!(format!("{}", SeedSet::new(vec![2, 1])), "{1, 2}");
    }

    #[test]
    fn conversions() {
        let from_vec: SeedSet = vec![4u32, 2].into();
        let from_slice: SeedSet = [2u32, 4].as_slice().into();
        let from_iter: SeedSet = [4u32, 2, 2].into_iter().collect();
        assert_eq!(from_vec, from_slice);
        assert_eq!(from_vec, from_iter);
        assert_eq!(from_vec.iter().collect::<Vec<_>>(), vec![2, 4]);
    }

    #[test]
    fn ordering_is_lexicographic_on_sorted_vertices() {
        assert!(SeedSet::new(vec![1, 2]) < SeedSet::new(vec![1, 3]));
        assert!(
            SeedSet::new(vec![1]) < SeedSet::new(vec![1, 0].into_iter().map(|x| x + 1).collect())
        );
    }

    #[test]
    fn serde_round_trip() {
        let s = SeedSet::new(vec![7, 3, 11]);
        let json = serde_json::to_string(&s).unwrap();
        assert_eq!(serde_json::from_str::<SeedSet>(&json).unwrap(), s);
    }
}
