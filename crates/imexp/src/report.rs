//! Plain-text report tables.
//!
//! Every experiment driver renders its result as an aligned text table whose
//! rows mirror the corresponding table or figure series of the paper, so
//! `imexp <experiment>` output can be compared against the paper side by side
//! and EXPERIMENTS.md can embed the tables verbatim.

use serde::{Deserialize, Serialize};

/// A simple column-aligned text table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct TextTable {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Create a table with a title and column headers.
    #[must_use]
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Self {
            title: title.into(),
            header: header.iter().map(|s| (*s).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; the row is padded or truncated to the header width.
    pub fn add_row(&mut self, cells: Vec<String>) {
        let mut cells = cells;
        cells.resize(self.header.len(), String::new());
        self.rows.push(cells);
    }

    /// Append a row of displayable values.
    pub fn add_display_row<D: std::fmt::Display>(&mut self, cells: &[D]) {
        self.add_row(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Number of data rows.
    #[must_use]
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// The table title.
    #[must_use]
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The rows (for tests and JSON export).
    #[must_use]
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Render as an aligned text block.
    #[must_use]
    pub fn render(&self) -> String {
        let columns = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(columns) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&self.title);
        out.push('\n');
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:<width$}", width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&render_row(&self.header, &widths));
        out.push('\n');
        let total_width: usize = widths.iter().sum::<usize>() + 2 * (columns.saturating_sub(1));
        out.push_str(&"-".repeat(total_width));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for TextTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.render())
    }
}

/// Format a float with sensible precision for report cells: integers render
/// without a fraction, small numbers keep four significant decimals.
#[must_use]
pub fn fmt_float(x: f64) -> String {
    if !x.is_finite() {
        return format!("{x}");
    }
    if (x.fract()).abs() < 1e-9 && x.abs() < 1e15 {
        format!("{}", x.round() as i64)
    } else if x.abs() >= 100.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.4}")
    }
}

/// Format an optional value, rendering `None` as the paper's "–" placeholder.
#[must_use]
pub fn fmt_option<D: std::fmt::Display>(value: Option<D>) -> String {
    value.map_or_else(|| "-".to_string(), |v| v.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new("Demo", &["name", "value"]);
        t.add_row(vec!["alpha".into(), "1".into()]);
        t.add_row(vec!["b".into(), "10000".into()]);
        let rendered = t.render();
        assert!(rendered.starts_with("Demo\n"));
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines[1].starts_with("name"));
        assert!(lines[3].starts_with("alpha"));
        // Column alignment: "value" column starts at the same offset everywhere.
        let offset = lines[1].find("value").unwrap();
        assert_eq!(lines[3].find('1').unwrap(), offset);
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.title(), "Demo");
    }

    #[test]
    fn rows_are_padded_and_truncated() {
        let mut t = TextTable::new("t", &["a", "b"]);
        t.add_row(vec!["only-one".into()]);
        t.add_row(vec!["x".into(), "y".into(), "extra".into()]);
        assert_eq!(t.rows()[0].len(), 2);
        assert_eq!(t.rows()[1].len(), 2);
        assert_eq!(t.rows()[0][1], "");
    }

    #[test]
    fn display_row_helper() {
        let mut t = TextTable::new("t", &["a", "b", "c"]);
        t.add_display_row(&[1.0, 2.5, 3.0]);
        assert_eq!(t.rows()[0], vec!["1", "2.5", "3"]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_float(3.0), "3");
        assert_eq!(fmt_float(0.123456), "0.1235");
        assert_eq!(fmt_float(12345.678), "12345.7");
        assert_eq!(fmt_float(f64::INFINITY), "inf");
    }

    #[test]
    fn option_formatting() {
        assert_eq!(fmt_option(Some(42)), "42");
        assert_eq!(fmt_option::<u32>(None), "-");
    }

    #[test]
    fn serde_round_trip() {
        let mut t = TextTable::new("t", &["a"]);
        t.add_row(vec!["x".into()]);
        let json = serde_json::to_string(&t).unwrap();
        assert_eq!(serde_json::from_str::<TextTable>(&json).unwrap(), t);
    }
}
