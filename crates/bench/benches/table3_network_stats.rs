//! Table 3 bench: network statistics (degrees, clustering, average distance).

use criterion::{criterion_group, criterion_main, Criterion};
use imexp::config::ExperimentScale;
use imexp::experiments::table3::network_rows;
use imgraph::stats::GraphStats;
use imnet::{Dataset, ProbabilityModel};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("\n--- Table 3 series (quick scale) ---");
    for row in network_rows(ExperimentScale::Quick) {
        println!(
            "{:<12} n = {:>7}  m = {:>8}  d+ = {:>5}  d- = {:>5}  clus = {:?}",
            row.dataset.name(),
            row.stats.num_vertices,
            row.stats.num_edges,
            row.stats.max_out_degree,
            row.stats.max_in_degree,
            row.stats.clustering_coefficient,
        );
    }

    let karate = im_bench::graph(Dataset::Karate, ProbabilityModel::uc01());
    let ba_d = im_bench::graph(Dataset::BaDense, ProbabilityModel::uc01());
    let mut group = c.benchmark_group("table3_network_stats");
    group.sample_size(20);
    group.bench_function("graph_stats/karate", |b| {
        b.iter(|| black_box(GraphStats::compute(karate.graph())))
    });
    group.bench_function("graph_stats/ba_dense", |b| {
        b.iter(|| black_box(GraphStats::compute(ba_d.graph())))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
