//! Empirical distribution statistics for the influence-maximization study.
//!
//! The paper's methodology (Section 4) runs each algorithm `T` times per
//! configuration and studies two empirical distributions: the distribution of
//! *seed sets* `S(s)` and the distribution of *influence spread* `I(s)`. This
//! crate provides the statistics applied to them:
//!
//! * [`EmpiricalDistribution`] — a counting distribution over arbitrary
//!   hashable outcomes (seed sets), with Shannon entropy ([`entropy`]),
//!   degeneracy/mode queries and convergence helpers ([`convergence`]);
//! * [`SummaryStats`] — the notched-box-plot statistics of Figure 4 (mean,
//!   standard deviation, quartiles, 1st/99th percentiles, median notch);
//! * [`ratio`] — the *comparable number ratio* and *comparable size ratio* of
//!   Section 5.2.3, computed from per-sample-number mean-influence curves.
//!
//! The crate is deliberately independent of the graph and algorithm crates so
//! the statistics can be unit-tested on synthetic data and reused on any
//! outcome type.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod convergence;
mod distribution;
pub mod divergence;
pub mod entropy;
pub mod interval;
pub mod ratio;
mod summary;

pub use distribution::EmpiricalDistribution;
pub use divergence::{jensen_shannon_divergence, total_variation_distance};
pub use entropy::{shannon_entropy_from_counts, shannon_entropy_from_probabilities};
pub use interval::{bootstrap_mean_interval, wilson_interval, ConfidenceInterval};
pub use ratio::{comparable_number_ratio, comparable_size_ratio, SampleCurve};
pub use summary::SummaryStats;
