//! Incremental newline-delimited frame reassembly.
//!
//! Both front ends (the threaded worker pool and the reactor event loop) and
//! the non-blocking client read raw byte chunks off a socket and need to cut
//! them back into complete protocol lines, keeping any trailing partial line
//! buffered until the next read delivers the rest. [`LineBuffer`] is that
//! shared reassembly state: bytes go in via [`LineBuffer::extend`], complete
//! lines come out via [`LineBuffer::next_line`], and whatever is left stays
//! put across reads (and, for the threaded pool, across worker turns).

/// Reassembles newline-delimited UTF-8 frames from arbitrary byte chunks.
#[derive(Debug, Default)]
pub(crate) struct LineBuffer {
    buf: Vec<u8>,
    /// Bytes before `start` were already handed out as lines; compacted
    /// lazily so repeated small lines don't memmove the tail each time.
    start: usize,
}

impl LineBuffer {
    /// A fresh, empty buffer.
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Append one raw chunk read from the socket.
    pub(crate) fn extend(&mut self, chunk: &[u8]) {
        // Compact before growing so consumed prefixes don't accumulate.
        if self.start > 0 {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(chunk);
    }

    /// The next complete line, without its trailing `\n` (a trailing `\r` is
    /// also stripped, for telnet-style clients). Returns `None` while only a
    /// partial line is buffered, `Some(Err(_))` if the line is not UTF-8 —
    /// the connection is then unusable, since frame boundaries can no longer
    /// be trusted.
    pub(crate) fn next_line(&mut self) -> Option<Result<String, std::str::Utf8Error>> {
        let rest = &self.buf[self.start..];
        let newline = rest.iter().position(|&b| b == b'\n')?;
        let mut line = &rest[..newline];
        if line.last() == Some(&b'\r') {
            line = &line[..line.len() - 1];
        }
        let parsed = std::str::from_utf8(line).map(str::to_string);
        self.start += newline + 1;
        Some(parsed)
    }

    /// Whether any bytes (complete or partial) are buffered.
    pub(crate) fn has_buffered(&self) -> bool {
        self.start < self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reassembles_lines_across_chunks() {
        let mut lb = LineBuffer::new();
        lb.extend(b"{\"a\":1}\n{\"b\"");
        assert_eq!(lb.next_line().unwrap().unwrap(), "{\"a\":1}");
        assert!(lb.next_line().is_none());
        assert!(lb.has_buffered());
        lb.extend(b":2}\n");
        assert_eq!(lb.next_line().unwrap().unwrap(), "{\"b\":2}");
        assert!(lb.next_line().is_none());
        assert!(!lb.has_buffered());
    }

    #[test]
    fn strips_carriage_returns_and_rejects_bad_utf8() {
        let mut lb = LineBuffer::new();
        lb.extend(b"ping\r\n");
        assert_eq!(lb.next_line().unwrap().unwrap(), "ping");
        lb.extend(&[0xFF, 0xFE, b'\n']);
        assert!(lb.next_line().unwrap().is_err());
    }

    #[test]
    fn many_lines_in_one_chunk() {
        let mut lb = LineBuffer::new();
        lb.extend(b"a\nb\nc\n");
        assert_eq!(lb.next_line().unwrap().unwrap(), "a");
        assert_eq!(lb.next_line().unwrap().unwrap(), "b");
        assert_eq!(lb.next_line().unwrap().unwrap(), "c");
        assert!(lb.next_line().is_none());
    }
}
