//! Property tests of the incremental-maintenance contract: for random small
//! graphs and random mutation sequences, the `apply_delta`-maintained pool is
//! byte-identical to a from-scratch rebuild at every intermediate version,
//! and every estimate the maintained oracle serves matches the rebuilt one.

use im_core::sampler::Backend;
use imdyn::{workload, DynamicOracle};
use imgraph::{DiGraph, InfluenceGraph, MutableInfluenceGraph};
use imrand::Pcg32;
use proptest::prelude::*;

/// Strategy: a random influence graph over `2..=10` vertices with `0..=24`
/// edges (parallel edges and self-loops included — both are legal).
fn arb_influence_graph() -> impl Strategy<Value = InfluenceGraph> {
    (2usize..10).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32);
        proptest::collection::vec(edge, 0..24).prop_flat_map(move |edges| {
            let len = edges.len();
            (
                Just(n),
                Just(edges),
                proptest::collection::vec(0.05f64..1.0, len),
            )
                .prop_map(|(n, edges, probs)| {
                    InfluenceGraph::new(DiGraph::from_edges(n, &edges), probs)
                })
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random mutation sequences keep the maintained pool byte-identical to
    /// a rebuild, and keep estimates bit-identical, at *every* step.
    #[test]
    fn maintained_pool_equals_rebuild_after_every_mutation(
        graph in arb_influence_graph(),
        pool in 1usize..96,
        base_seed in 0u64..1_000,
        workload_seed in 0u64..1_000,
        steps in 0usize..10,
    ) {
        let mut dynamic = DynamicOracle::build(graph.clone(), pool, base_seed, Backend::Sequential);
        let mut rng = Pcg32::seed_from_u64(workload_seed);
        let mutable = MutableInfluenceGraph::from_graph(&graph);
        let deltas = workload::random_deltas(&mutable, steps, &mut rng);
        for (step, delta) in deltas.into_iter().enumerate() {
            let outcome = dynamic.apply(delta).expect("workload deltas are valid");
            prop_assert_eq!(outcome.epoch, step as u64 + 1);

            let rebuilt = dynamic.rebuild_from_scratch();
            prop_assert_eq!(
                dynamic.oracle().to_bytes(),
                rebuilt.to_bytes(),
                "maintained pool diverged from rebuild at step {} ({})",
                step,
                delta
            );
            // Estimates served after the mutation match the rebuilt oracle
            // bit-for-bit, for singletons and a joint set.
            let n = dynamic.graph().num_vertices();
            for v in 0..n as u32 {
                prop_assert_eq!(dynamic.oracle().estimate(&[v]), rebuilt.estimate(&[v]));
            }
            let all: Vec<u32> = (0..n as u32).collect();
            prop_assert_eq!(dynamic.oracle().estimate(&all), rebuilt.estimate(&all));
        }
        prop_assert!(dynamic.matches_rebuild());
    }

    /// The parallel backend builds the same dynamic oracle as the sequential
    /// one, so mutation sequences behave identically regardless of how the
    /// initial pool was drawn.
    #[test]
    fn initial_build_backend_does_not_affect_maintenance(
        graph in arb_influence_graph(),
        pool in 1usize..64,
        base_seed in 0u64..500,
    ) {
        let seq = DynamicOracle::build(graph.clone(), pool, base_seed, Backend::Sequential);
        let par = DynamicOracle::build(graph, pool, base_seed, Backend::Parallel { threads: 3 });
        prop_assert_eq!(seq.oracle().to_bytes(), par.oracle().to_bytes());
    }
}
