//! Property-based tests for the extension modules: exact influence, sketches,
//! compressed RR sets, heuristics, divergences and confidence intervals.
//!
//! These complement `proptest_invariants.rs` (which covers the substrates and
//! the three core estimators) with invariants of the modules added around
//! them. Each property is phrased against randomly generated small graphs or
//! value sets, so the suite probes corners the example-based unit tests miss.

use proptest::prelude::*;

use im_core::exact::{exact_greedy, exact_influence, exact_optimum};
use im_core::ublf::influence_upper_bounds;
use imgraph::{DiGraph, InfluenceGraph, VertexId};
use imheur::{DegreeDiscount, MaxDegree, PageRankSelector, SeedSelector, SingleDiscount};
use imrand::Pcg32;
use imsketch::{descendant_counts, CompressedRrSets, ReachabilitySketches};
use imstats::divergence::{
    jensen_shannon_divergence, overlap_coefficient, support_jaccard, total_variation_distance,
};
use imstats::interval::wilson_interval;
use imstats::EmpiricalDistribution;

/// A strategy for tiny influence graphs (≤ 7 vertices, ≤ 10 distinct edges)
/// small enough for exact influence enumeration.
fn arb_tiny_influence_graph() -> impl Strategy<Value = InfluenceGraph> {
    (
        2usize..=7,
        proptest::collection::vec(((0u32..7, 0u32..7), 0.05f64..1.0), 1..10),
    )
        .prop_map(|(n, raw)| {
            let mut seen = std::collections::HashSet::new();
            let mut edges = Vec::new();
            let mut probs = Vec::new();
            for ((u, v), p) in raw {
                let (u, v) = (u % n as u32, v % n as u32);
                if u != v && seen.insert((u, v)) {
                    edges.push((u, v));
                    probs.push(p);
                }
            }
            if edges.is_empty() {
                edges.push((0, (n as u32 - 1).max(1)));
                probs.push(0.5);
            }
            InfluenceGraph::new(DiGraph::from_edges(n, &edges), probs)
        })
}

/// A strategy for small directed graphs (for sketch/descendant properties).
fn arb_digraph() -> impl Strategy<Value = DiGraph> {
    (
        5usize..40,
        proptest::collection::vec((0u32..40, 0u32..40), 0..120),
    )
        .prop_map(|(n, raw)| {
            let edges: Vec<(u32, u32)> = raw
                .into_iter()
                .map(|(u, v)| (u % n as u32, v % n as u32))
                .collect();
            DiGraph::from_edges(n, &edges)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The exact influence function is monotone and submodular on every tiny
    /// influence graph — the Kempe–Kleinberg–Tardos theorem, checked directly.
    #[test]
    fn exact_influence_is_monotone_and_submodular(graph in arb_tiny_influence_graph()) {
        let n = graph.num_vertices() as VertexId;
        let f = |s: &[VertexId]| exact_influence(&graph, s);
        // Monotonicity on nested singleton/pair sets.
        for v in 0..n {
            for w in 0..n {
                if v == w { continue; }
                prop_assert!(f(&[v]) <= f(&[v, w]) + 1e-9);
            }
        }
        // Submodularity: gain of adding x to {a} vs to {a, b}.
        for a in 0..n {
            for b in 0..n {
                for x in 0..n {
                    if a == b || a == x || b == x { continue; }
                    let small_gain = f(&[a, x]) - f(&[a]);
                    let large_gain = f(&[a, b, x]) - f(&[a, b]);
                    prop_assert!(small_gain + 1e-9 >= large_gain);
                }
            }
        }
    }

    /// Exact greedy always attains at least (1 − 1/e) of the exhaustive
    /// optimum, and never exceeds it.
    #[test]
    fn exact_greedy_is_a_constant_factor_approximation(graph in arb_tiny_influence_graph(), k in 1usize..3) {
        let k = k.min(graph.num_vertices());
        let greedy = exact_greedy(&graph, k);
        let (_, opt) = exact_optimum(&graph, k);
        prop_assert!(greedy.influence() <= opt + 1e-9);
        prop_assert!(greedy.influence() >= (1.0 - 1.0 / std::f64::consts::E) * opt - 1e-9);
    }

    /// The UBLF walk-sum bound dominates the exact influence of every
    /// singleton, on every graph.
    #[test]
    fn ublf_bound_dominates_exact_influence(graph in arb_tiny_influence_graph()) {
        let bounds = influence_upper_bounds(&graph, graph.num_vertices());
        for v in 0..graph.num_vertices() as VertexId {
            prop_assert!(bounds[v as usize] + 1e-9 >= exact_influence(&graph, &[v]));
        }
    }

    /// Exact descendant counting agrees with per-vertex BFS on arbitrary
    /// directed graphs (cycles, self-loops and parallel edges included).
    #[test]
    fn descendant_counts_match_bfs(graph in arb_digraph()) {
        let counts = descendant_counts(&graph);
        for v in 0..graph.num_vertices() as VertexId {
            let bfs = imgraph::reach::reachable_count(&graph, &[v]);
            prop_assert_eq!(counts[v as usize], bfs);
        }
    }

    /// Bottom-k sketches report the exact reachable-set size whenever that set
    /// has fewer than k members, and never a negative or absurdly large value.
    #[test]
    fn bottom_k_sketches_are_exact_below_k(graph in arb_digraph(), seed in 0u64..1_000) {
        let n = graph.num_vertices();
        let k = n + 1; // sketches can never fill up
        let sketches = ReachabilitySketches::build(&graph, k, &mut Pcg32::seed_from_u64(seed));
        for v in 0..n as VertexId {
            let exact = imgraph::reach::reachable_count(&graph, &[v]);
            prop_assert!((sketches.estimate_reachable(v) - exact as f64).abs() < 1e-9);
        }
    }

    /// Compressed RR-set storage round-trips arbitrary vertex-id sets and
    /// never inflates them beyond the raw 4-bytes-per-id representation by
    /// more than the one-byte-per-id varint floor.
    #[test]
    fn compressed_rr_sets_round_trip(sets in proptest::collection::vec(proptest::collection::vec(0u32..100_000, 0..50), 1..30)) {
        let mut store = CompressedRrSets::new();
        for set in &sets {
            store.push(set);
        }
        prop_assert_eq!(store.len(), sets.len());
        for (i, set) in sets.iter().enumerate() {
            let mut canonical = set.clone();
            canonical.sort_unstable();
            canonical.dedup();
            prop_assert_eq!(store.decode(i), canonical);
        }
        prop_assert!(store.payload_bytes() <= store.uncompressed_bytes().max(store.total_vertices() as usize * 5));
    }

    /// Every heuristic returns at most min(k, n) distinct, in-range seeds.
    #[test]
    fn heuristics_return_valid_seed_sets(graph in arb_tiny_influence_graph(), k in 0usize..10) {
        let n = graph.num_vertices();
        let selectors: Vec<Box<dyn SeedSelector>> = vec![
            Box::new(MaxDegree),
            Box::new(SingleDiscount),
            Box::new(DegreeDiscount::with_mean_probability(&graph)),
            Box::new(PageRankSelector::default()),
        ];
        for selector in &selectors {
            let result = selector.select(&graph, k);
            prop_assert_eq!(result.seeds.len(), k.min(n), "{}", selector.name());
            prop_assert_eq!(result.seeds.len(), result.scores.len());
            let mut sorted = result.seeds.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), result.seeds.len(), "duplicates from {}", selector.name());
            prop_assert!(result.seeds.iter().all(|&v| (v as usize) < n));
        }
    }

    /// Divergence identities: TV + overlap = 1, all measures symmetric and in
    /// range, and a distribution compared with itself is at distance 0.
    #[test]
    fn divergence_identities_hold(outcomes_a in proptest::collection::vec((0u32..12, 1u64..20), 1..12),
                                  outcomes_b in proptest::collection::vec((0u32..12, 1u64..20), 1..12)) {
        let mut p = EmpiricalDistribution::new();
        let mut q = EmpiricalDistribution::new();
        for (x, c) in outcomes_a { p.record_many(x, c); }
        for (x, c) in outcomes_b { q.record_many(x, c); }
        let tv = total_variation_distance(&p, &q);
        let js = jensen_shannon_divergence(&p, &q);
        let ov = overlap_coefficient(&p, &q);
        let jac = support_jaccard(&p, &q);
        // Floating-point counting probabilities can overshoot the unit range
        // by a few ulps (e.g. TV of two disjoint supports sums 2·(Σ p) / 2).
        prop_assert!((-1e-12..=1.0 + 1e-12).contains(&tv), "TV = {tv}");
        prop_assert!((-1e-12..=1.0 + 1e-12).contains(&js), "JS = {js}");
        prop_assert!((-1e-12..=1.0 + 1e-12).contains(&jac), "Jaccard = {jac}");
        prop_assert!((tv + ov - 1.0).abs() < 1e-9);
        prop_assert!((tv - total_variation_distance(&q, &p)).abs() < 1e-12);
        prop_assert!(total_variation_distance(&p, &p) < 1e-12);
        prop_assert!(jensen_shannon_divergence(&q, &q) < 1e-12);
    }

    /// The Wilson interval always contains the point estimate, lies within
    /// [0, 1], and tightens as the trial count grows.
    #[test]
    fn wilson_interval_properties(successes in 0u64..100, extra in 0u64..100, scale in 1u64..50) {
        let trials = successes + extra;
        prop_assume!(trials > 0);
        let ci = wilson_interval(successes, trials, 0.95);
        let p_hat = successes as f64 / trials as f64;
        prop_assert!(ci.lower >= 0.0 && ci.upper <= 1.0);
        prop_assert!(ci.contains(p_hat));
        let bigger = wilson_interval(successes * scale, trials * scale, 0.95);
        prop_assert!(bigger.width() <= ci.width() + 1e-12);
    }

    /// Monte-Carlo IC influence converges to the exact influence (loose
    /// tolerance; this is the unbiasedness of the Oneshot estimator checked
    /// against the enumeration oracle).
    #[test]
    fn monte_carlo_matches_exact_influence(graph in arb_tiny_influence_graph(), seed in 0u64..500) {
        let mut rng = Pcg32::seed_from_u64(seed);
        let exact = exact_influence(&graph, &[0]);
        let mc = im_core::diffusion::monte_carlo_influence(&graph, &[0], 4_000, &mut rng);
        // 4,000 simulations on a ≤ 7-vertex graph: standard error well below 0.15.
        prop_assert!((mc - exact).abs() < 0.4, "MC {mc} vs exact {exact}");
    }
}
