//! Worst-case sample-number bounds quoted by the paper.
//!
//! Section 5.2.1 contrasts the *empirical* least sample numbers with the
//! *worst-case* bounds from the literature and finds gaps of several orders of
//! magnitude; these functions reproduce the bound side of that comparison.
//! Constants hidden inside the `Ω`/`O` notation are taken as 1, exactly as the
//! paper does when it reports "the bound for Oneshot \[70\] with ε = 0.05,
//! δ = 0.01 is 1.0·10⁸".

/// Parameters shared by all bounds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundParams {
    /// Number of vertices `n`.
    pub num_vertices: f64,
    /// Number of edges `m`.
    pub num_edges: f64,
    /// Seed-set size `k`.
    pub seed_size: f64,
    /// Accuracy parameter `ε`.
    pub epsilon: f64,
    /// Failure probability `δ`.
    pub delta: f64,
    /// The optimum `OPT_k` (or a lower bound on it; the paper plugs in the
    /// exact-greedy influence).
    pub opt_k: f64,
}

impl BoundParams {
    fn validate(&self) {
        assert!(self.num_vertices >= 1.0, "n must be at least 1");
        assert!(self.num_edges >= 0.0, "m must be non-negative");
        assert!(self.seed_size >= 1.0, "k must be at least 1");
        assert!(
            self.epsilon > 0.0 && self.epsilon < 1.0,
            "ε must lie in (0, 1)"
        );
        assert!(self.delta > 0.0 && self.delta < 1.0, "δ must lie in (0, 1)");
        assert!(
            self.opt_k >= 1.0,
            "OPT_k must be at least 1 (a seed activates itself)"
        );
    }
}

/// The Oneshot sample-number bound of Tang et al. [70, Lemma 10]:
/// `β = ε⁻²·k²·n·(ln δ⁻¹ + ln k) / OPT_k` simulations per Estimate call
/// guarantee a `(1 − 1/e − ε)`-approximation with probability `1 − δ`.
#[must_use]
pub fn oneshot_sample_bound(p: &BoundParams) -> f64 {
    p.validate();
    let eps2 = p.epsilon * p.epsilon;
    p.seed_size * p.seed_size * p.num_vertices * ((1.0 / p.delta).ln() + p.seed_size.ln().max(0.0))
        / (eps2 * p.opt_k)
}

/// The Snapshot sample-number bound (stochastic submodular maximisation,
/// Karimi et al. [32, Prop. 3]): `τ = (n²/(ε²·OPT_k²))·(k·ln n + ln δ⁻¹)`
/// random graphs guarantee influence at least `(1 − 1/e)·OPT_k − ε·OPT_k`
/// with probability `1 − δ` (stated additively in the paper; normalising the
/// additive error by `OPT_k` gives this multiplicative form).
#[must_use]
pub fn snapshot_sample_bound(p: &BoundParams) -> f64 {
    p.validate();
    let eps2 = p.epsilon * p.epsilon;
    (p.num_vertices * p.num_vertices / (eps2 * p.opt_k * p.opt_k))
        * (p.seed_size * p.num_vertices.ln() + (1.0 / p.delta).ln())
}

/// The RIS sample-number bound of Tang et al. \[70\] (the `θ` that the paper
/// compares against): `θ = ε⁻²·k·n·ln n / OPT_k`, which is `k` times smaller
/// than the Oneshot bound.
#[must_use]
pub fn ris_sample_bound(p: &BoundParams) -> f64 {
    p.validate();
    let eps2 = p.epsilon * p.epsilon;
    p.seed_size * p.num_vertices * p.num_vertices.ln() / (eps2 * p.opt_k)
}

/// Borgs et al.'s total-weight stopping rule (Section 3.5.3): RR-set
/// generation may stop once the accumulated weight (edges examined) exceeds
/// `ε⁻²·k·(m + n)·ln n`.
#[must_use]
pub fn borgs_weight_threshold(p: &BoundParams) -> f64 {
    p.validate();
    let eps2 = p.epsilon * p.epsilon;
    p.seed_size * (p.num_edges + p.num_vertices) * p.num_vertices.ln() / eps2
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> BoundParams {
        BoundParams {
            num_vertices: 7_115.0, // Wiki-Vote
            num_edges: 103_689.0,
            seed_size: 4.0,
            epsilon: 0.05,
            delta: 0.01,
            // Realistic OPT_4 under uc0.01: spreads barely exceed the seed
            // count on such a low-probability instance.
            opt_k: 4.5,
        }
    }

    #[test]
    fn oneshot_bound_is_k_times_ris_bound_up_to_log_terms() {
        let p = params();
        let oneshot = oneshot_sample_bound(&p);
        let ris = ris_sample_bound(&p);
        // Oneshot ≈ k·RIS·((ln δ⁻¹ + ln k)/ln n); with these numbers the ratio
        // is close to k·0.68.
        assert!(oneshot > ris, "Oneshot bound must exceed the RIS bound");
        let ratio = oneshot / ris;
        assert!(
            ratio > 1.5 && ratio < p.seed_size * 2.0,
            "ratio {ratio} out of expected range"
        );
    }

    #[test]
    fn bounds_have_the_paper_magnitude() {
        // Section 5.2.1: on Wiki-Vote (uc0.01, k = 4) the Oneshot bound with
        // ε = 0.05, δ = 0.01 is ≈ 1.0·10⁸ and the RIS bound is ≈ 1.6·10⁷.
        // Their OPT_k is not reported; with OPT_k ≈ 100 the same orders of
        // magnitude come out.
        let p = params();
        let oneshot = oneshot_sample_bound(&p);
        let ris = ris_sample_bound(&p);
        assert!(oneshot > 1e7 && oneshot < 1e9, "Oneshot bound {oneshot}");
        assert!(ris > 1e6 && ris < 1e8, "RIS bound {ris}");
    }

    #[test]
    fn bounds_decrease_with_larger_opt() {
        let mut p = params();
        let base = ris_sample_bound(&p);
        p.opt_k = 1_000.0;
        assert!(ris_sample_bound(&p) < base);
    }

    #[test]
    fn bounds_increase_with_tighter_epsilon() {
        let mut p = params();
        let base = snapshot_sample_bound(&p);
        p.epsilon = 0.01;
        assert!(snapshot_sample_bound(&p) > base * 20.0);
    }

    #[test]
    fn snapshot_bound_far_exceeds_empirical_values() {
        // Empirically τ* ≤ 8,192 (Table 5); the worst-case bound is orders of
        // magnitude larger, which is the paper's point.
        let p = params();
        assert!(snapshot_sample_bound(&p) > 1e6);
    }

    #[test]
    fn borgs_threshold_scales_with_graph_size() {
        let p = params();
        let small = borgs_weight_threshold(&BoundParams {
            num_vertices: 100.0,
            num_edges: 500.0,
            ..p
        });
        let large = borgs_weight_threshold(&p);
        assert!(large > small);
    }

    #[test]
    #[should_panic(expected = "ε must lie in (0, 1)")]
    fn invalid_epsilon_panics() {
        let mut p = params();
        p.epsilon = 0.0;
        let _ = oneshot_sample_bound(&p);
    }

    #[test]
    #[should_panic(expected = "OPT_k must be at least 1")]
    fn invalid_opt_panics() {
        let mut p = params();
        p.opt_k = 0.5;
        let _ = ris_sample_bound(&p);
    }
}
