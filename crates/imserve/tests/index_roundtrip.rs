//! Property tests of the binary index format: serialize→deserialize is
//! byte-identical, and corrupted or truncated input is rejected with a typed
//! error — never a panic.

use im_core::sampler::Backend;
use imgraph::binio::BinError;
use imgraph::{DiGraph, InfluenceGraph};
use imserve::IndexArtifact;
use proptest::prelude::*;

/// Strategy: a random influence graph over `2..=20` vertices.
fn arb_influence_graph() -> impl Strategy<Value = InfluenceGraph> {
    (2usize..20).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32);
        proptest::collection::vec(edge, 1..60).prop_flat_map(move |edges| {
            let len = edges.len();
            (
                Just(n),
                Just(edges),
                proptest::collection::vec(0.05f64..1.0, len),
            )
                .prop_map(|(n, edges, probs)| {
                    InfluenceGraph::new(DiGraph::from_edges(n, &edges), probs)
                })
        })
    })
}

/// Strategy: a complete artifact with a small pool, in a random pool-store
/// layout (so the framing properties cover the `POOL` and `PCMP` sections
/// alike).
fn arb_artifact() -> impl Strategy<Value = IndexArtifact> {
    (arb_influence_graph(), 1usize..200, 0u64..1000, 0usize..3).prop_map(
        |(graph, pool, seed, layout)| {
            let layout = [
                im_core::PoolLayout::Raw,
                im_core::PoolLayout::Compressed,
                im_core::PoolLayout::Tiered,
            ][layout];
            let mut artifact = IndexArtifact::build("prop-graph", "prop-model", graph, pool, seed);
            artifact.convert_pool_layout(layout);
            artifact
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// serialize → deserialize → serialize is byte-identical, and the decoded
    /// oracle answers every singleton query bit-identically.
    #[test]
    fn round_trip_is_byte_identical(artifact in arb_artifact()) {
        let bytes = artifact.to_bytes();
        let back = IndexArtifact::from_bytes(&bytes).expect("round trip");
        prop_assert_eq!(back.to_bytes(), bytes);
        prop_assert_eq!(&back.meta, &artifact.meta);
        let n = artifact.graph.num_vertices();
        prop_assert_eq!(back.graph.num_vertices(), n);
        prop_assert_eq!(back.graph.probabilities(), artifact.graph.probabilities());
        for v in 0..n as u32 {
            prop_assert_eq!(back.oracle.estimate(&[v]), artifact.oracle.estimate(&[v]));
        }
    }

    /// Any single flipped byte is rejected with an error, not a panic.
    #[test]
    fn corruption_is_rejected(artifact in arb_artifact(), position in 0usize..10_000, flip in 1u8..=255) {
        let bytes = artifact.to_bytes();
        let mut damaged = bytes.clone();
        let position = position % damaged.len();
        damaged[position] ^= flip;
        prop_assert!(IndexArtifact::from_bytes(&damaged).is_err());
    }

    /// Any strict prefix is rejected with an error, not a panic.
    #[test]
    fn truncation_is_rejected(artifact in arb_artifact(), cut in 0usize..10_000) {
        let bytes = artifact.to_bytes();
        let cut = cut % bytes.len();
        prop_assert!(IndexArtifact::from_bytes(&bytes[..cut]).is_err());
    }
}

#[test]
fn loading_cannot_resample_the_pool() {
    // The type-level guarantee: `from_bytes` receives bytes only — no graph
    // traversal context and no random generator exist in the load path, so a
    // reload can never redraw the pool. Pin the behavioural consequence:
    // loading twice (and loading the re-encoding) yields bit-identical
    // estimates for every seed set, with no sampling work observable.
    let graph = InfluenceGraph::new(
        DiGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]),
        vec![0.5; 6],
    );
    let built = IndexArtifact::build("ring", "uc0.5", graph, 4_000, 11);
    let bytes = built.to_bytes();
    let first = IndexArtifact::from_bytes(&bytes).unwrap();
    let second = IndexArtifact::from_bytes(&first.to_bytes()).unwrap();
    for seeds in [vec![0u32], vec![1, 4], vec![0, 1, 2, 3, 4, 5]] {
        let reference = built.oracle.estimate(&seeds);
        assert_eq!(first.oracle.estimate(&seeds), reference);
        assert_eq!(second.oracle.estimate(&seeds), reference);
    }
    // The pool is carried verbatim: posting lists match the built oracle's.
    assert_eq!(first.oracle.to_bytes(), built.oracle.to_bytes());
}

#[test]
fn mismatched_splice_is_rejected() {
    // Splicing the pool of one artifact into the graph of another must fail
    // the cross-checks even though both halves are individually valid.
    let small = InfluenceGraph::new(DiGraph::from_edges(3, &[(0, 1), (1, 2)]), vec![0.5, 0.5]);
    let large = InfluenceGraph::new(
        DiGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]),
        vec![0.5; 4],
    );
    let mut spliced = IndexArtifact::build("small", "uc0.5", small, 100, 1);
    let donor = IndexArtifact::build("large", "uc0.5", large, 100, 1);
    spliced.oracle = donor.oracle;
    let bytes = spliced.to_bytes();
    match IndexArtifact::from_bytes(&bytes) {
        Err(BinError::Corrupt(reason)) => {
            assert!(reason.contains("vertices"), "unexpected reason: {reason}");
        }
        other => panic!("splice must be rejected, got {other:?}"),
    }
}

#[test]
fn sequential_and_parallel_builds_persist_identically() {
    // The artifact inherits the sampler's backend-independence: a pool drawn
    // on the parallel backend serializes to the same bytes as the sequential
    // one for the same seed.
    let mk_graph = || {
        InfluenceGraph::new(
            DiGraph::from_edges(8, &[(0, 1), (1, 2), (2, 0), (3, 4), (5, 6), (6, 7)]),
            vec![0.3; 6],
        )
    };
    let seq = im_core::InfluenceOracle::builder(2_000)
        .seed(5)
        .backend(Backend::Sequential)
        .sample(&mk_graph());
    let par = im_core::InfluenceOracle::builder(2_000)
        .seed(5)
        .backend(Backend::Parallel { threads: 4 })
        .sample(&mk_graph());
    assert_eq!(seq.to_bytes(), par.to_bytes());
}

/// A version-2 artifact (full delta log, no `SNAP` watermark) migrates to
/// version 3 through a plain load/save round-trip: it loads with a zero
/// watermark, re-saves with the `SNAP` section, and the reloaded index
/// answers bit-identically at the same epoch.
#[test]
fn version_two_artifacts_migrate_to_version_three() {
    use imgraph::binio::{influence_graph_to_bytes, BinWriter};
    use imgraph::GraphDelta;
    use imserve::index::{build_dataset_index_with_deltas, INDEX_MAGIC};

    let deltas = vec![
        GraphDelta::InsertEdge {
            source: 0,
            target: 33,
            probability: 0.5,
        },
        GraphDelta::DeleteEdge {
            source: 0,
            target: 1,
        },
    ];
    let reference = build_dataset_index_with_deltas("karate", "uc0.1", 2_000, 7, &deltas).unwrap();

    // Write the exact byte layout a PR-3 (version 2) `imserve build`
    // produced: META/GRPH/POOL/DLTA, no SNAP section.
    let mut w = BinWriter::new(INDEX_MAGIC, 2);
    w.section(
        *b"META",
        serde_json::to_string(&reference.meta).unwrap().as_bytes(),
    );
    w.section(*b"GRPH", &influence_graph_to_bytes(&reference.graph));
    w.section(*b"POOL", &reference.oracle.to_bytes());
    w.section(*b"DLTA", &reference.log.encode_payload());
    let v2_bytes = w.finish();

    // v2 loads with a zero watermark: its full log is its history.
    let migrated = IndexArtifact::from_bytes(&v2_bytes).expect("v2 stays readable");
    assert_eq!(migrated.snapshot_epoch, 0);
    assert_eq!(migrated.epoch(), 2);
    assert_eq!(migrated.log.deltas(), deltas.as_slice());
    assert_eq!(migrated.oracle.to_bytes(), reference.oracle.to_bytes());

    // Re-saving upgrades the artifact to the current version (SNAP section,
    // version stamp)…
    let v4_bytes = migrated.to_bytes();
    assert_ne!(v4_bytes, v2_bytes);
    assert_eq!(
        u32::from_le_bytes(v4_bytes[4..8].try_into().unwrap()),
        imserve::index::INDEX_VERSION
    );
    // …and the reloaded index is semantically identical.
    let reloaded = IndexArtifact::from_bytes(&v4_bytes).expect("current-version round trip");
    assert_eq!(reloaded.epoch(), migrated.epoch());
    assert_eq!(reloaded.log, migrated.log);
    assert_eq!(reloaded.oracle.to_bytes(), migrated.oracle.to_bytes());
    assert_eq!(reloaded.to_bytes(), v4_bytes, "re-encode is stable");

    // Compacting the migrated index folds its history without moving the
    // epoch, and the compacted artifact still round-trips.
    let mut compacted = reloaded;
    assert_eq!(compacted.compact(), 2);
    assert_eq!(compacted.snapshot_epoch, 2);
    assert_eq!(compacted.epoch(), 2);
    assert!(compacted.log.is_empty());
    let back = IndexArtifact::from_bytes(&compacted.to_bytes()).unwrap();
    assert_eq!(back.epoch(), 2);
    assert_eq!(back.snapshot_epoch, 2);
    assert_eq!(back.oracle.to_bytes(), reference.oracle.to_bytes());
}

/// A forged v3 artifact whose `SNAP` epoch disagrees with the watermark plus
/// the pending log must be rejected (the cross-check exists to catch spliced
/// or hand-edited logs).
#[test]
fn inconsistent_snapshot_watermarks_are_rejected() {
    use imgraph::binio::fnv1a64;

    let artifact = IndexArtifact::build(
        "snap-check",
        "uc0.5",
        InfluenceGraph::new(DiGraph::from_edges(3, &[(0, 1), (1, 2)]), vec![0.5, 0.5]),
        50,
        3,
    );
    let mut bytes = artifact.to_bytes();
    // The SNAP section is the last one: tag(4) + len(8) + payload(16), then
    // the 8-byte checksum. Bump the stored total epoch and re-stamp the
    // checksum so the watermark cross-check is what fires.
    let epoch_at = bytes.len() - 8 - 8;
    let forged = u64::from_le_bytes(bytes[epoch_at..epoch_at + 8].try_into().unwrap()) + 1;
    bytes[epoch_at..epoch_at + 8].copy_from_slice(&forged.to_le_bytes());
    let len = bytes.len();
    let sum = fnv1a64(&bytes[..len - 8]);
    bytes[len - 8..].copy_from_slice(&sum.to_le_bytes());
    match IndexArtifact::from_bytes(&bytes) {
        Err(BinError::Corrupt(reason)) => {
            assert!(reason.contains("snapshot section"), "{reason}");
        }
        other => panic!("forged watermark must be rejected, got {other:?}"),
    }
}

/// A version-4 artifact (raw `POOL` section, `SNAP` watermark, no `PCMP`)
/// migrates to version 5 through a plain load/save round-trip, and converting
/// its pool to the compressed layout changes the persisted section without
/// changing a single answer.
#[test]
fn version_four_artifacts_migrate_to_version_five() {
    use im_core::PoolLayout;
    use imgraph::binio::{self, influence_graph_to_bytes, BinWriter};
    use imgraph::GraphDelta;
    use imserve::index::{build_dataset_index_with_deltas, INDEX_MAGIC};

    let deltas = vec![GraphDelta::InsertEdge {
        source: 2,
        target: 20,
        probability: 0.4,
    }];
    let reference = build_dataset_index_with_deltas("karate", "uc0.1", 1_500, 13, &deltas).unwrap();

    // The exact byte layout a PR-9 (version 4) whole-pool `imserve build`
    // produced: META/GRPH/POOL/DLTA/SNAP, raw pool, no PCMP section.
    let mut w = BinWriter::new(INDEX_MAGIC, 4);
    w.section(
        *b"META",
        serde_json::to_string(&reference.meta).unwrap().as_bytes(),
    );
    w.section(*b"GRPH", &influence_graph_to_bytes(&reference.graph));
    w.section(*b"POOL", &reference.oracle.to_bytes());
    w.section(*b"DLTA", &reference.log.encode_payload());
    let mut snap = Vec::with_capacity(16);
    binio::put_u64(&mut snap, 0);
    binio::put_u64(&mut snap, reference.epoch());
    w.section(*b"SNAP", &snap);
    let v4_bytes = w.finish();

    let migrated = IndexArtifact::from_bytes(&v4_bytes).expect("v4 stays readable");
    assert_eq!(migrated.pool_layout(), PoolLayout::Raw);
    assert_eq!(migrated.epoch(), 1);
    assert_eq!(migrated.oracle.to_bytes(), reference.oracle.to_bytes());

    // Re-saving stamps the current version; the raw layout keeps the POOL
    // section, so the body differs only in the version field.
    let v5_bytes = migrated.to_bytes();
    assert_eq!(
        u32::from_le_bytes(v5_bytes[4..8].try_into().unwrap()),
        imserve::index::INDEX_VERSION
    );
    let reloaded = IndexArtifact::from_bytes(&v5_bytes).expect("v5 round trip");
    assert_eq!(reloaded.oracle.to_bytes(), migrated.oracle.to_bytes());
    assert_eq!(reloaded.to_bytes(), v5_bytes, "re-encode is stable");

    // Converting the migrated pool to the compressed layout swaps the
    // persisted section (POOL -> PCMP) and nothing else observable.
    let mut compressed = reloaded;
    compressed.convert_pool_layout(PoolLayout::Compressed);
    let compressed_bytes = compressed.to_bytes();
    assert_ne!(compressed_bytes, v5_bytes);
    let back = IndexArtifact::from_bytes(&compressed_bytes).expect("compressed round trip");
    assert_eq!(back.pool_layout(), PoolLayout::Compressed);
    assert_eq!(back.oracle.to_bytes(), reference.oracle.to_bytes());
    assert_eq!(back.epoch(), migrated.epoch());
    for seeds in [vec![0u32], vec![2, 20], vec![0, 1, 2, 3]] {
        assert_eq!(
            back.oracle.estimate(&seeds),
            reference.oracle.estimate(&seeds)
        );
    }
    assert_eq!(back.to_bytes(), compressed_bytes, "re-encode is stable");
}

/// A tiered artifact loaded from disk demotes cold pool blocks onto the
/// artifact file: far fewer bytes stay resident than for the compressed
/// in-memory load of the same artifact, and every answer is bit-identical to
/// the raw build's.
#[test]
fn tiered_artifacts_load_cold_and_answer_identically() {
    use im_core::PoolLayout;

    let graph = InfluenceGraph::new(
        DiGraph::from_edges(
            8,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 0),
                (4, 5),
                (5, 6),
                (6, 7),
                (7, 4),
            ],
        ),
        vec![0.6; 8],
    );
    let raw = IndexArtifact::build("tier-check", "uc0.6", graph, 6_000, 23);
    let mut tiered = raw.clone();
    tiered.convert_pool_layout(PoolLayout::Tiered);

    let path = std::env::temp_dir().join(format!(
        "imserve-tiered-roundtrip-{}.imx",
        std::process::id()
    ));
    tiered.save(path.to_str().unwrap()).unwrap();
    let loaded = IndexArtifact::load(path.to_str().unwrap()).unwrap();
    let _ = std::fs::remove_file(&path);

    assert_eq!(loaded.pool_layout(), PoolLayout::Tiered);
    // Cold demotion happened: the tiered load keeps less resident than the
    // fully-resident in-memory pool of either other layout.
    assert!(
        loaded.oracle.pool_resident_bytes() < tiered.oracle.pool_resident_bytes(),
        "tiered load must shed resident bytes ({} vs {})",
        loaded.oracle.pool_resident_bytes(),
        tiered.oracle.pool_resident_bytes()
    );
    // ...and answers stay bit-identical to the raw reference, pool bytes
    // included.
    assert_eq!(loaded.oracle.to_bytes(), raw.oracle.to_bytes());
    for seeds in [vec![0u32], vec![1, 5], vec![0, 2, 4, 6]] {
        assert_eq!(loaded.oracle.estimate(&seeds), raw.oracle.estimate(&seeds));
    }
}

/// Forged pool sections are rejected: both `POOL` and `PCMP` at once, and a
/// `PCMP` section smuggled into a pre-v5 artifact.
#[test]
fn conflicting_or_backdated_pool_sections_are_rejected() {
    use im_core::PoolLayout;
    use imgraph::binio::fnv1a64;

    let artifact = IndexArtifact::build(
        "pcmp-check",
        "uc0.5",
        InfluenceGraph::new(DiGraph::from_edges(3, &[(0, 1), (1, 2)]), vec![0.5, 0.5]),
        50,
        3,
    );
    let mut compressed = artifact.clone();
    compressed.convert_pool_layout(PoolLayout::Compressed);

    // Splice the PCMP payload of the compressed encoding into the raw
    // artifact as an *extra* section (before the checksum), re-stamping the
    // checksum so the one-pool-section rule is what fires.
    let raw_bytes = artifact.to_bytes();
    let pcmp_payload = artifact.oracle.encode_pcmp_payload(PoolLayout::Compressed);
    let mut both = raw_bytes[..raw_bytes.len() - 8].to_vec();
    both.extend_from_slice(b"PCMP");
    both.extend_from_slice(&(pcmp_payload.len() as u64).to_le_bytes());
    both.extend_from_slice(&pcmp_payload);
    let sum = fnv1a64(&both);
    both.extend_from_slice(&sum.to_le_bytes());
    match IndexArtifact::from_bytes(&both) {
        Err(BinError::Corrupt(reason)) => {
            assert!(reason.contains("both POOL and PCMP"), "{reason}");
        }
        other => panic!("double pool section must be rejected, got {other:?}"),
    }

    // Stamp a compressed (PCMP-carrying) artifact back to version 4: the
    // format predates the section, so the combination must be refused.
    let mut backdated = compressed.to_bytes();
    backdated[4..8].copy_from_slice(&4u32.to_le_bytes());
    let len = backdated.len();
    let sum = fnv1a64(&backdated[..len - 8]);
    backdated[len - 8..].copy_from_slice(&sum.to_le_bytes());
    match IndexArtifact::from_bytes(&backdated) {
        Err(BinError::Corrupt(reason)) => {
            assert!(reason.contains("version 5"), "{reason}");
        }
        other => panic!("backdated PCMP must be rejected, got {other:?}"),
    }
}

/// Version-1 artifacts carried per-batch pools that cannot be incrementally
/// maintained; since the format cannot distinguish the sampling scheme from
/// the bytes, loading one must be refused outright (with a rebuild hint)
/// rather than mutated unsoundly.
#[test]
fn version_one_artifacts_are_rejected_with_a_rebuild_hint() {
    let artifact = IndexArtifact::build(
        "v1-check",
        "uc0.5",
        InfluenceGraph::new(DiGraph::from_edges(3, &[(0, 1), (1, 2)]), vec![0.5, 0.5]),
        50,
        3,
    );
    let mut bytes = artifact.to_bytes();
    // Stamp the header back to version 1 and fix up the checksum so the
    // version check is what fires.
    bytes[4..8].copy_from_slice(&1u32.to_le_bytes());
    let len = bytes.len();
    let sum = imgraph::binio::fnv1a64(&bytes[..len - 8]);
    bytes[len - 8..].copy_from_slice(&sum.to_le_bytes());
    match IndexArtifact::from_bytes(&bytes) {
        Err(BinError::Corrupt(reason)) => {
            assert!(reason.contains("version 1"), "{reason}");
            assert!(reason.contains("rebuild"), "{reason}");
        }
        other => panic!("v1 artifact must be rejected as Corrupt, got {other:?}"),
    }
}
