//! The unified influence-query surface: one typed trait over every backend.
//!
//! Before this module the workspace had three disjoint ways to ask the same
//! influence question — in-process [`crate::engine::QueryEngine::handle`]
//! with the externally-tagged [`crate::protocol::Response`] enum, the
//! blocking TCP client, and direct oracle calls in the experiment harness —
//! so every new capability had to be wired three times and there was no seam
//! to plug sharding into. [`InfluenceService`] is that seam: a typed trait
//! whose implementations are interchangeable.
//!
//! * [`LocalService`] wraps an [`std::sync::Arc`]'d engine — zero-cost,
//!   scratch-reusing, the in-process backend;
//! * [`crate::client::RemoteService`] speaks protocol v2 over TCP;
//! * [`crate::shard::ShardedService`] routes over N backends holding
//!   disjoint RR-set pool shards and merges their integer coverage counts,
//!   so its answers are byte-identical to a single-pool backend.
//!
//! Every method returns `Result<_, `[`ServiceError`]`>` with a typed error
//! taxonomy instead of a stringly `Response::Error`, and the result types
//! carry the integer coverage counts (`covered`, `pool`) that make exact
//! cross-shard merging possible — floating-point combination of per-shard
//! spreads would not reproduce the single-pool answer bit for bit.

use std::sync::Arc;

use im_core::EstimateScratch;
use imdyn::EpochReport;
use imgraph::GraphDelta;
use serde::{Deserialize, Serialize};

use crate::engine::QueryEngine;
use crate::error::ServeError;
use crate::protocol::TopKAlgorithm;

/// Everything that can go wrong while answering an influence query, typed by
/// *whose fault it is* so callers can branch without parsing messages. The
/// first four variants travel over protocol v2 as
/// [`crate::protocol::ErrorKind`]; the rest are client-side conditions that
/// never appear on the wire.
#[derive(Debug)]
pub enum ServiceError {
    /// The query itself is invalid against the served index (seed out of
    /// range, `k == 0`, …). Retrying without changing the request is useless.
    Query(String),
    /// A mutation batch was rejected (invalid delta, duplicate edge, …);
    /// atomic batches leave the index untouched.
    Mutation(String),
    /// The peer violated the wire protocol (malformed frame, wrong response
    /// variant, version mismatch).
    Protocol(String),
    /// The backend failed internally (index corruption, WAL append failure).
    Backend(String),
    /// The transport failed (connect, read, write).
    Transport(std::io::Error),
    /// A sharded deployment lost its union invariant (shards disagree on
    /// epoch, dimensions, or a broadcast was torn). Queries can no longer be
    /// merged soundly; the shards need re-synchronization.
    Shard(String),
    /// The backend is a read-only replica: it applies mutations only from
    /// its replication stream, never from clients. Write to the leader (or
    /// promote the replica) instead.
    ReadOnly(String),
    /// A follower promotion was refused — its replication cursor has not
    /// reached the epoch the caller required. The message names the epoch
    /// gap.
    Promotion(String),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Query(m) => write!(f, "query error: {m}"),
            ServiceError::Mutation(m) => write!(f, "mutation rejected: {m}"),
            ServiceError::Protocol(m) => write!(f, "protocol error: {m}"),
            ServiceError::Backend(m) => write!(f, "backend error: {m}"),
            ServiceError::Transport(e) => write!(f, "transport error: {e}"),
            ServiceError::Shard(m) => write!(f, "shard invariant violated: {m}"),
            ServiceError::ReadOnly(m) => write!(f, "read-only replica: {m}"),
            ServiceError::Promotion(m) => write!(f, "promotion refused: {m}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<std::io::Error> for ServiceError {
    fn from(e: std::io::Error) -> Self {
        ServiceError::Transport(e)
    }
}

impl From<ServeError> for ServiceError {
    fn from(e: ServeError) -> Self {
        match e {
            ServeError::Io(io) => ServiceError::Transport(io),
            ServeError::Protocol(m) => ServiceError::Protocol(m),
            ServeError::Query(m) => ServiceError::Query(m),
            ServeError::Index(b) => ServiceError::Backend(format!("index error: {b}")),
            ServeError::Build(m) => ServiceError::Backend(format!("build error: {m}")),
            ServeError::Wal(m) => ServiceError::Backend(format!("WAL error: {m}")),
        }
    }
}

/// Shorthand for the trait's return type.
pub type ServiceResult<T> = Result<T, ServiceError>;

/// Index metadata as served: dimensions of the graph and pool behind the
/// service. For a sharded service the pool size is the union pool and the
/// confidence half-width is derived from it.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceInfo {
    /// Stable identifier of the indexed graph.
    pub graph_id: String,
    /// Label of the edge-probability model.
    pub model: String,
    /// Vertices of the indexed graph.
    pub num_vertices: usize,
    /// Edges of the indexed graph (tracks mutations).
    pub num_edges: usize,
    /// RR sets answering queries (summed over shards).
    pub pool_size: usize,
    /// The oracle's 99 % confidence half-width `1.29·n/√pool`.
    pub confidence_99: f64,
    /// First global set id of the served pool: `0` for a whole pool (or a
    /// fully merged shard group), the shard's stream offset for one shard.
    /// Together with `pool_size` this is the pool's global range — what a
    /// shard router validates disjoint, gap-free coverage against.
    pub shard_offset: u64,
    /// RR sets in the whole global pool this one belongs to (equal to
    /// `pool_size` for an unsharded index or a fully merged group).
    pub global_pool: u64,
}

/// A spread estimate, with the integer coverage count it derives from.
///
/// `spread == num_vertices · covered / pool` exactly; carrying the integers
/// lets a router re-derive the union estimate from summed counts so a
/// sharded answer is bit-identical to the single-pool one.
#[derive(Debug, Clone, PartialEq)]
pub struct SpreadEstimate {
    /// The seeds echoed back (as received).
    pub seeds: Vec<u32>,
    /// The oracle estimate `n·(covered fraction of the pool)`.
    pub spread: f64,
    /// Distinct pool RR sets intersecting the seed set.
    pub covered: u64,
    /// RR sets in the answering pool.
    pub pool: u64,
}

/// A selected seed set with its estimated joint influence.
#[derive(Debug, Clone, PartialEq)]
pub struct TopKSelection {
    /// The chosen seeds in selection order.
    pub seeds: Vec<u32>,
    /// The oracle estimate of the joint influence of `seeds`.
    pub spread: f64,
    /// The strategy that produced the set.
    pub algorithm: TopKAlgorithm,
}

/// One round of greedy maximum coverage as data: every vertex's marginal
/// coverage gain given an already-selected seed set — the shard-side
/// primitive of distributed `TopK` (see
/// [`im_core::InfluenceOracle::coverage_gains`]).
#[derive(Debug, Clone, PartialEq)]
pub struct GainVector {
    /// Per-vertex marginal gain: pool RR sets the vertex covers that the
    /// selected set does not.
    pub gains: Vec<u64>,
    /// Pool RR sets covered by the selected set.
    pub covered: u64,
    /// RR sets in the answering pool.
    pub pool: u64,
}

/// What an applied mutation batch did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MutationOutcome {
    /// The index epoch after the batch (total deltas ever applied).
    pub epoch: u64,
    /// Deltas applied by this batch.
    pub applied: usize,
    /// Distinct RR sets resampled (summed over shards).
    pub resampled: usize,
    /// Whether the batch triggered an automatic compaction (any shard).
    pub compacted: bool,
}

/// What a compaction did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionReport {
    /// The index epoch — unchanged by compaction.
    pub epoch: u64,
    /// Pending deltas folded into the watermark (summed over shards).
    pub folded: usize,
}

/// What a hot-swap reload did. The swap never changes answers — the new
/// artifact must replay to the identical epoch and fingerprint — so the
/// outcome only reports the (unchanged) logical position and the new
/// physical shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReloadOutcome {
    /// The index epoch (identical before and after the swap).
    pub epoch: u64,
    /// RR sets in the served pool after the swap.
    pub pool_size: usize,
    /// Pending delta-log length after the swap (typically smaller: the
    /// reloaded artifact is usually a compacted copy).
    pub log_len: usize,
    /// Microseconds the validated swap took under the write lock.
    pub swap_micros: u64,
}

/// What a promotion did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PromotionOutcome {
    /// The node's epoch at the moment it became writable.
    pub epoch: u64,
    /// Whether this call actually flipped the node writable (`false` when
    /// it was already a leader — promotion is idempotent).
    pub was_read_only: bool,
}

/// Lifetime request counts split by request type — the per-type half of the
/// operational picture `query --stats` reports. Travels on the wire inside
/// `Response::Stats` (volatile, like every other stats field).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RequestTypeCounts {
    /// `Ping` liveness checks.
    pub ping: u64,
    /// `Hello` version handshakes.
    pub hello: u64,
    /// `Info` metadata requests.
    pub info: u64,
    /// `Estimate` spread queries.
    pub estimate: u64,
    /// `TopK` selections.
    pub top_k: u64,
    /// `Gains` marginal-coverage queries.
    pub gains: u64,
    /// `Mutate` (non-atomic) batches.
    pub mutate: u64,
    /// `MutateBatch` atomic batches.
    pub mutate_batch: u64,
    /// `Compact` requests.
    pub compact: u64,
    /// `Stats` requests.
    pub stats: u64,
    /// `Metrics` snapshot requests.
    pub metrics: u64,
    /// `Reload` hot-swap requests.
    pub reload: u64,
    /// `Promote` admin requests.
    pub promote: u64,
}

impl RequestTypeCounts {
    /// Total requests across every type.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.ping
            + self.hello
            + self.info
            + self.estimate
            + self.top_k
            + self.gains
            + self.mutate
            + self.mutate_batch
            + self.compact
            + self.stats
            + self.metrics
            + self.reload
            + self.promote
    }

    /// Field-wise sum (how a shard router aggregates its backends).
    #[must_use]
    pub fn merged(&self, other: &Self) -> Self {
        Self {
            ping: self.ping + other.ping,
            hello: self.hello + other.hello,
            info: self.info + other.info,
            estimate: self.estimate + other.estimate,
            top_k: self.top_k + other.top_k,
            gains: self.gains + other.gains,
            mutate: self.mutate + other.mutate,
            mutate_batch: self.mutate_batch + other.mutate_batch,
            compact: self.compact + other.compact,
            stats: self.stats + other.stats,
            metrics: self.metrics + other.metrics,
            reload: self.reload + other.reload,
            promote: self.promote + other.promote,
        }
    }
}

/// Serving counters, pool dimensions and the epoch timeline.
///
/// For local and remote backends `shards` is empty; a sharded service
/// reports one lockstep-verified [`EpochReport`] per shard (the shard-aware
/// epoch reporting that makes torn broadcasts observable).
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceStats {
    /// Total requests handled (summed over shards; lifetime counters).
    pub requests: u64,
    /// `TopK` answers served from backend LRU caches.
    pub topk_cache_hits: u64,
    /// `TopK` answers computed and inserted into backend caches.
    pub topk_cache_misses: u64,
    /// RR sets answering queries (summed over shards).
    pub pool_size: usize,
    /// Current index epoch (lockstep across shards).
    pub epoch: u64,
    /// Deltas applied by the serving process(es).
    pub deltas_applied: u64,
    /// RR sets resampled by the serving process(es) (summed over shards).
    pub sets_resampled: u64,
    /// Pending (uncompacted) deltas in the log (lockstep across shards).
    pub log_len: usize,
    /// The snapshot watermark (lockstep across shards).
    pub snapshot_epoch: u64,
    /// Compactions performed (summed over shards).
    pub compactions: u64,
    /// Seconds the serving process has been up (the max over shards — the
    /// oldest backend of the group).
    pub uptime_secs: u64,
    /// Lifetime requests split by request type (summed over shards).
    pub requests_by_type: RequestTypeCounts,
    /// Bytes of process memory the pool store keeps resident (summed over
    /// shards): list directories, skip headers, hot lists and overlays — a
    /// tiered store's cold file bytes are excluded.
    pub pool_resident_bytes: u64,
    /// Active pool-store layout label (`raw`, `compressed`, `tiered`;
    /// `mixed` when shards disagree).
    pub pool_layout: String,
    /// Per-shard epoch reports (empty for unsharded backends).
    pub shards: Vec<EpochReport>,
}

impl ServiceStats {
    /// Resident pool bytes per RR set — the storage engine's headline
    /// figure (`0.0` for an empty pool).
    #[must_use]
    pub fn pool_bytes_per_set(&self) -> f64 {
        if self.pool_size == 0 {
            return 0.0;
        }
        self.pool_resident_bytes as f64 / self.pool_size as f64
    }
}

/// One sampled counter or other scalar `u64` metric.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricSample {
    /// Fully-qualified metric name (may carry inline labels).
    pub name: String,
    /// Sampled value.
    pub value: u64,
}

/// One sampled gauge (signed level).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GaugeSample {
    /// Fully-qualified metric name.
    pub name: String,
    /// Sampled level.
    pub value: i64,
}

/// One cumulative histogram bucket: samples `≤ le`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramBucket {
    /// Inclusive upper bound of the bucket.
    pub le: u64,
    /// Samples at or below `le` (cumulative).
    pub count: u64,
}

/// One sampled log₂ histogram, in cumulative-bucket form (trailing empty
/// buckets trimmed; the last bucket's count equals `count`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSample {
    /// Fully-qualified metric name.
    pub name: String,
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Cumulative buckets, lowest bound first.
    pub buckets: Vec<HistogramBucket>,
}

impl HistogramSample {
    /// Upper bound of the bucket holding the `q`-quantile sample (`0` when
    /// empty) — the same estimate the server-side histogram answers, exact
    /// to within one log₂ bucket.
    #[must_use]
    pub fn quantile_micros(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        for b in &self.buckets {
            if b.count >= rank {
                return b.le;
            }
        }
        self.buckets.last().map_or(0, |b| b.le)
    }
}

/// One stage event inside a traced request span.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanStage {
    /// Stage label (`parse`, `queue_wait`, `execute`, …).
    pub stage: String,
    /// Microseconds this stage took.
    pub at_micros: u64,
}

/// One retained slow query: its trace id and full stage timeline.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlowQuery {
    /// The request's trace id (shared across hops of one logical request,
    /// so router-side and shard-side entries stitch together).
    pub trace: u64,
    /// End-to-end microseconds for this hop.
    pub total_micros: u64,
    /// Stage events in record order.
    pub stages: Vec<SpanStage>,
}

/// A point-in-time snapshot of a backend's observability state: every
/// registered counter, gauge and histogram plus the slow-query log. This is
/// the wire form of `query --metrics` / `Request::Metrics`; the same data
/// renders as Prometheus text on `serve --metrics-addr`.
///
/// Like `Stats`, metrics responses are deliberately volatile — the
/// byte-identity invariant covers query answers, not diagnostics.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsReport {
    /// Every counter, in registration order.
    pub counters: Vec<MetricSample>,
    /// Every gauge, in registration order.
    pub gauges: Vec<GaugeSample>,
    /// Every histogram, in registration order.
    pub histograms: Vec<HistogramSample>,
    /// Retained slow queries, oldest first.
    pub slow_queries: Vec<SlowQuery>,
}

/// Insert `shard="i"` as the first label of a (possibly already labelled)
/// series name: `x_total` → `x_total{shard="0"}`, `x_total{type="a"}` →
/// `x_total{shard="0",type="a"}`.
fn shard_labelled(name: &str, shard: usize) -> String {
    match name.split_once('{') {
        Some((family, rest)) => format!("{family}{{shard=\"{shard}\",{rest}"),
        None => format!("{name}{{shard=\"{shard}\"}}"),
    }
}

/// Merge two cumulative log₂ histogram bucket series. Both sides are
/// contiguous from bucket index 0 with canonical `le` bounds (the shape
/// every `MetricsReport` producer emits), so bucket `i` aligns with bucket
/// `i` and a cumulative count past a side's trimmed tail saturates at that
/// side's total — exactly the series the concatenated samples would
/// produce.
fn merge_cumulative_buckets(
    a: &[HistogramBucket],
    a_total: u64,
    b: &[HistogramBucket],
    b_total: u64,
) -> Vec<HistogramBucket> {
    let len = a.len().max(b.len());
    let mut out = Vec::with_capacity(len);
    for i in 0..len {
        let le = a
            .get(i)
            .or_else(|| b.get(i))
            .map_or_else(|| imobs::bucket_upper_bound(i), |bucket| bucket.le);
        let ca = a.get(i).map_or(a_total, |bucket| bucket.count);
        let cb = b.get(i).map_or(b_total, |bucket| bucket.count);
        out.push(HistogramBucket { le, count: ca + cb });
    }
    out
}

impl MetricsReport {
    /// Look up a counter value by exact name (`0` when absent — counters
    /// that never fired may legitimately be missing from older servers).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|s| s.name == name)
            .map_or(0, |s| s.value)
    }

    /// Look up a gauge level by exact name.
    #[must_use]
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges
            .iter()
            .find(|s| s.name == name)
            .map_or(0, |s| s.value)
    }

    /// Look up a histogram by exact name.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramSample> {
        self.histograms.iter().find(|s| s.name == name)
    }

    /// A copy of this report with every series relabelled under
    /// `shard="i"` — how a router tags one shard's snapshot before folding
    /// it into the federated cluster report. Slow queries are kept verbatim
    /// (they already carry trace ids that identify their hop).
    #[must_use]
    pub fn with_shard_label(&self, shard: usize) -> MetricsReport {
        MetricsReport {
            counters: self
                .counters
                .iter()
                .map(|s| MetricSample {
                    name: shard_labelled(&s.name, shard),
                    value: s.value,
                })
                .collect(),
            gauges: self
                .gauges
                .iter()
                .map(|s| GaugeSample {
                    name: shard_labelled(&s.name, shard),
                    value: s.value,
                })
                .collect(),
            histograms: self
                .histograms
                .iter()
                .map(|s| HistogramSample {
                    name: shard_labelled(&s.name, shard),
                    count: s.count,
                    sum: s.sum,
                    buckets: s.buckets.clone(),
                })
                .collect(),
            slow_queries: self.slow_queries.clone(),
        }
    }

    /// Fold `other` into `self` by exact series name: counters and gauges
    /// sum, cumulative histogram buckets add element-wise (so a merged
    /// quantile keeps the one-bucket error bound), series absent on one
    /// side append verbatim, and slow queries concatenate. Merging a
    /// shard-labelled copy *and* the unlabelled original gives the
    /// federated shape: per-shard series plus a cluster-wide sum.
    pub fn merge(&mut self, other: &MetricsReport) {
        for sample in &other.counters {
            match self.counters.iter_mut().find(|s| s.name == sample.name) {
                Some(mine) => mine.value += sample.value,
                None => self.counters.push(sample.clone()),
            }
        }
        for sample in &other.gauges {
            match self.gauges.iter_mut().find(|s| s.name == sample.name) {
                Some(mine) => mine.value += sample.value,
                None => self.gauges.push(sample.clone()),
            }
        }
        for sample in &other.histograms {
            match self.histograms.iter_mut().find(|s| s.name == sample.name) {
                Some(mine) => {
                    mine.buckets = merge_cumulative_buckets(
                        &mine.buckets,
                        mine.count,
                        &sample.buckets,
                        sample.count,
                    );
                    mine.count += sample.count;
                    mine.sum = mine.sum.wrapping_add(sample.sum);
                }
                None => self.histograms.push(sample.clone()),
            }
        }
        self.slow_queries.extend(other.slow_queries.iter().cloned());
    }

    /// Render this report in Prometheus plaintext exposition format, with
    /// families and labelled series lexicographically sorted (byte-stable,
    /// like [`imobs::Registry::render_prometheus`]). This is how a router
    /// exposes a *federated* report — snapshot data merged from many
    /// processes, with no live registry behind it. Slow queries append as
    /// `# slowlog` comment lines.
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write as _;
        enum Kind<'a> {
            Counter(u64),
            Gauge(i64),
            Histogram(&'a HistogramSample),
        }
        let mut series: Vec<(&str, &str, Kind<'_>)> = Vec::new();
        for s in &self.counters {
            series.push((imobs::family_of(&s.name), &s.name, Kind::Counter(s.value)));
        }
        for s in &self.gauges {
            series.push((imobs::family_of(&s.name), &s.name, Kind::Gauge(s.value)));
        }
        for s in &self.histograms {
            series.push((imobs::family_of(&s.name), &s.name, Kind::Histogram(s)));
        }
        series.sort_by(|a, b| a.0.cmp(b.0).then_with(|| a.1.cmp(b.1)));
        let mut out = String::new();
        let mut last_family: Option<&str> = None;
        for (family, name, kind) in &series {
            let first_of_family = last_family != Some(family);
            if first_of_family {
                last_family = Some(family);
            }
            match kind {
                Kind::Counter(v) => {
                    if first_of_family {
                        let _ = writeln!(out, "# TYPE {family} counter");
                    }
                    let _ = writeln!(out, "{name} {v}");
                }
                Kind::Gauge(v) => {
                    if first_of_family {
                        let _ = writeln!(out, "# TYPE {family} gauge");
                    }
                    let _ = writeln!(out, "{name} {v}");
                }
                Kind::Histogram(h) => {
                    if first_of_family {
                        let _ = writeln!(out, "# TYPE {family} histogram");
                    }
                    for bucket in &h.buckets {
                        let _ = writeln!(
                            out,
                            "{name}_bucket{{le=\"{}\"}} {}",
                            bucket.le, bucket.count
                        );
                    }
                    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
                    let _ = writeln!(out, "{name}_sum {}", h.sum);
                    let _ = writeln!(out, "{name}_count {}", h.count);
                }
            }
        }
        for slow in &self.slow_queries {
            let _ = write!(
                out,
                "# slowlog trace={:#x} total_us={} stages[",
                slow.trace, slow.total_micros
            );
            for (i, stage) in slow.stages.iter().enumerate() {
                let sep = if i == 0 { "" } else { "," };
                let _ = write!(out, "{sep}{}={}", stage.stage, stage.at_micros);
            }
            let _ = writeln!(out, "]");
        }
        out
    }
}

/// One typed field of a wire [`EventRecord`], stringified at snapshot time
/// (the in-process ring keeps values typed; the wire does not need to).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventFieldSample {
    /// Field name.
    pub name: String,
    /// Field value, rendered.
    pub value: String,
}

/// One operational event as served by the `Events` protocol request and the
/// `/events` endpoint: the wire form of [`imobs::Event`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventRecord {
    /// Monotone per-process sequence number.
    pub seq: u64,
    /// Severity (`info` / `warn` / `error`).
    pub level: String,
    /// Stable machine-readable code (`wal_append_failed`, `torn_broadcast`,
    /// `compaction_finished`, …).
    pub code: String,
    /// Wall-clock microseconds since the Unix epoch when recorded.
    pub at_unix_micros: u64,
    /// The active trace id (`0` when the event happened outside a request).
    pub trace: u64,
    /// Typed fields, stringified.
    pub fields: Vec<EventFieldSample>,
}

impl From<&imobs::Event> for EventRecord {
    fn from(event: &imobs::Event) -> Self {
        EventRecord {
            seq: event.seq,
            level: event.level.as_str().to_string(),
            code: event.code.to_string(),
            at_unix_micros: event.at_unix_micros,
            trace: event.trace,
            fields: event
                .fields
                .iter()
                .map(|f| EventFieldSample {
                    name: f.name.to_string(),
                    value: f.value.to_string(),
                })
                .collect(),
        }
    }
}

impl EventRecord {
    /// Look up a field's rendered value by name.
    #[must_use]
    pub fn field(&self, name: &str) -> Option<&str> {
        self.fields
            .iter()
            .find(|f| f.name == name)
            .map(|f| f.value.as_str())
    }
}

/// One named health signal with its verdict and a human-readable detail
/// (which shard, which bound, what it read).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HealthSignal {
    /// Signal name (`wal_writable`, `shard_0_reachable`, `epoch_lockstep`,
    /// `reactor_backpressure`, …).
    pub name: String,
    /// Whether the signal is healthy.
    pub ok: bool,
    /// What the signal read, or why it failed.
    pub detail: String,
}

/// A liveness/readiness verdict computed from real signals — the payload of
/// the `Health` protocol request and the `/readyz` endpoint. `ready` is the
/// conjunction of every signal, so a degraded report always names *which*
/// signal (and for a router, which shard) failed and why.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HealthReport {
    /// Whether every signal is healthy.
    pub ready: bool,
    /// Every evaluated signal, healthy or not.
    pub signals: Vec<HealthSignal>,
}

impl HealthReport {
    /// An empty (vacuously ready) report to push signals into.
    #[must_use]
    pub fn new() -> Self {
        HealthReport {
            ready: true,
            signals: Vec::new(),
        }
    }

    /// Record one signal; an unhealthy one flips `ready` off.
    pub fn push(&mut self, name: impl Into<String>, ok: bool, detail: impl Into<String>) {
        self.ready &= ok;
        self.signals.push(HealthSignal {
            name: name.into(),
            ok,
            detail: detail.into(),
        });
    }

    /// Look up a signal by exact name.
    #[must_use]
    pub fn signal(&self, name: &str) -> Option<&HealthSignal> {
        self.signals.iter().find(|s| s.name == name)
    }

    /// The plaintext `/readyz` body: `ready` on success, otherwise
    /// `not ready` followed by one `name: detail` line per failing signal.
    #[must_use]
    pub fn render_text(&self) -> String {
        if self.ready {
            return "ready\n".to_string();
        }
        let mut out = String::from("not ready\n");
        for signal in self.signals.iter().filter(|s| !s.ok) {
            out.push_str(&signal.name);
            out.push_str(": ");
            out.push_str(&signal.detail);
            out.push('\n');
        }
        out
    }
}

/// One typed query surface over local, remote and sharded backends.
///
/// Methods take `&mut self` because every implementation owns per-caller
/// mutable state (an estimate scratch, a TCP connection, a shard router);
/// the engine behind a [`LocalService`] stays fully shared — cheap handles,
/// one per worker.
///
/// Implementations must be *interchangeable*: for the same logical pool
/// (one index, or its shards derived from one [`im_core::shard_layout`]),
/// `estimate`, `top_k` and `gains` return bit-identical values on every
/// backend. That invariant is what lets the experiment harness and the load
/// generator run unchanged against any backend.
pub trait InfluenceService {
    /// Index metadata (graph and pool dimensions).
    fn info(&mut self) -> ServiceResult<ServiceInfo>;

    /// Estimate the influence spread of an explicit seed set.
    fn estimate(&mut self, seeds: &[u32]) -> ServiceResult<SpreadEstimate>;

    /// Select an influential seed set of size `k`.
    fn top_k(&mut self, k: usize, algorithm: TopKAlgorithm) -> ServiceResult<TopKSelection>;

    /// Per-vertex marginal coverage gains given `selected` (one round of
    /// greedy maximum coverage as data; the distributed-`TopK` primitive).
    fn gains(&mut self, selected: &[u32]) -> ServiceResult<GainVector>;

    /// Apply a batch of graph mutations atomically (all-or-nothing per
    /// backend; a sharded service broadcasts to every shard).
    fn mutate_batch(&mut self, deltas: &[GraphDelta]) -> ServiceResult<MutationOutcome>;

    /// Fold the pending delta log into the snapshot watermark now.
    fn compact(&mut self) -> ServiceResult<CompactionReport>;

    /// Serving counters and the epoch timeline.
    fn stats(&mut self) -> ServiceResult<ServiceStats>;

    /// A point-in-time observability snapshot: every registered metric plus
    /// the slow-query log. [`LocalService`] snapshots its engine's registry;
    /// [`crate::client::RemoteService`] fetches the server's over the wire;
    /// [`crate::shard::ShardedService`] reports its *router-side* registry
    /// (fan-out counters and latencies — ask the shards directly for
    /// engine-side metrics). The default declines, so minimal test doubles
    /// keep compiling.
    fn metrics(&mut self) -> ServiceResult<MetricsReport> {
        Err(ServiceError::Backend(
            "metrics snapshot not supported by this backend".into(),
        ))
    }

    /// A liveness/readiness verdict computed from real signals: WAL
    /// writability, shard reachability and epoch lockstep, reactor
    /// backpressure. [`LocalService`] asks its engine;
    /// [`crate::client::RemoteService`] sends the typed `Health` request;
    /// [`crate::shard::ShardedService`] probes every shard and degrades its
    /// readiness naming the failing shard. The default declines, so minimal
    /// test doubles keep compiling.
    fn health(&mut self) -> ServiceResult<HealthReport> {
        Err(ServiceError::Backend(
            "health report not supported by this backend".into(),
        ))
    }

    /// The backend's recent operational events (WAL failures, compactions,
    /// torn broadcasts, backpressure episodes), oldest first. The default
    /// declines, like [`InfluenceService::metrics`].
    fn events(&mut self) -> ServiceResult<Vec<EventRecord>> {
        Err(ServiceError::Backend(
            "event log not supported by this backend".into(),
        ))
    }

    /// Hot-swap the backend's index for the artifact at `path` (a path on
    /// the *backend's* filesystem — typically a compacted copy written by
    /// `imserve compact --index`). The backend validates identity, graph
    /// fingerprint and epoch continuity before swapping; in-flight queries
    /// finish on the old snapshot. The default declines, like
    /// [`InfluenceService::metrics`].
    fn reload(&mut self, path: &str) -> ServiceResult<ReloadOutcome> {
        let _ = path;
        Err(ServiceError::Backend(
            "hot-swap reload not supported by this backend".into(),
        ))
    }

    /// Turn a read-only follower writable. With `expected_epoch` set the
    /// backend refuses (typed [`ServiceError::Promotion`] naming the gap)
    /// unless its replication cursor reached that epoch; `None` promotes
    /// unconditionally (the operator accepts whatever was replicated). The
    /// default declines, like [`InfluenceService::metrics`].
    fn promote(&mut self, expected_epoch: Option<u64>) -> ServiceResult<PromotionOutcome> {
        let _ = expected_epoch;
        Err(ServiceError::Backend(
            "promotion not supported by this backend".into(),
        ))
    }

    /// Join this service's subsequent calls to the caller's request trace.
    /// Remote backends propagate the id on every v2 frame (`"t"` field) so
    /// the server's span — and its slow-log entry, if the request is slow —
    /// carries the caller's id; a shard router sets it on every shard before
    /// a fan-out. `None` (the default state) omits the field and leaves the
    /// wire bytes exactly as before. In-process backends ignore it (their
    /// spans are created by the serving front end, not the service).
    fn set_trace(&mut self, trace: Option<u64>) {
        let _ = trace;
    }

    /// Bound how long any single call on this service may wait on its
    /// backend. In-process backends answer synchronously and ignore the
    /// deadline (the default no-op); [`crate::client::RemoteService`] maps
    /// it onto socket timeouts, and [`crate::shard::ShardedService`]
    /// propagates it to every shard so one dead shard fails the fan-out
    /// loudly (as a typed [`ServiceError::Shard`]) instead of hanging the
    /// router. `None` removes the bound.
    fn set_deadline(&mut self, deadline: Option<std::time::Duration>) -> ServiceResult<()> {
        let _ = deadline;
        Ok(())
    }
}

impl<S: InfluenceService + ?Sized> InfluenceService for Box<S> {
    fn info(&mut self) -> ServiceResult<ServiceInfo> {
        (**self).info()
    }
    fn estimate(&mut self, seeds: &[u32]) -> ServiceResult<SpreadEstimate> {
        (**self).estimate(seeds)
    }
    fn top_k(&mut self, k: usize, algorithm: TopKAlgorithm) -> ServiceResult<TopKSelection> {
        (**self).top_k(k, algorithm)
    }
    fn gains(&mut self, selected: &[u32]) -> ServiceResult<GainVector> {
        (**self).gains(selected)
    }
    fn mutate_batch(&mut self, deltas: &[GraphDelta]) -> ServiceResult<MutationOutcome> {
        (**self).mutate_batch(deltas)
    }
    fn compact(&mut self) -> ServiceResult<CompactionReport> {
        (**self).compact()
    }
    fn stats(&mut self) -> ServiceResult<ServiceStats> {
        (**self).stats()
    }
    fn metrics(&mut self) -> ServiceResult<MetricsReport> {
        (**self).metrics()
    }
    fn health(&mut self) -> ServiceResult<HealthReport> {
        (**self).health()
    }
    fn events(&mut self) -> ServiceResult<Vec<EventRecord>> {
        (**self).events()
    }
    fn reload(&mut self, path: &str) -> ServiceResult<ReloadOutcome> {
        (**self).reload(path)
    }
    fn promote(&mut self, expected_epoch: Option<u64>) -> ServiceResult<PromotionOutcome> {
        (**self).promote(expected_epoch)
    }
    fn set_trace(&mut self, trace: Option<u64>) {
        (**self).set_trace(trace)
    }
    fn set_deadline(&mut self, deadline: Option<std::time::Duration>) -> ServiceResult<()> {
        (**self).set_deadline(deadline)
    }
}

/// The in-process backend: a cheap per-caller handle onto a shared
/// [`QueryEngine`], owning the one piece of per-caller state (the estimate
/// scratch) so the `estimate` hot path stays zero-allocation.
///
/// ```
/// use std::sync::Arc;
/// use imserve::engine::QueryEngine;
/// use imserve::index::build_dataset_index;
/// use imserve::service::{InfluenceService, LocalService};
///
/// let index = build_dataset_index("karate", "uc0.1", 500, 7).unwrap();
/// let engine = Arc::new(QueryEngine::builder(index).build().unwrap());
/// let mut service = LocalService::new(engine);
/// let estimate = service.estimate(&[0, 33]).unwrap();
/// assert!(estimate.spread > 0.0);
/// ```
#[derive(Debug)]
pub struct LocalService {
    engine: Arc<QueryEngine>,
    scratch: EstimateScratch,
}

impl LocalService {
    /// A new handle onto `engine` (allocates only the estimate scratch).
    #[must_use]
    pub fn new(engine: Arc<QueryEngine>) -> Self {
        let scratch = engine.new_scratch();
        Self { engine, scratch }
    }

    /// The shared engine behind this handle.
    #[must_use]
    pub fn engine(&self) -> &Arc<QueryEngine> {
        &self.engine
    }
}

impl InfluenceService for LocalService {
    fn info(&mut self) -> ServiceResult<ServiceInfo> {
        Ok(self.engine.info())
    }

    fn estimate(&mut self, seeds: &[u32]) -> ServiceResult<SpreadEstimate> {
        self.engine.estimate(seeds, &mut self.scratch)
    }

    fn top_k(&mut self, k: usize, algorithm: TopKAlgorithm) -> ServiceResult<TopKSelection> {
        self.engine.top_k(k, algorithm)
    }

    fn gains(&mut self, selected: &[u32]) -> ServiceResult<GainVector> {
        self.engine.gains(selected)
    }

    fn mutate_batch(&mut self, deltas: &[GraphDelta]) -> ServiceResult<MutationOutcome> {
        self.engine.mutate_batch(deltas)
    }

    fn compact(&mut self) -> ServiceResult<CompactionReport> {
        Ok(self.engine.compact())
    }

    fn stats(&mut self) -> ServiceResult<ServiceStats> {
        Ok(self.engine.stats())
    }

    fn metrics(&mut self) -> ServiceResult<MetricsReport> {
        Ok(self.engine.metrics_report())
    }

    fn health(&mut self) -> ServiceResult<HealthReport> {
        Ok(self.engine.health())
    }

    fn events(&mut self) -> ServiceResult<Vec<EventRecord>> {
        Ok(self.engine.event_records())
    }

    fn reload(&mut self, path: &str) -> ServiceResult<ReloadOutcome> {
        self.engine.reload_from_path(std::path::Path::new(path))
    }

    fn promote(&mut self, expected_epoch: Option<u64>) -> ServiceResult<PromotionOutcome> {
        self.engine.promote(expected_epoch)
    }
}

/// Which [`InfluenceService`] implementation to run a workload against —
/// the `--backend` axis of `imexp loadtest` and friends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendSpec {
    /// In-process [`LocalService`] over one engine.
    Local,
    /// [`crate::client::RemoteService`] over a threaded TCP server (spawned
    /// on an ephemeral port by harnesses that own the index).
    Remote,
    /// [`crate::client::RemoteService`] over the event-driven reactor front
    /// end ([`crate::reactor`]) on an ephemeral port.
    RemoteReactor,
    /// [`crate::shard::ShardedService`] over this many local pool shards.
    Sharded(usize),
}

impl BackendSpec {
    /// Parse the CLI spelling: `local`, `remote`, `remote-reactor` or
    /// `sharded:N`.
    pub fn parse(s: &str) -> Result<Self, ServiceError> {
        match s {
            "local" => return Ok(BackendSpec::Local),
            "remote" => return Ok(BackendSpec::Remote),
            "remote-reactor" => return Ok(BackendSpec::RemoteReactor),
            _ => {}
        }
        if let Some(n) = s.strip_prefix("sharded:") {
            let shards: usize = n.parse().map_err(|_| {
                ServiceError::Query(format!("malformed shard count in backend {s:?}"))
            })?;
            if shards == 0 {
                return Err(ServiceError::Query(
                    "sharded backend needs at least one shard".into(),
                ));
            }
            return Ok(BackendSpec::Sharded(shards));
        }
        Err(ServiceError::Query(format!(
            "unknown backend {s:?} (expected local, remote, remote-reactor or sharded:N)"
        )))
    }
}

impl std::fmt::Display for BackendSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackendSpec::Local => write!(f, "local"),
            BackendSpec::Remote => write!(f, "remote"),
            BackendSpec::RemoteReactor => write!(f, "remote-reactor"),
            BackendSpec::Sharded(n) => write!(f, "sharded:{n}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_specs_parse() {
        assert_eq!(BackendSpec::parse("local").unwrap(), BackendSpec::Local);
        assert_eq!(BackendSpec::parse("remote").unwrap(), BackendSpec::Remote);
        assert_eq!(
            BackendSpec::parse("remote-reactor").unwrap(),
            BackendSpec::RemoteReactor
        );
        assert_eq!(BackendSpec::RemoteReactor.to_string(), "remote-reactor");
        assert_eq!(
            BackendSpec::parse("sharded:3").unwrap(),
            BackendSpec::Sharded(3)
        );
        assert!(BackendSpec::parse("sharded:0").is_err());
        assert!(BackendSpec::parse("sharded:x").is_err());
        assert!(BackendSpec::parse("quantum").is_err());
        assert_eq!(BackendSpec::Sharded(2).to_string(), "sharded:2");
    }

    #[test]
    fn service_errors_display_their_taxonomy() {
        assert!(ServiceError::Query("k".into())
            .to_string()
            .contains("query"));
        assert!(ServiceError::Shard("e".into())
            .to_string()
            .contains("shard invariant"));
        assert!(ServiceError::ReadOnly("writes go to the leader".into())
            .to_string()
            .contains("read-only replica"));
        assert!(ServiceError::Promotion("cursor at 3, required 5".into())
            .to_string()
            .contains("promotion refused"));
        let from_serve: ServiceError = ServeError::Protocol("bad".into()).into();
        assert!(matches!(from_serve, ServiceError::Protocol(_)));
    }

    #[test]
    fn request_counts_include_admin_lanes() {
        let counts = RequestTypeCounts {
            reload: 2,
            promote: 1,
            estimate: 4,
            ..RequestTypeCounts::default()
        };
        assert_eq!(counts.total(), 7);
        let merged = counts.merged(&RequestTypeCounts {
            reload: 1,
            ..RequestTypeCounts::default()
        });
        assert_eq!(merged.reload, 3);
        assert_eq!(merged.promote, 1);
    }
}
