//! The cluster observability plane, end to end: a single scrape of the
//! router shows merged cluster families next to per-`shard`-labelled series
//! that sum to them, `/readyz` degrades loudly (naming the shard and why)
//! when a backend dies and recovers when it returns, and a torn broadcast
//! over real TCP shards lands in the router's event ring carrying the
//! originating trace id.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Mutex};

use imgraph::GraphDelta;
use imserve::client::RemoteService;
use imserve::engine::QueryEngine;
use imserve::index::{parse_dataset, parse_model, IndexArtifact};
use imserve::protocol::TopKAlgorithm;
use imserve::service::{
    CompactionReport, GainVector, InfluenceService, LocalService, MutationOutcome, ServiceError,
    ServiceInfo, ServiceResult, ServiceStats, SpreadEstimate, TopKSelection,
};
use imserve::shard::ShardedService;
use imserve::{reactor, ReactorConfig, ServingMetrics};

const POOL: usize = 2_000;
const SEED: u64 = 7;
const SHARDS: usize = 2;

fn shard_artifact(index: usize) -> IndexArtifact {
    let ds = parse_dataset("karate").unwrap();
    let model = parse_model("uc0.1").unwrap();
    let graph = ds.influence_graph(model, SEED);
    IndexArtifact::build_shard(ds.name(), &model.label(), graph, POOL, SEED, index, SHARDS)
}

/// Two real shard servers over one global pool, plus their engines (for
/// direct inspection) — the full production topology.
fn tcp_topology() -> (Vec<Arc<QueryEngine>>, Vec<imserve::ServerHandle>) {
    let mut engines = Vec::new();
    let mut handles = Vec::new();
    for index in 0..SHARDS {
        let engine = Arc::new(
            QueryEngine::builder(shard_artifact(index))
                .metrics(ServingMetrics::new(0))
                .build()
                .unwrap(),
        );
        engines.push(Arc::clone(&engine));
        handles.push(reactor::spawn("127.0.0.1:0", engine, &ReactorConfig::default()).unwrap());
    }
    (engines, handles)
}

/// One HTTP/1.0 request against an ops endpoint: `(status line, body)`.
fn scrape(addr: std::net::SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(stream, "GET {path} HTTP/1.0\r\nHost: test\r\n\r\n").unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
    (
        head.lines().next().unwrap_or_default().to_string(),
        body.to_string(),
    )
}

#[test]
fn federated_scrape_shows_per_shard_series_summing_to_merged_values() {
    let (_engines, handles) = tcp_topology();
    let shards: Vec<RemoteService> = handles
        .iter()
        .map(|h| RemoteService::connect(h.addr()).unwrap())
        .collect();
    let mut router = ShardedService::new(shards).unwrap();
    router.estimate(&[0, 5]).unwrap();
    router.estimate(&[3]).unwrap();
    router.top_k(2, TopKAlgorithm::Greedy).unwrap();

    let report = router.cluster_metrics();
    // Counters: the unlabelled merged series equals the sum of its
    // shard-labelled copies (the router itself never bumps engine lanes).
    let labelled_sum: u64 = (0..SHARDS)
        .map(|i| {
            report.counter(&format!(
                "imserve_requests_total{{shard=\"{i}\",type=\"estimate\"}}"
            ))
        })
        .sum();
    assert!(
        labelled_sum >= 2 * SHARDS as u64,
        "fan-out reached every shard"
    );
    assert_eq!(
        report.counter("imserve_requests_total{type=\"estimate\"}"),
        labelled_sum,
        "merged counter equals the sum of its per-shard series"
    );
    // Histograms: cumulative buckets merged elementwise, so the merged
    // count is the sum of the shard counts.
    let merged = report
        .histogram("imserve_request_latency_micros{type=\"estimate\"}")
        .expect("merged estimate latency histogram");
    let shard_counts: u64 = (0..SHARDS)
        .map(|i| {
            report
                .histogram(&format!(
                    "imserve_request_latency_micros{{shard=\"{i}\",type=\"estimate\"}}"
                ))
                .expect("per-shard latency histogram")
                .count
        })
        .sum();
    assert_eq!(merged.count, shard_counts);
    // Every shard answered, so both availability gauges read 1.
    for i in 0..SHARDS {
        assert_eq!(
            report.gauge(&format!("imserve_shard_up{{shard=\"{i}\"}}")),
            1
        );
    }

    // The same report renders as a well-formed scrape, byte-stable across
    // renders of the same snapshot.
    let rendered = report.render_prometheus();
    assert_eq!(rendered, report.render_prometheus());
    for needle in [
        "# TYPE imserve_requests_total counter",
        "imserve_requests_total{shard=\"0\",type=\"estimate\"}",
        "imserve_requests_total{shard=\"1\",type=\"estimate\"}",
        "imserve_shard_up{shard=\"0\"} 1",
        "imserve_shard_fanouts_total",
    ] {
        assert!(
            rendered.contains(needle),
            "scrape missing {needle:?}:\n{rendered}"
        );
    }
    for handle in handles {
        handle.shutdown();
    }
}

#[test]
fn torn_broadcast_event_carries_the_originating_trace_over_tcp() {
    let (_engines, mut handles) = tcp_topology();
    let shards: Vec<RemoteService> = handles
        .iter()
        .map(|h| RemoteService::connect(h.addr()).unwrap())
        .collect();
    let mut router = ShardedService::new(shards).unwrap();
    const TRACE: u64 = 0x00C0_FFEE;
    router.set_trace(Some(TRACE));

    // Kill shard 1's server mid-deployment, then broadcast a valid batch:
    // shard 0 applies it, shard 1's leg dies — a genuinely torn broadcast.
    handles.remove(1).shutdown();
    let batch = vec![GraphDelta::InsertEdge {
        source: 16,
        target: 0,
        probability: 0.9,
    }];
    let err = router.mutate_batch(&batch).unwrap_err();
    assert!(matches!(err, ServiceError::Shard(_)), "got {err:?}");
    assert!(err.to_string().contains("broadcast torn"), "{err}");

    // The router's event ring retained the episode under the caller's
    // trace id, naming the shard that tore it.
    let events = router.events().unwrap();
    let torn = events
        .iter()
        .find(|e| e.code == "torn_broadcast")
        .expect("torn_broadcast event recorded");
    assert_eq!(torn.trace, TRACE, "event carries the originating trace");
    assert_eq!(torn.level, "error");
    assert_eq!(torn.field("shard"), Some("1"));
    // The dead leg itself was also logged, with the same trace.
    assert!(events
        .iter()
        .any(|e| e.code == "shard_fanout_error" && e.trace == TRACE));
    for handle in handles {
        handle.shutdown();
    }
}

/// A mock shard: a healthy [`LocalService`] whose requests can be made to
/// fail on demand (the connection-dropped shape of a dead backend).
struct DroppableShard {
    inner: LocalService,
    dropped: Arc<Mutex<bool>>,
}

impl DroppableShard {
    fn gate(&self) -> ServiceResult<()> {
        if *self.dropped.lock().unwrap() {
            return Err(ServiceError::Transport(std::io::Error::new(
                std::io::ErrorKind::ConnectionAborted,
                "connection reset by shard",
            )));
        }
        Ok(())
    }
}

impl InfluenceService for DroppableShard {
    fn info(&mut self) -> ServiceResult<ServiceInfo> {
        self.gate()?;
        self.inner.info()
    }

    fn estimate(&mut self, seeds: &[u32]) -> ServiceResult<SpreadEstimate> {
        self.gate()?;
        self.inner.estimate(seeds)
    }

    fn top_k(&mut self, k: usize, algorithm: TopKAlgorithm) -> ServiceResult<TopKSelection> {
        self.gate()?;
        self.inner.top_k(k, algorithm)
    }

    fn gains(&mut self, selected: &[u32]) -> ServiceResult<GainVector> {
        self.gate()?;
        self.inner.gains(selected)
    }

    fn mutate_batch(&mut self, deltas: &[GraphDelta]) -> ServiceResult<MutationOutcome> {
        self.gate()?;
        self.inner.mutate_batch(deltas)
    }

    fn compact(&mut self) -> ServiceResult<CompactionReport> {
        self.gate()?;
        self.inner.compact()
    }

    fn set_deadline(&mut self, _deadline: Option<std::time::Duration>) -> ServiceResult<()> {
        Ok(())
    }

    fn stats(&mut self) -> ServiceResult<ServiceStats> {
        self.gate()?;
        self.inner.stats()
    }

    fn metrics(&mut self) -> ServiceResult<imserve::MetricsReport> {
        self.gate()?;
        self.inner.metrics()
    }
}

#[test]
fn readyz_degrades_naming_the_dead_shard_and_recovers() {
    let mut switches = Vec::new();
    let shards: Vec<DroppableShard> = (0..3)
        .map(|i| {
            let ds = parse_dataset("karate").unwrap();
            let model = parse_model("uc0.1").unwrap();
            let graph = ds.influence_graph(model, SEED);
            let artifact =
                IndexArtifact::build_shard(ds.name(), &model.label(), graph, 3_000, SEED, i, 3);
            let dropped = Arc::new(Mutex::new(false));
            switches.push(Arc::clone(&dropped));
            DroppableShard {
                inner: LocalService::new(Arc::new(QueryEngine::builder(artifact).build().unwrap())),
                dropped,
            }
        })
        .collect();
    let router = Arc::new(Mutex::new(ShardedService::new(shards).unwrap()));
    let endpoint = Arc::clone(&router);
    let addr = imserve::spawn_ops_endpoint("127.0.0.1:0", move |path| {
        let metrics = Arc::clone(&endpoint);
        let events = Arc::clone(&endpoint);
        let health = Arc::clone(&endpoint);
        imserve::route_ops_request(
            path,
            move || {
                metrics
                    .lock()
                    .unwrap()
                    .cluster_metrics()
                    .render_prometheus()
            },
            move || events.lock().unwrap().obs().event_log.render_json_lines(),
            move || {
                health
                    .lock()
                    .unwrap()
                    .health()
                    .expect("router health never fails")
            },
        )
    })
    .unwrap();

    // Healthy cluster: live, ready, and scraping works on every path.
    let (status, body) = scrape(addr, "/healthz");
    assert!(status.contains("200"), "{status}");
    assert_eq!(body, "ok\n");
    let (status, body) = scrape(addr, "/readyz");
    assert!(status.contains("200"), "{status}");
    assert_eq!(body, "ready\n");
    let (status, _) = scrape(addr, "/metrics");
    assert!(status.contains("200"), "{status}");
    let (status, _) = scrape(addr, "/no-such-path");
    assert!(status.contains("404"), "{status}");

    // Drop shard 1: readiness flips to 503 naming the shard and why, while
    // liveness stays green (the process is still answering).
    *switches[1].lock().unwrap() = true;
    let (status, body) = scrape(addr, "/readyz");
    assert!(status.contains("503"), "{status}");
    assert!(body.starts_with("not ready\n"), "{body}");
    assert!(
        body.contains("shard_1_reachable"),
        "names the signal: {body}"
    );
    assert!(body.contains("unreachable"), "names the cause: {body}");
    assert!(
        !body.contains("shard_0_reachable"),
        "healthy signals stay quiet: {body}"
    );
    let (status, _) = scrape(addr, "/healthz");
    assert!(status.contains("200"), "{status}");
    // The federated scrape keeps answering, with the dead shard's
    // availability gauge at 0 and its peers' at 1.
    let (status, body) = scrape(addr, "/metrics");
    assert!(status.contains("200"), "{status}");
    assert!(body.contains("imserve_shard_up{shard=\"1\"} 0"), "{body}");
    assert!(body.contains("imserve_shard_up{shard=\"0\"} 1"), "{body}");
    // The failed probe legs landed in the event ring, served on /events.
    let (status, body) = scrape(addr, "/events");
    assert!(status.contains("200"), "{status}");
    assert!(body.contains("shard_fanout_error"), "{body}");

    // The shard comes back: readiness recovers on its own.
    *switches[1].lock().unwrap() = false;
    let (status, body) = scrape(addr, "/readyz");
    assert!(status.contains("200"), "{status}");
    assert_eq!(body, "ready\n");
}
