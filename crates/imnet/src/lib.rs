//! Network data for the influence-maximization study.
//!
//! The paper evaluates on six real-world networks and two synthetic
//! Barabási–Albert networks (Table 3), under four edge-probability settings
//! (Section 4.3). This crate provides:
//!
//! * [`karate`] — the Zachary karate club network embedded verbatim (the only
//!   real data set small enough to ship in source form);
//! * generators — [`ba`] (Barabási–Albert, used for `BA_s`/`BA_d`), [`er`]
//!   (Erdős–Rényi), [`ws`] (Watts–Strogatz small-world), [`chung_lu`]
//!   (Chung–Lu / configuration-model power-law digraphs), [`kronecker`]
//!   (stochastic Kronecker, a second SNAP-style analog family) and [`grid`]
//!   (regular lattices, the maximally non-complex baseline); the power-law
//!   generators synthesise structural analogs of the SNAP/KONECT data sets
//!   that cannot be redistributed here (see DESIGN.md, "Substitutions");
//! * [`probability`] — the edge-probability models `uc0.1`, `uc0.01`, `iwc`,
//!   `owc` (plus the common trivalency extension);
//! * [`datasets`] — a registry mapping the paper's data-set names to concrete
//!   [`imgraph::InfluenceGraph`]s, with the scale knobs used to keep the two
//!   largest networks laptop-sized by default.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ba;
pub mod chung_lu;
pub mod datasets;
pub mod er;
pub mod grid;
pub mod karate;
pub mod kronecker;
pub mod probability;
pub mod ws;

pub use datasets::{Dataset, DatasetSpec};
pub use grid::grid_2d;
pub use kronecker::StochasticKronecker;
pub use probability::ProbabilityModel;
