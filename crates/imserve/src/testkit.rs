//! Deterministic in-process cluster harness: leader + followers + faults.
//!
//! The replication tentpole's claims — follower byte-identity at every
//! epoch, reconvergence after a mid-stream kill, refused stale promotions —
//! are *cluster* properties, so they need a cluster to prove them on. This
//! module assembles one inside a single test process: real engines, real
//! TCP servers on loopback ephemeral ports, a real WAL file per node, and
//! the [`ReplicationFaults`] switches wired through so a test can cut the
//! stream after N frames, delay frames, refuse connections, kill a node
//! outright, or truncate the leader's WAL mid-record — all without
//! `sleep`-and-hope: every wait is a bounded poll on an observable signal
//! (an epoch cursor, a port accepting, a status flag).
//!
//! Everything here is also exercised by `imserve`'s own integration suites;
//! it lives in the library (not `tests/`) so the crash-point property test,
//! the cluster suite and any downstream consumer share one harness.

use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::engine::QueryEngine;
use crate::error::ServeError;
use crate::index::IndexArtifact;
use crate::replication::{
    spawn_follower, spawn_leader, FollowerHandle, FollowerStatus, LeaderHandle, ReplicationFaults,
};
use crate::server::{self, ServerConfig, ServerHandle};

/// Distinguishes concurrently running clusters (and sequential clusters in
/// one process) so their WAL files never collide.
static CLUSTER_SEQ: AtomicU64 = AtomicU64::new(0);

/// How long [`wait_until`] polls before declaring the condition failed.
const DEFAULT_WAIT: Duration = Duration::from_secs(10);

/// Poll `condition` (described by `what`) until it holds, up to `timeout`.
///
/// # Panics
///
/// Panics with `what` if the deadline passes first — a harness wait that
/// expires is a test failure with a name, never a silent pass.
pub fn wait_until(what: &str, timeout: Duration, mut condition: impl FnMut() -> bool) {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if condition() {
            return;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    panic!("timed out waiting for {what}");
}

/// A live leader: engine + query server + replication listener.
#[derive(Debug)]
pub struct LeaderNode {
    /// The leader's engine (shared with its servers).
    pub engine: Arc<QueryEngine>,
    /// The injectable fault switches its replication listener honors.
    pub faults: Arc<ReplicationFaults>,
    server: ServerHandle,
    repl: LeaderHandle,
    addr: SocketAddr,
    repl_addr: SocketAddr,
}

impl LeaderNode {
    /// The query-serving address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The replication-listener address followers dial.
    #[must_use]
    pub fn repl_addr(&self) -> SocketAddr {
        self.repl_addr
    }
}

/// A live follower: read-only engine + query server + tailing loop.
#[derive(Debug)]
pub struct FollowerNode {
    /// The follower's engine (read-only until promoted).
    pub engine: Arc<QueryEngine>,
    /// The tailing loop's live status (cursor, connectivity, last error).
    pub status: Arc<FollowerStatus>,
    server: ServerHandle,
    repl: FollowerHandle,
    addr: SocketAddr,
}

impl FollowerNode {
    /// The query-serving address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

/// An in-process replication cluster over loopback TCP.
///
/// Nodes are `Option`s so a test can kill one (dropping every thread and
/// socket it owned, WAL file left behind — the moral equivalent of
/// `kill -9`) and later restart it on the *same* ports from the same WAL.
#[derive(Debug)]
pub struct TestCluster {
    artifact: IndexArtifact,
    dir: PathBuf,
    /// The leader, if currently alive.
    pub leader: Option<LeaderNode>,
    /// The followers, each `Some` while alive.
    pub followers: Vec<Option<FollowerNode>>,
    /// Pinned (addr, repl_addr) of the leader, so a restart rebinds the
    /// ports followers and clients already hold.
    leader_ports: Option<(SocketAddr, SocketAddr)>,
    follower_ports: Vec<Option<SocketAddr>>,
}

impl TestCluster {
    /// Launch a leader and `followers` followers, all serving `artifact`.
    ///
    /// Every node gets its own WAL under a fresh per-cluster temp
    /// directory; followers connect, hand-shake and are ready (but possibly
    /// still catching up) when this returns.
    pub fn launch(artifact: IndexArtifact, followers: usize) -> Result<Self, ServeError> {
        let seq = CLUSTER_SEQ.fetch_add(1, Ordering::SeqCst);
        let dir =
            std::env::temp_dir().join(format!("imserve_cluster_{}_{seq}", std::process::id()));
        std::fs::create_dir_all(&dir)?;
        let mut cluster = Self {
            artifact,
            dir,
            leader: None,
            followers: (0..followers).map(|_| None).collect(),
            leader_ports: None,
            follower_ports: vec![None; followers],
        };
        cluster.restart_leader()?;
        for i in 0..followers {
            cluster.restart_follower(i)?;
        }
        Ok(cluster)
    }

    /// The leader's WAL path (exists whether or not the leader is alive).
    #[must_use]
    pub fn leader_wal(&self) -> PathBuf {
        self.dir.join("leader.wal")
    }

    fn follower_wal(&self, i: usize) -> PathBuf {
        self.dir.join(format!("follower{i}.wal"))
    }

    /// The live leader's query address.
    ///
    /// # Panics
    ///
    /// Panics if the leader is dead.
    #[must_use]
    pub fn leader_addr(&self) -> SocketAddr {
        self.leader.as_ref().expect("leader is alive").addr()
    }

    /// Follower `i`'s query address.
    ///
    /// # Panics
    ///
    /// Panics if that follower is dead.
    #[must_use]
    pub fn follower_addr(&self, i: usize) -> SocketAddr {
        self.followers[i]
            .as_ref()
            .expect("follower is alive")
            .addr()
    }

    /// Start (or restart) the leader. A restart reuses the original ports —
    /// clients and followers holding the old address reconnect to the new
    /// process — and rebuilds the engine from the artifact plus its WAL, so
    /// every acknowledged mutation survives.
    pub fn restart_leader(&mut self) -> Result<(), ServeError> {
        assert!(self.leader.is_none(), "leader is already running");
        let engine = Arc::new(
            QueryEngine::builder(self.artifact.clone())
                .wal(self.leader_wal())
                .build()?,
        );
        let faults = Arc::new(ReplicationFaults::default());
        let (addr, repl_addr) = self
            .leader_ports
            .map_or((ephemeral(), ephemeral()), |(a, r)| (a, r));
        let server = bind_retry(|| server::spawn(addr, Arc::clone(&engine), &cluster_config()))?;
        let repl = bind_retry(|| {
            spawn_leader(
                repl_addr,
                Arc::clone(&engine),
                self.leader_wal(),
                Arc::clone(&faults),
            )
        })?;
        self.leader_ports = Some((server.addr(), repl.addr()));
        self.leader = Some(LeaderNode {
            engine,
            faults,
            addr: server.addr(),
            repl_addr: repl.addr(),
            server,
            repl,
        });
        Ok(())
    }

    /// Start (or restart) follower `i`: a read-only engine with its own WAL
    /// (the durable resume cursor), a query server, and the tailing loop
    /// pointed at the leader's pinned replication address.
    pub fn restart_follower(&mut self, i: usize) -> Result<(), ServeError> {
        assert!(
            self.followers[i].is_none(),
            "follower {i} is already running"
        );
        let repl_addr = self
            .leader_ports
            .expect("leader launched before followers")
            .1;
        let engine = Arc::new(
            QueryEngine::builder(self.artifact.clone())
                .wal(self.follower_wal(i))
                .read_only(true)
                .build()?,
        );
        let addr = self.follower_ports[i].unwrap_or_else(ephemeral);
        let server = bind_retry(|| server::spawn(addr, Arc::clone(&engine), &cluster_config()))?;
        let status = Arc::new(FollowerStatus::default());
        let repl = spawn_follower(
            repl_addr.to_string(),
            Arc::clone(&engine),
            Arc::clone(&status),
        );
        self.follower_ports[i] = Some(server.addr());
        self.followers[i] = Some(FollowerNode {
            engine,
            status,
            addr: server.addr(),
            server,
            repl,
        });
        Ok(())
    }

    /// Kill the leader: tear down its servers and drop its engine without
    /// any graceful close (the WAL is already synced per acknowledged
    /// batch, which is the whole point). Followers see EOF and start
    /// re-dialling.
    pub fn kill_leader(&mut self) {
        let leader = self.leader.take().expect("leader is alive");
        leader.server.shutdown();
        leader.repl.shutdown();
    }

    /// Kill follower `i` the same way.
    pub fn kill_follower(&mut self, i: usize) {
        let follower = self.followers[i].take().expect("follower is alive");
        follower.repl.shutdown();
        follower.server.shutdown();
    }

    /// Block until follower `i`'s engine reaches `epoch` (bounded).
    ///
    /// # Panics
    ///
    /// Panics if the follower does not catch up within the harness bound.
    pub fn wait_follower_at_epoch(&self, i: usize, epoch: u64) {
        let engine = Arc::clone(
            &self.followers[i]
                .as_ref()
                .expect("follower is alive")
                .engine,
        );
        wait_until(
            &format!("follower {i} to reach epoch {epoch}"),
            DEFAULT_WAIT,
            || engine.epoch() >= epoch,
        );
    }

    /// Block until follower `i` reports a live stream to the leader.
    ///
    /// # Panics
    ///
    /// Panics if the stream does not come up within the harness bound.
    pub fn wait_follower_connected(&self, i: usize) {
        let status = Arc::clone(
            &self.followers[i]
                .as_ref()
                .expect("follower is alive")
                .status,
        );
        wait_until(&format!("follower {i} to connect"), DEFAULT_WAIT, || {
            status.connected.load(Ordering::SeqCst)
        });
    }

    /// Truncate the leader's WAL mid-record: keep the header and any whole
    /// records before the last one, then cut `keep_fraction` of the way
    /// *into* the final record. Returns the bytes removed. The leader must
    /// be dead (no live appender) when this is called.
    ///
    /// A restarted leader recovers the valid prefix and truncates the torn
    /// tail — exactly the crash anatomy [`crate::wal`] documents — and its
    /// followers re-request whatever the torn record spanned.
    pub fn truncate_leader_wal_mid_record(&self) -> Result<u64, ServeError> {
        assert!(
            self.leader.is_none(),
            "kill the leader before tearing its WAL"
        );
        truncate_last_record(&self.leader_wal())
    }
}

impl Drop for TestCluster {
    fn drop(&mut self) {
        self.leader.take();
        for follower in &mut self.followers {
            follower.take();
        }
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// Server tuning for harness nodes: small but concurrent.
fn cluster_config() -> ServerConfig {
    ServerConfig {
        workers: 2,
        idle_timeout: Some(Duration::from_secs(30)),
    }
}

fn ephemeral() -> SocketAddr {
    "127.0.0.1:0".parse().expect("loopback parses")
}

/// Retry `bind` briefly: a restarted node rebinds the port its previous
/// incarnation just released, and the kernel may not have finished tearing
/// the old listener down.
fn bind_retry<T>(mut bind: impl FnMut() -> Result<T, ServeError>) -> Result<T, ServeError> {
    let mut last = None;
    for _ in 0..100 {
        match bind() {
            Ok(value) => return Ok(value),
            Err(e) => {
                last = Some(e);
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
    Err(last.expect("at least one attempt ran"))
}

/// Cut partway into the last record of the WAL at `path` (see
/// [`TestCluster::truncate_leader_wal_mid_record`]).
pub fn truncate_last_record(path: &Path) -> Result<u64, ServeError> {
    let bytes = std::fs::read(path)?;
    // Walk the record frames to find where the last one starts. The header
    // is `"IMWL" | u32 | u64 | u32 id_len | id`.
    if bytes.len() < 20 {
        return Err(ServeError::Wal("WAL too short to hold a header".into()));
    }
    let id_len = u32::from_le_bytes(bytes[16..20].try_into().expect("4 bytes")) as usize;
    let mut at = 20 + id_len;
    let mut last_start = None;
    while bytes.len() - at >= 4 {
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes")) as usize;
        if bytes.len() - at - 4 < len {
            break;
        }
        last_start = Some(at);
        at += 4 + len;
    }
    let Some(start) = last_start else {
        return Err(ServeError::Wal(
            "WAL holds no complete record to tear".into(),
        ));
    };
    // Keep the length prefix and roughly half the payload: unambiguously
    // torn (the prefix promises more bytes than the file holds).
    let keep = start + 4 + (at - start - 4) / 2;
    let removed = bytes.len() as u64 - keep as u64;
    let file = std::fs::OpenOptions::new().write(true).open(path)?;
    file.set_len(keep as u64)?;
    Ok(removed)
}

/// Wait until `addr` accepts TCP connections (a server is up), bounded.
///
/// # Panics
///
/// Panics if nothing listens within the harness bound.
pub fn wait_listening(addr: SocketAddr) {
    wait_until(
        &format!("{addr} to accept connections"),
        DEFAULT_WAIT,
        || TcpStream::connect_timeout(&addr, Duration::from_millis(100)).is_ok(),
    );
}
