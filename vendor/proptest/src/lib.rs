//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this crate implements the
//! subset of proptest the workspace's property suites use: the [`Strategy`]
//! trait with `prop_map` / `prop_flat_map`, range and tuple strategies,
//! [`Just`], [`collection::vec`], [`ProptestConfig`] and the [`proptest!`] /
//! [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assume!`] macros.
//!
//! Differences from real proptest, by design:
//!
//! * cases are drawn from a deterministic per-test PRNG (seeded from the test
//!   function's name), so failures are reproducible but there is no
//!   persistence file;
//! * there is **no shrinking** — a failing case reports the case index and the
//!   assertion message only.

#![forbid(unsafe_code)]

/// Configuration for one `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 32 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` random cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case failed an assertion.
    Fail(String),
}

impl TestCaseError {
    /// Build a failure from a message.
    #[must_use]
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }
}

/// The deterministic PRNG driving case generation (SplitMix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed the generator deterministically from a test name.
    #[must_use]
    pub fn deterministic(name: &str) -> Self {
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        for b in name.bytes() {
            state = (state ^ u64::from(b)).wrapping_mul(0x100_0000_01B3);
        }
        Self { state }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { base: self, f }
    }

    /// Generate a value, then generate from the strategy `f` builds from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.sample(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S, F, T> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;

    fn sample(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.base.sample(rng)).sample(rng)
    }
}

/// A strategy that always yields a clone of one value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as u128) - (start as u128) + 1;
                start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;

    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.next_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A: 0);
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
    (A: 0, B: 1, C: 2, D: 3, E: 4);
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// An admissible collection length: a half-open range, an inclusive
    /// range, or an exact size.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive upper bound.
        max: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            Self {
                min: r.start,
                max: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                min: *r.start(),
                max: r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            Self {
                min: exact,
                max: exact + 1,
            }
        }
    }

    /// Strategy for `Vec`s with a length drawn from `len` and elements drawn
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: len.into(),
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = (self.len.min..self.len.max).sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy,
    };
}

/// Define property tests: each `fn` runs `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_inner! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_inner! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_inner {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),* $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            #[allow(clippy::redundant_closure_call)]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $(let $pat = $crate::Strategy::sample(&($strat), &mut rng);)*
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) = outcome {
                        panic!("proptest case {case}/{} failed: {msg}", config.cases);
                    }
                }
            }
        )*
    };
}

/// Assert a condition inside a property, failing the case with a message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        // Bind to a bool first so negating never lints at the expansion site
        // (e.g. clippy::neg_cmp_op_on_partial_ord for `!(a < b)` on floats).
        let __prop_assert_holds: bool = $cond;
        if !__prop_assert_holds {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        let __prop_assert_holds: bool = $cond;
        if !__prop_assert_holds {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left, right) => {
                if !(*left == *right) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `{} == {}`\n  left: {left:?}\n right: {right:?}",
                        stringify!($left),
                        stringify!($right),
                    )));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (left, right) => {
                if !(*left == *right) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
                }
            }
        }
    };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left, right) => {
                if *left == *right {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `{} != {}`\n  both: {left:?}",
                        stringify!($left),
                        stringify!($right),
                    )));
                }
            }
        }
    };
}

/// Skip the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        let __prop_assume_holds: bool = $cond;
        if !__prop_assume_holds {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::deterministic("ranges");
        for _ in 0..1000 {
            let x = (3u32..17).sample(&mut rng);
            assert!((3..17).contains(&x));
            let f = (0.25f64..0.75).sample(&mut rng);
            assert!((0.25..0.75).contains(&f));
            let i = (-5i32..5).sample(&mut rng);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn combinators_compose() {
        let mut rng = TestRng::deterministic("combinators");
        let strat = (1usize..5).prop_flat_map(|n| {
            (Just(n), collection::vec(0u32..10, 0..8)).prop_map(|(n, v)| (n * 2, v))
        });
        for _ in 0..200 {
            let (n2, v) = strat.sample(&mut rng);
            assert!(n2 % 2 == 0 && (2..10).contains(&n2));
            assert!(v.len() < 8);
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn the_macro_machinery_works((n, v) in (1usize..10, collection::vec(0u64..100, 0..5)), x in 0.0f64..1.0) {
            prop_assume!(n > 0);
            prop_assert!(n < 10, "n was {n}");
            prop_assert!(x < 1.0);
            prop_assert_eq!(v.len(), v.iter().filter(|&&e| e < 100).count());
            prop_assert_ne!(n, 0);
        }
    }
}
