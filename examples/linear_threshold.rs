//! Influence maximization under the linear threshold model.
//!
//! ```text
//! cargo run --release --example linear_threshold
//! ```
//!
//! The paper's experiments use the independent cascade (IC) model, but its
//! three algorithmic approaches only need an unbiased influence estimator, so
//! they port directly to the linear threshold (LT) model. This example runs
//! LT-Oneshot, LT-Snapshot and LT-RIS on the Karate club with the in-degree
//! weighted cascade (whose weights sum to exactly 1 per vertex — the canonical
//! LT weight assignment), compares the seed sets and influence they find, and
//! contrasts the LT spread with the IC spread of the same seeds.

use im_core::greedy_select;
use im_core::lt::{monte_carlo_lt_influence, weights_are_valid};
use im_core::lt_estimators::{LtOneshotEstimator, LtRisEstimator, LtSnapshotEstimator};
use im_study::prelude::*;

fn main() {
    let k = 3;
    let graph = Dataset::Karate.influence_graph(ProbabilityModel::InDegreeWeighted, 0);
    assert!(
        weights_are_valid(&graph, 1e-9),
        "iwc weights satisfy the LT constraint"
    );
    println!(
        "instance: Karate (iwc as LT weights), n = {}, m = {}, k = {k}\n",
        graph.num_vertices(),
        graph.num_edges()
    );

    // Reference: a large LT Monte-Carlo evaluation reused for every seed set.
    let mut eval_rng = default_rng(1);
    let mut evaluate =
        |seeds: &[VertexId]| monte_carlo_lt_influence(&graph, seeds, 20_000, &mut eval_rng);

    println!(
        "{:<14} {:>8} {:<22} {:>12} {:>14}",
        "approach", "samples", "seeds", "LT spread", "vertices cost"
    );

    // LT-Oneshot.
    let mut oneshot = LtOneshotEstimator::new(&graph, 256, default_rng(2));
    let oneshot_pick = greedy_select(&mut oneshot, k, &mut default_rng(3));
    let oneshot_seeds = oneshot_pick.seed_set();
    println!(
        "{:<14} {:>8} {:<22} {:>12.3} {:>14}",
        "LT-Oneshot",
        256,
        oneshot_seeds.to_string(),
        evaluate(oneshot_seeds.vertices()),
        oneshot.traversal_cost().vertices
    );

    // LT-Snapshot.
    let mut snapshot = LtSnapshotEstimator::new(&graph, 512, &mut default_rng(4));
    let snapshot_pick = greedy_select(&mut snapshot, k, &mut default_rng(5));
    let snapshot_seeds = snapshot_pick.seed_set();
    println!(
        "{:<14} {:>8} {:<22} {:>12.3} {:>14}",
        "LT-Snapshot",
        512,
        snapshot_seeds.to_string(),
        evaluate(snapshot_seeds.vertices()),
        snapshot.traversal_cost().vertices
    );

    // LT-RIS.
    let mut ris = LtRisEstimator::new(&graph, 65_536, &mut default_rng(6));
    let ris_pick = greedy_select(&mut ris, k, &mut default_rng(7));
    let ris_seeds = ris_pick.seed_set();
    println!(
        "{:<14} {:>8} {:<22} {:>12.3} {:>14}",
        "LT-RIS",
        65_536,
        ris_seeds.to_string(),
        evaluate(ris_seeds.vertices()),
        ris.traversal_cost().vertices
    );

    // How do the LT seeds fare under IC with the same probabilities?
    let mut ic_rng = default_rng(8);
    let ic_oracle = InfluenceOracle::builder(200_000).sample_with_rng(&graph, &mut ic_rng);
    println!("\nsame seeds evaluated under the IC model with identical edge parameters:");
    for (name, seeds) in [
        ("LT-Oneshot", &oneshot_seeds),
        ("LT-Snapshot", &snapshot_seeds),
        ("LT-RIS", &ris_seeds),
    ] {
        println!(
            "  {:<12} LT {:>7.3}   IC {:>7.3}",
            name,
            evaluate(seeds.vertices()),
            ic_oracle.estimate_seed_set(seeds)
        );
    }
    println!("\nUnder iwc the LT spread dominates the IC spread for the same seeds: LT lets");
    println!("incoming weights accumulate across neighbours, IC gives each edge an independent");
    println!("one-shot trial. The three LT estimators agree with each other, mirroring the");
    println!(
        "paper's IC finding that all approaches share the same limit behaviour (Section 5.1)."
    );
}
