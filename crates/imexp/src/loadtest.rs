//! `imexp loadtest` — one workload, every backend.
//!
//! The point of the unified [`InfluenceService`] trait is that backends are
//! interchangeable; this driver proves it operationally. It builds the
//! requested fixture once, opens the requested backend —
//!
//! * `local`      — an in-process engine behind [`LocalService`];
//! * `remote`     — the same engine served over TCP on an ephemeral port,
//!   queried through [`RemoteService`] (protocol v2);
//! * `sharded:N`  — the same *global* pool cut into `N` shard engines
//!   behind a [`ShardedService`] router —
//!
//! and then pushes the identical deterministic request stream through the
//! trait. For the sharded backend it additionally verifies the merge
//! soundness acceptance bar: a probe set of `Estimate` and `TopK` requests
//! must come back **bit-identical** (spreads compared by `f64::to_bits`) to
//! the single-pool local backend.

use std::sync::Arc;

use imnet::chung_lu::ChungLu;
use imserve::engine::QueryEngine;
use imserve::index::{parse_dataset, parse_model, IndexArtifact};
use imserve::loadtest::{run_service, LoadtestConfig, LoadtestReport};
use imserve::protocol::TopKAlgorithm;
use imserve::service::{BackendSpec, InfluenceService, LocalService, ServiceError};
use imserve::shard::ShardedService;
use imserve::{server, RemoteService, ServerConfig, ServerHandle};

/// Everything `imexp loadtest` needs to run one backend comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadtestSpec {
    /// Which backend to drive.
    pub backend: BackendSpec,
    /// Fixture name: a registry dataset (`karate`, `ba-s`, …) or the
    /// synthetic `chung-lu` power-law fixture.
    pub dataset: String,
    /// Probability-model label.
    pub model: String,
    /// Global RR-set pool size (split across shards for `sharded:N`).
    pub pool: usize,
    /// Base seed of the pool sample.
    pub seed: u64,
    /// Workload shape.
    pub config: LoadtestConfig,
}

/// The built fixture: a labelled influence graph.
fn fixture_graph(
    dataset: &str,
    model_label: &str,
    seed: u64,
) -> Result<(String, String, imgraph::InfluenceGraph), ServiceError> {
    let model = parse_model(model_label)?;
    let normalized = dataset.to_ascii_lowercase().replace('_', "-");
    if normalized == "chung-lu" || normalized == "chunglu" {
        // The bench family's power-law fixture, sized for CI: ~2k vertices,
        // ~6k expected edges, Table-3-like exponents. Deterministic per
        // seed.
        let graph = ChungLu::power_law(2_000, 6_000, 2.3, 2.3, 0.01)
            .generate(&mut imrand::default_rng(seed));
        return Ok(("ChungLu".to_string(), model.label(), model.assign(&graph)));
    }
    let ds = parse_dataset(dataset)?;
    Ok((
        ds.name().to_string(),
        model.label(),
        ds.influence_graph(model, seed),
    ))
}

/// A backend plus whatever keeps it alive (server handle, shard engines).
struct Backend {
    service: Box<dyn InfluenceService>,
    /// Held so an ephemeral server outlives the run.
    server: Option<ServerHandle>,
}

impl Drop for Backend {
    fn drop(&mut self) {
        if let Some(handle) = self.server.take() {
            handle.shutdown();
        }
    }
}

fn whole_pool_engine(spec: &LoadtestSpec) -> Result<Arc<QueryEngine>, ServiceError> {
    let (graph_id, model, graph) = fixture_graph(&spec.dataset, &spec.model, spec.seed)?;
    let artifact = IndexArtifact::build(&graph_id, &model, graph, spec.pool, spec.seed);
    Ok(Arc::new(
        QueryEngine::builder(artifact)
            .build()
            .map_err(ServiceError::from)?,
    ))
}

fn open_backend(spec: &LoadtestSpec) -> Result<Backend, ServiceError> {
    match spec.backend {
        BackendSpec::Local => Ok(Backend {
            service: Box::new(LocalService::new(whole_pool_engine(spec)?)),
            server: None,
        }),
        BackendSpec::Remote => {
            let engine = whole_pool_engine(spec)?;
            let handle = server::spawn(
                "127.0.0.1:0",
                engine,
                &ServerConfig {
                    workers: 2,
                    ..ServerConfig::default()
                },
            )
            .map_err(ServiceError::from)?;
            let service = RemoteService::connect(handle.addr())?;
            Ok(Backend {
                service: Box::new(service),
                server: Some(handle),
            })
        }
        BackendSpec::Sharded(count) => {
            let (graph_id, model, graph) = fixture_graph(&spec.dataset, &spec.model, spec.seed)?;
            let mut shards = Vec::with_capacity(count);
            for index in 0..count {
                let artifact = IndexArtifact::build_shard(
                    &graph_id,
                    &model,
                    graph.clone(),
                    spec.pool,
                    spec.seed,
                    index,
                    count,
                );
                let engine = Arc::new(
                    QueryEngine::builder(artifact)
                        .build()
                        .map_err(ServiceError::from)?,
                );
                shards.push(LocalService::new(engine));
            }
            Ok(Backend {
                service: Box::new(ShardedService::new(shards)?),
                server: None,
            })
        }
    }
}

/// The deterministic probe set of the byte-identity check: a spread of seed
/// sets plus both `TopK` algorithms.
fn verify_against_local(
    spec: &LoadtestSpec,
    sharded: &mut dyn InfluenceService,
) -> Result<usize, ServiceError> {
    let mut local = LocalService::new(whole_pool_engine(spec)?);
    let n = local.info()?.num_vertices as u32;
    let mut checked = 0usize;
    let mut probes: Vec<Vec<u32>> = vec![vec![0], vec![n - 1], vec![0, n / 2, n - 1]];
    for p in 0..8u32 {
        probes.push(vec![(p * 7) % n, (p * 13 + 1) % n]);
    }
    for seeds in probes {
        let a = local.estimate(&seeds)?;
        let b = sharded.estimate(&seeds)?;
        if a.spread.to_bits() != b.spread.to_bits() || a.covered != b.covered || a.pool != b.pool {
            return Err(ServiceError::Shard(format!(
                "estimate({seeds:?}) diverged: local {a:?} vs sharded {b:?}"
            )));
        }
        checked += 1;
    }
    for algorithm in [TopKAlgorithm::Greedy, TopKAlgorithm::SingletonRank] {
        let a = local.top_k(spec.config.k, algorithm)?;
        let b = sharded.top_k(spec.config.k, algorithm)?;
        if a.seeds != b.seeds || a.spread.to_bits() != b.spread.to_bits() {
            return Err(ServiceError::Shard(format!(
                "top_k({}, {algorithm}) diverged: local {a:?} vs sharded {b:?}",
                spec.config.k
            )));
        }
        checked += 1;
    }
    Ok(checked)
}

/// Run the workload (and, for `sharded:N`, the byte-identity verification),
/// returning the printable report.
pub fn run(spec: &LoadtestSpec) -> Result<(LoadtestReport, Option<usize>), ServiceError> {
    let mut backend = open_backend(spec)?;
    let report = run_service(&mut backend.service, &spec.config)?;
    let verified = if matches!(spec.backend, BackendSpec::Sharded(_)) {
        Some(verify_against_local(spec, &mut *backend.service)?)
    } else {
        None
    };
    Ok((report, verified))
}
