//! Live-edge (random graph) sampling.
//!
//! The random-graph interpretation of the IC model (Section 2.2) says: keep
//! each edge `e` independently with probability `p(e)`; the influence spread
//! of `S` equals the expected number of vertices reachable from `S` in the
//! resulting random graph. Snapshot materialises `τ` such samples up front
//! (Algorithm 3.3, Build); this module provides that sampling step, plus the
//! bookkeeping the paper's sample-size metric needs (the number of vertices
//! and edges stored in memory).

use imrand::Rng32;
use serde::{Deserialize, Serialize};

use crate::{DiGraph, InfluenceGraph, VertexId};

/// A sampled live-edge graph ("snapshot", the paper's `G⁽ⁱ⁾`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Snapshot {
    graph: DiGraph,
    /// Number of live edges kept by the sample (equals `graph.num_edges()`,
    /// cached for sample-size accounting).
    live_edges: usize,
    /// Edges examined while sampling (always `m`, the paper's Build cost).
    edges_examined: usize,
}

impl Snapshot {
    /// The live-edge graph itself.
    #[must_use]
    pub fn graph(&self) -> &DiGraph {
        &self.graph
    }

    /// Number of live edges in this sample.
    #[must_use]
    pub fn live_edge_count(&self) -> usize {
        self.live_edges
    }

    /// Number of edges examined to draw this sample (always `m`).
    #[must_use]
    pub fn edges_examined(&self) -> usize {
        self.edges_examined
    }

    /// The paper's *sample size* contribution of one snapshot: the number of
    /// vertices plus edges stored in memory. Following Table 1, the expected
    /// value of the edge part is `m̃`.
    #[must_use]
    pub fn sample_size(&self) -> usize {
        self.graph.num_vertices() + self.live_edges
    }
}

/// Sample one live-edge graph from `ig`: every edge is kept independently with
/// its influence probability.
#[must_use]
pub fn sample_snapshot<R: Rng32>(ig: &InfluenceGraph, rng: &mut R) -> Snapshot {
    let n = ig.num_vertices();
    let graph = ig.graph();
    let mut live: Vec<(VertexId, VertexId)> =
        Vec::with_capacity((ig.probability_sum().ceil() as usize).min(ig.num_edges()));
    // Iterate in edge-id order so the RNG consumption order is deterministic
    // and independent of CSR layout.
    for u in graph.vertices() {
        for (v, eid) in graph.out_edges(u) {
            if rng.bernoulli(ig.probability(eid)) {
                live.push((u, v));
            }
        }
    }
    let live_edges = live.len();
    Snapshot {
        graph: DiGraph::from_edges(n, &live),
        live_edges,
        edges_examined: ig.num_edges(),
    }
}

/// Sample `count` independent live-edge graphs (Snapshot's Build step).
#[must_use]
pub fn sample_snapshots<R: Rng32>(ig: &InfluenceGraph, count: usize, rng: &mut R) -> Vec<Snapshot> {
    (0..count).map(|_| sample_snapshot(ig, rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;
    use imrand::Pcg32;

    fn test_graph(p: f64) -> InfluenceGraph {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(2, 3);
        b.add_edge(0, 3);
        let g = b.build();
        let m = g.num_edges();
        InfluenceGraph::new(g, vec![p; m])
    }

    #[test]
    fn probability_one_keeps_every_edge() {
        let ig = test_graph(1.0);
        let mut rng = Pcg32::seed_from_u64(1);
        let snap = sample_snapshot(&ig, &mut rng);
        assert_eq!(snap.live_edge_count(), 4);
        assert_eq!(snap.graph().num_edges(), 4);
        assert_eq!(snap.edges_examined(), 4);
        assert_eq!(snap.sample_size(), 4 + 4);
    }

    #[test]
    fn tiny_probability_keeps_almost_nothing() {
        let ig = test_graph(1e-9);
        let mut rng = Pcg32::seed_from_u64(2);
        let total: usize = sample_snapshots(&ig, 100, &mut rng)
            .iter()
            .map(Snapshot::live_edge_count)
            .sum();
        assert!(
            total <= 1,
            "with p = 1e-9, essentially no edge should survive"
        );
    }

    #[test]
    fn vertices_are_preserved_even_when_edges_die() {
        let ig = test_graph(1e-9);
        let mut rng = Pcg32::seed_from_u64(3);
        let snap = sample_snapshot(&ig, &mut rng);
        assert_eq!(snap.graph().num_vertices(), 4);
    }

    #[test]
    fn live_edge_fraction_matches_probability() {
        let ig = test_graph(0.3);
        let mut rng = Pcg32::seed_from_u64(4);
        let samples = 5_000;
        let total: usize = sample_snapshots(&ig, samples, &mut rng)
            .iter()
            .map(Snapshot::live_edge_count)
            .sum();
        let mean = total as f64 / samples as f64;
        let expected = ig.probability_sum(); // 4 * 0.3
        assert!(
            (mean - expected).abs() < 0.05,
            "mean live edges {mean} should be close to m̃ = {expected}"
        );
    }

    #[test]
    fn sampling_is_deterministic_given_seed() {
        let ig = test_graph(0.5);
        let mut a = Pcg32::seed_from_u64(7);
        let mut b = Pcg32::seed_from_u64(7);
        let sa = sample_snapshots(&ig, 10, &mut a);
        let sb = sample_snapshots(&ig, 10, &mut b);
        for (x, y) in sa.iter().zip(&sb) {
            assert_eq!(x.graph(), y.graph());
        }
    }

    #[test]
    fn snapshot_edges_are_subset_of_original() {
        let ig = test_graph(0.5);
        let mut rng = Pcg32::seed_from_u64(9);
        for snap in sample_snapshots(&ig, 20, &mut rng) {
            for (u, v) in snap.graph().edges() {
                assert!(
                    ig.graph().out_neighbors(u).contains(&v),
                    "live edge ({u}, {v}) not present in the influence graph"
                );
            }
        }
    }
}
