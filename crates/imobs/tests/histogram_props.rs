//! Correctness of the log₂ histogram: exact bucket boundaries, lossless
//! concurrent recording, snapshot isolation, and — property-tested — the
//! one-bucket quantile bound that makes the scraped percentiles honest.

use proptest::prelude::*;

use imobs::{bucket_index, bucket_lower_bound, bucket_upper_bound, Histogram, HISTOGRAM_BUCKETS};

#[test]
fn bucket_boundaries_are_exact_at_every_power_of_two() {
    // The zero bucket holds exactly the value 0.
    assert_eq!(bucket_index(0), 0);
    assert_eq!(bucket_lower_bound(0), 0);
    assert_eq!(bucket_upper_bound(0), 0);
    // Bucket i (i ≥ 1) is the half-open decade [2^(i-1), 2^i): both edges of
    // every decade land where the bound functions say they do.
    for i in 1..64usize {
        assert_eq!(bucket_index(bucket_lower_bound(i)), i, "lower edge of {i}");
        assert_eq!(bucket_index(bucket_upper_bound(i)), i, "upper edge of {i}");
        assert_eq!(bucket_upper_bound(i) + 1, bucket_lower_bound(i + 1));
    }
    assert_eq!(bucket_index(1), 1);
    assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
    assert_eq!(bucket_upper_bound(HISTOGRAM_BUCKETS - 1), u64::MAX);
}

#[test]
fn concurrent_recording_loses_no_samples() {
    let histogram = Histogram::new();
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 20_000;
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let histogram = &histogram;
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    // Distinct per-thread value streams spanning many buckets.
                    histogram.record((t + 1) * i % 4096);
                }
            });
        }
    });
    let snapshot = histogram.snapshot();
    assert_eq!(snapshot.count, THREADS * PER_THREAD);
    assert_eq!(
        snapshot.buckets.iter().sum::<u64>(),
        THREADS * PER_THREAD,
        "every sample must land in exactly one bucket"
    );
    let expected_sum: u64 = (0..THREADS)
        .flat_map(|t| (0..PER_THREAD).map(move |i| (t + 1) * i % 4096))
        .sum();
    assert_eq!(snapshot.sum, expected_sum);
}

#[test]
fn snapshots_are_isolated_from_later_records() {
    let histogram = Histogram::new();
    histogram.record(10);
    histogram.record(1000);
    let frozen = histogram.snapshot();
    assert_eq!(frozen.count, 2);
    histogram.record(7);
    histogram.record(7);
    // The snapshot is an owned copy; only the live histogram moved on.
    assert_eq!(frozen.count, 2);
    assert_eq!(frozen.buckets.iter().sum::<u64>(), 2);
    let live = histogram.snapshot();
    assert_eq!(live.count, 4);
    assert_eq!(live.sum, frozen.sum + 14);
}

/// The true `q`-quantile under the same rank convention the histogram uses:
/// the sample at 1-based rank `ceil(q·n)` (at least 1) in sorted order.
fn true_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The histogram quantile bounds the true quantile to within one log₂
    /// bucket: it is the inclusive upper bound of the bucket holding the
    /// true quantile sample, so estimate ≥ truth and both share a bucket.
    #[test]
    fn quantile_bounds_true_quantile_within_one_bucket(
        mut values in proptest::collection::vec(0u64..1_000_000, 1..400),
        q_permille in 0u64..=1000,
    ) {
        let q = q_permille as f64 / 1000.0;
        let histogram = Histogram::new();
        for &v in &values {
            histogram.record(v);
        }
        values.sort_unstable();
        let truth = true_quantile(&values, q);
        let estimate = histogram.snapshot().quantile(q);
        prop_assert!(estimate >= truth, "estimate {estimate} < true quantile {truth}");
        prop_assert_eq!(
            bucket_index(estimate),
            bucket_index(truth),
            "estimate must stay in the true quantile's bucket"
        );
        prop_assert_eq!(estimate, bucket_upper_bound(bucket_index(truth)));
    }

    /// Count and sum always mirror the recorded stream exactly.
    #[test]
    fn count_and_sum_are_exact(values in proptest::collection::vec(0u64..1_000_000, 0..200)) {
        let histogram = Histogram::new();
        for &v in &values {
            histogram.record(v);
        }
        prop_assert_eq!(histogram.count(), values.len() as u64);
        prop_assert_eq!(histogram.sum(), values.iter().sum::<u64>());
    }
}
