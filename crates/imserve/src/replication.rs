//! WAL shipping: leader-side record streaming, follower-side apply.
//!
//! A follower (`imserve serve --follow <leader>`) holds the *same* index
//! artifact as its leader and tails the leader's write-ahead log over TCP.
//! Every shipped record is the exact payload the leader fsynced —
//! `u64 epoch_before | u64 graph_hash_before | IMDL delta body` behind a
//! `u32` length prefix, see [`crate::wal`] — so the follower applies
//! bit-identical batches through the same atomic machinery as a local
//! `MutateBatch`, and answers reads byte-identically to the leader at every
//! epoch.
//!
//! Wire anatomy (one TCP connection per follower):
//!
//! ```text
//! follower → leader   {"magic":"imrs","v":1,"identity":…,"base_seed":…,
//!                      "resume_epoch":…}\n
//! leader   → follower {"ok":true,"epoch":…}\n          (or {"ok":false,…})
//! leader   → follower u32 len | payload …              (binary, repeated)
//! ```
//!
//! The handshake carries the full index identity (the same string the WAL
//! header encodes), so a follower of the wrong index — different dataset,
//! model, pool dimensions, shard offset or base seed — is refused before a
//! single record flows. `resume_epoch` is the follower's durable cursor
//! (its own WAL replays it on restart): the leader skips records whose
//! whole span is at or below it, and the follower's
//! [`QueryEngine::apply_replicated`] re-checks every record's
//! `epoch_before` and graph fingerprint in lockstep, so a gap, a replayed
//! foreign record or mid-stream corruption is a fail-stop, never a silently
//! diverged replica.
//!
//! There are no heartbeats: the follower detects leader death as EOF or a
//! reset on the stream and re-dials with exponential backoff, resuming from
//! its cursor. The follower loop exits on its own once the engine is
//! promoted — a returning old leader cannot push records into a node that
//! has started accepting writes.
//!
//! [`ReplicationFaults`] are the deterministic fault switches the cluster
//! harness flips (drop the connection after N frames, delay each frame,
//! refuse connections); in production they stay at their zero defaults.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use serde::{Deserialize, Serialize};

use crate::engine::QueryEngine;
use crate::error::ServeError;
use crate::wal::{self, WalRecord};

/// Magic tag opening every replication handshake.
pub const REPL_MAGIC: &str = "imrs";
/// Replication wire version.
pub const REPL_VERSION: u32 = 1;

/// Largest record payload a follower will buffer (a sanity bound against a
/// corrupt or hostile length prefix, far above any real batch).
const MAX_FRAME_LEN: usize = 64 << 20;

/// How long the leader's tailer sleeps when the WAL has no new complete
/// record (including a torn tail still being written).
const TAIL_POLL: Duration = Duration::from_millis(2);

/// First post-failure redial delay of the follower loop; doubles per
/// consecutive failure up to [`MAX_RECONNECT_BACKOFF`].
const INITIAL_RECONNECT_BACKOFF: Duration = Duration::from_millis(10);
/// Ceiling on the follower loop's exponential reconnect backoff.
const MAX_RECONNECT_BACKOFF: Duration = Duration::from_millis(500);

/// The follower's opening handshake line (JSON, newline-terminated).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReplHello {
    /// Always [`REPL_MAGIC`].
    pub magic: String,
    /// Always [`REPL_VERSION`].
    pub v: u32,
    /// The follower engine's index identity string (dataset, model, pool
    /// dimensions, shard offset) — must match the leader's exactly.
    pub identity: String,
    /// The follower's base sampling seed — the other half of the identity.
    pub base_seed: u64,
    /// The follower's durable cursor: ship only records extending past this
    /// epoch.
    pub resume_epoch: u64,
}

/// The leader's handshake reply line (JSON, newline-terminated).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReplAck {
    /// Whether the stream follows. `false` is terminal for this connection.
    pub ok: bool,
    /// Refusal reason when `ok` is false (`null` on success — the vendored
    /// serde derive has no field-skipping attributes).
    pub error: Option<String>,
    /// The leader's epoch at handshake time (informational; the operator's
    /// reference point for `promote --expected-epoch`).
    pub epoch: u64,
}

/// Deterministic fault switches for the replication path, shared with the
/// cluster test harness. All zero/false in production.
#[derive(Debug, Default)]
pub struct ReplicationFaults {
    /// When non-zero, the leader hard-drops each connection after shipping
    /// this many frames (a mid-stream kill as seen by the follower).
    pub cut_after_frames: AtomicU64,
    /// Microseconds the leader sleeps before shipping each frame (a slow or
    /// congested link).
    pub delay_micros: AtomicU64,
    /// When set, the leader accepts and immediately closes connections (a
    /// reachable-but-sick leader).
    pub refuse_connections: AtomicBool,
}

/// Live state of one follower loop, shared with the ops endpoint (`/readyz`
/// degrades while the stream is down) and with tests.
#[derive(Debug, Default)]
pub struct FollowerStatus {
    /// Whether the stream to the leader is currently established.
    pub connected: AtomicBool,
    /// Epoch after the last applied record (the replication cursor).
    pub last_applied_epoch: AtomicU64,
    /// Total connection attempts (successful or not).
    pub connect_attempts: AtomicU64,
    last_error: Mutex<Option<String>>,
}

impl FollowerStatus {
    /// The most recent stream error, if any (cleared on a clean connect).
    pub fn last_error(&self) -> Option<String> {
        self.last_error.lock().expect("status poisoned").clone()
    }

    fn set_error(&self, error: Option<String>) {
        *self.last_error.lock().expect("status poisoned") = error;
    }
}

/// A running leader-side replication listener.
#[derive(Debug)]
pub struct LeaderHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
}

impl LeaderHandle {
    /// The address the listener actually bound (resolves ephemeral port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting followers and join the acceptor. Streams in flight
    /// notice the stop flag at their next frame and close.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for LeaderHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
    }
}

/// A running follower loop (dial, stream, apply, re-dial).
#[derive(Debug)]
pub struct FollowerHandle {
    stop: Arc<AtomicBool>,
    worker: Option<JoinHandle<()>>,
}

impl FollowerHandle {
    /// Stop the loop and join it. A blocked read is bounded by the stream's
    /// read timeout, so this returns promptly.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.worker.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for FollowerHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.worker.take() {
            let _ = handle.join();
        }
    }
}

/// Bind `addr` and stream `engine`'s WAL at `wal_path` to connecting
/// followers until shut down.
///
/// The tailer reads the WAL *file* rather than hooking the engine's append
/// path: shipping stays off the mutation hot path, and what followers
/// receive is by construction what was fsynced, not what was merely
/// attempted. The file's identity header is verified against the engine
/// before any record is shipped.
pub fn spawn_leader(
    addr: impl ToSocketAddrs,
    engine: Arc<QueryEngine>,
    wal_path: impl Into<PathBuf>,
    faults: Arc<ReplicationFaults>,
) -> Result<LeaderHandle, ServeError> {
    let listener = TcpListener::bind(addr)?;
    let local_addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let wal_path = wal_path.into();

    let stop_flag = Arc::clone(&stop);
    let acceptor = std::thread::Builder::new()
        .name("imserve-repl-leader".to_string())
        .spawn(move || {
            for stream in listener.incoming() {
                if stop_flag.load(Ordering::SeqCst) {
                    return;
                }
                let Ok(stream) = stream else { continue };
                if faults.refuse_connections.load(Ordering::SeqCst) {
                    let _ = stream.shutdown(Shutdown::Both);
                    continue;
                }
                let engine = Arc::clone(&engine);
                let wal_path = wal_path.clone();
                let faults = Arc::clone(&faults);
                let stop = Arc::clone(&stop_flag);
                let _ = std::thread::Builder::new()
                    .name("imserve-repl-stream".to_string())
                    .spawn(move || {
                        engine.obs().repl_connections.inc();
                        let _ = serve_follower(stream, &engine, &wal_path, &faults, &stop);
                    });
            }
        })
        .expect("replication acceptor spawns");

    Ok(LeaderHandle {
        addr: local_addr,
        stop,
        acceptor: Some(acceptor),
    })
}

/// Serve one follower connection: verify the handshake, then tail the WAL
/// file and ship records until the follower hangs up, the process stops, or
/// a fault switch cuts the stream.
fn serve_follower(
    stream: TcpStream,
    engine: &QueryEngine,
    wal_path: &Path,
    faults: &ReplicationFaults,
    stop: &AtomicBool,
) -> Result<(), ServeError> {
    stream.set_nodelay(true)?;
    // Bound the handshake read so a silent connection cannot pin this thread.
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;

    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Err(ServeError::Protocol(
            "follower hung up mid-handshake".into(),
        ));
    }
    let hello: ReplHello = serde_json::from_str(line.trim())
        .map_err(|e| ServeError::Protocol(format!("malformed replication handshake: {e}")))?;

    let identity = engine.identity();
    let base_seed = engine.base_seed();
    let refusal = if hello.magic != REPL_MAGIC {
        Some(format!("bad magic {:?}", hello.magic))
    } else if hello.v != REPL_VERSION {
        Some(format!(
            "replication version {} not supported (leader speaks {REPL_VERSION})",
            hello.v
        ))
    } else if hello.identity != identity || hello.base_seed != base_seed {
        Some(format!(
            "index identity mismatch: follower serves {:?} (seed {}) but this leader serves \
             {identity:?} (seed {base_seed})",
            hello.identity, hello.base_seed
        ))
    } else {
        None
    };
    if let Some(error) = refusal {
        let ack = ReplAck {
            ok: false,
            error: Some(error.clone()),
            epoch: 0,
        };
        writeln!(
            writer,
            "{}",
            serde_json::to_string(&ack).expect("ack encodes")
        )?;
        return Err(ServeError::Protocol(error));
    }
    let ack = ReplAck {
        ok: true,
        error: None,
        epoch: engine.epoch(),
    };
    writeln!(
        writer,
        "{}",
        serde_json::to_string(&ack).expect("ack encodes")
    )?;

    tail_wal(
        &mut writer,
        engine,
        wal_path,
        &identity,
        base_seed,
        hello.resume_epoch,
        faults,
        stop,
    )
}

/// Tail the WAL file from the record after `resume_epoch`, shipping each
/// complete record as a length-prefixed frame. Returns when the follower
/// hangs up (write failure), the stop flag is set, or a fault cuts the
/// stream.
#[allow(clippy::too_many_arguments)]
fn tail_wal(
    writer: &mut TcpStream,
    engine: &QueryEngine,
    wal_path: &Path,
    identity: &str,
    base_seed: u64,
    resume_epoch: u64,
    faults: &ReplicationFaults,
    stop: &AtomicBool,
) -> Result<(), ServeError> {
    let header = wal::encode_header(identity, base_seed);
    let mut offset = 0usize; // bytes of the file already consumed
    let mut header_checked = false;
    let mut frames_sent = 0u64;

    loop {
        if stop.load(Ordering::SeqCst) {
            return Ok(());
        }
        // Reread the whole file each poll. WAL files between compactions are
        // small (records are folded into the artifact on export) and the
        // tailer is off the hot path; the simplicity buys an important
        // property — a *shrunk* file (operator error, harness truncation
        // below our offset) is detected instead of read past.
        let bytes = std::fs::read(wal_path)?;
        if bytes.len() < offset {
            return Err(ServeError::Wal(format!(
                "WAL at {} shrank under the tailer (from {offset} to {} bytes)",
                wal_path.display(),
                bytes.len()
            )));
        }
        if !header_checked {
            if bytes.len() < header.len() {
                // Header still being written; wait.
                std::thread::sleep(TAIL_POLL);
                continue;
            }
            if bytes[..header.len()] != header[..] {
                return Err(ServeError::Wal(format!(
                    "WAL at {} carries a different identity header than the index this leader \
                     serves — refusing to ship foreign records",
                    wal_path.display()
                )));
            }
            offset = header.len();
            header_checked = true;
        }

        let mut shipped_any = false;
        while bytes.len() - offset >= 4 {
            let len =
                u32::from_le_bytes(bytes[offset..offset + 4].try_into().expect("4 bytes")) as usize;
            if bytes.len() - offset - 4 < len {
                break; // torn tail mid-append: wait for the rest
            }
            let payload = &bytes[offset + 4..offset + 4 + len];
            // Decode for the resume filter (and as a shipping-side sanity
            // check: a corrupt record never leaves the leader).
            let record = WalRecord::decode_payload(payload)
                .map_err(|e| ServeError::Wal(format!("tailer at byte {offset}: {e}")))?;
            offset += 4 + len;
            if record.epoch_after() <= resume_epoch {
                continue; // already folded into the follower's cursor
            }
            let delay = faults.delay_micros.load(Ordering::SeqCst);
            if delay > 0 {
                std::thread::sleep(Duration::from_micros(delay));
            }
            let cut = faults.cut_after_frames.load(Ordering::SeqCst);
            if cut > 0 && frames_sent >= cut {
                let _ = writer.shutdown(Shutdown::Both);
                return Ok(()); // injected mid-stream kill
            }
            writer.write_all(&(len as u32).to_le_bytes())?;
            writer.write_all(payload)?;
            frames_sent += 1;
            engine.obs().repl_records_shipped.inc();
            shipped_any = true;
        }
        if shipped_any {
            writer.flush()?;
        } else {
            // Nothing new: probe the follower with a zero-byte write is not
            // possible over TCP, so just sleep; a dead follower surfaces as
            // a write error on the next shipped frame.
            std::thread::sleep(TAIL_POLL);
        }
    }
}

/// Spawn the follower loop: dial `leader`, handshake, apply the stream, and
/// re-dial with exponential backoff on any failure. The loop exits once the
/// engine stops being read-only (promotion) or the handle is shut down.
pub fn spawn_follower(
    leader: impl Into<String>,
    engine: Arc<QueryEngine>,
    status: Arc<FollowerStatus>,
) -> FollowerHandle {
    let leader = leader.into();
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    status
        .last_applied_epoch
        .store(engine.epoch(), Ordering::SeqCst);
    let worker = std::thread::Builder::new()
        .name("imserve-repl-follower".to_string())
        .spawn(move || {
            let mut backoff = INITIAL_RECONNECT_BACKOFF;
            while !stop_flag.load(Ordering::SeqCst) && engine.is_read_only() {
                status.connect_attempts.fetch_add(1, Ordering::SeqCst);
                match follow_once(&leader, &engine, &status, &stop_flag) {
                    Ok(()) => backoff = INITIAL_RECONNECT_BACKOFF,
                    Err(e) => {
                        status.set_error(Some(e.to_string()));
                        engine.obs().event_log.warn(
                            "replication_stream_lost",
                            0,
                            vec![imobs::EventField::text("error", e.to_string())],
                        );
                    }
                }
                status.connected.store(false, Ordering::SeqCst);
                engine.obs().repl_connected.set(0);
                if stop_flag.load(Ordering::SeqCst) || !engine.is_read_only() {
                    break;
                }
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(MAX_RECONNECT_BACKOFF);
            }
            status.connected.store(false, Ordering::SeqCst);
            engine.obs().repl_connected.set(0);
        })
        .expect("follower thread spawns");
    FollowerHandle {
        stop,
        worker: Some(worker),
    }
}

/// One dial-handshake-apply cycle of the follower loop.
fn follow_once(
    leader: &str,
    engine: &QueryEngine,
    status: &FollowerStatus,
    stop: &AtomicBool,
) -> Result<(), ServeError> {
    let stream = TcpStream::connect(leader)?;
    stream.set_nodelay(true)?;
    // A bounded read timeout doubles as the stop-flag poll interval: the
    // apply loop checks `stop` between frames, so shutdown is prompt even
    // while the leader is silent.
    stream.set_read_timeout(Some(Duration::from_millis(50)))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);

    let hello = ReplHello {
        magic: REPL_MAGIC.to_string(),
        v: REPL_VERSION,
        identity: engine.identity(),
        base_seed: engine.base_seed(),
        resume_epoch: engine.epoch(),
    };
    writeln!(
        writer,
        "{}",
        serde_json::to_string(&hello).expect("hello encodes")
    )?;
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => return Err(ServeError::Protocol("leader hung up mid-handshake".into())),
            Ok(_) => break,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if stop.load(Ordering::SeqCst) {
                    return Ok(());
                }
            }
            Err(e) => return Err(e.into()),
        }
    }
    let ack: ReplAck = serde_json::from_str(line.trim())
        .map_err(|e| ServeError::Protocol(format!("malformed replication ack: {e}")))?;
    if !ack.ok {
        return Err(ServeError::Protocol(format!(
            "leader refused the replication handshake: {}",
            ack.error.unwrap_or_else(|| "no reason given".into())
        )));
    }
    status.connected.store(true, Ordering::SeqCst);
    status.set_error(None);
    engine.obs().repl_connected.set(1);
    engine.obs().event_log.info(
        "replication_stream_established",
        0,
        vec![
            imobs::EventField::text("leader", leader),
            imobs::EventField::u64("leader_epoch", ack.epoch),
            imobs::EventField::u64("resume_epoch", hello.resume_epoch),
        ],
    );

    apply_stream_until(engine, &mut reader, status, Some(stop)).map(|_| ())
}

/// Apply length-prefixed WAL records from `reader` to `engine` until the
/// stream ends. Returns the number of records applied (skipped duplicates
/// included).
///
/// A clean EOF *between* frames is a normal end of stream (`Ok`); an EOF
/// *inside* a frame is a torn stream and surfaces as a typed error — the
/// caller reconnects and the resume cursor re-requests the torn record. The
/// engine re-verifies every record's epoch and lineage fingerprint, so this
/// function can be driven from any byte source (the crash-point property
/// test feeds it truncated `Cursor`s).
pub fn apply_stream(
    engine: &QueryEngine,
    reader: &mut impl Read,
    status: &FollowerStatus,
) -> Result<u64, ServeError> {
    apply_stream_until(engine, reader, status, None)
}

fn apply_stream_until(
    engine: &QueryEngine,
    reader: &mut impl Read,
    status: &FollowerStatus,
    stop: Option<&AtomicBool>,
) -> Result<u64, ServeError> {
    let mut applied = 0u64;
    loop {
        if stop.is_some_and(|s| s.load(Ordering::SeqCst)) || !engine.is_read_only() {
            return Ok(applied);
        }
        let mut len_bytes = [0u8; 4];
        match read_exact_or_eof(reader, &mut len_bytes, stop)? {
            ReadState::Eof => return Ok(applied),
            ReadState::Stopped => return Ok(applied),
            ReadState::Full => {}
            ReadState::Torn(got) => {
                return Err(ServeError::Protocol(format!(
                    "replication stream tore inside a length prefix ({got} of 4 bytes)"
                )))
            }
        }
        let len = u32::from_le_bytes(len_bytes) as usize;
        if len > MAX_FRAME_LEN {
            return Err(ServeError::Protocol(format!(
                "replication frame of {len} bytes exceeds the {MAX_FRAME_LEN}-byte bound \
                 (corrupt length prefix?)"
            )));
        }
        let mut payload = vec![0u8; len];
        match read_exact_or_eof(reader, &mut payload, stop)? {
            ReadState::Full => {}
            ReadState::Stopped => return Ok(applied),
            ReadState::Eof | ReadState::Torn(_) => {
                return Err(ServeError::Protocol(format!(
                    "replication stream tore inside a {len}-byte record"
                )))
            }
        }
        let record = WalRecord::decode_payload(&payload)?;
        match engine.apply_replicated(&record) {
            Ok(outcome) => {
                applied += 1;
                engine.obs().repl_records_applied.inc();
                let epoch = outcome.map_or_else(|| engine.epoch(), |o| o.epoch);
                status.last_applied_epoch.store(epoch, Ordering::SeqCst);
            }
            Err(e) => {
                return Err(ServeError::Protocol(format!(
                    "replicated record refused: {e}"
                )))
            }
        }
    }
}

/// What one exact-read attempt observed.
enum ReadState {
    /// The buffer was filled.
    Full,
    /// EOF before the first byte (a clean inter-frame stream end).
    Eof,
    /// EOF after `n` bytes (a torn frame).
    Torn(usize),
    /// The stop flag was raised while waiting.
    Stopped,
}

/// `read_exact` that distinguishes a clean EOF at a frame boundary from a
/// torn frame, tolerates the read-timeout ticks the follower loop uses to
/// poll its stop flag, and retries `Interrupted`.
fn read_exact_or_eof(
    reader: &mut impl Read,
    buf: &mut [u8],
    stop: Option<&AtomicBool>,
) -> Result<ReadState, ServeError> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => {
                return Ok(if filled == 0 {
                    ReadState::Eof
                } else {
                    ReadState::Torn(filled)
                })
            }
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if stop.is_some_and(|s| s.load(Ordering::SeqCst)) {
                    return Ok(ReadState::Stopped);
                }
                if stop.is_none() {
                    // A non-socket reader (Cursor) never times out; a socket
                    // driven without a stop flag treats the timeout as fatal
                    // rather than spinning forever.
                    return Err(ServeError::Io(e));
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    Ok(ReadState::Full)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handshake_lines_round_trip() {
        let hello = ReplHello {
            magic: REPL_MAGIC.to_string(),
            v: REPL_VERSION,
            identity: "karate/uc0.1 pool=100 offset=0".to_string(),
            base_seed: 7,
            resume_epoch: 3,
        };
        let line = serde_json::to_string(&hello).unwrap();
        let back: ReplHello = serde_json::from_str(&line).unwrap();
        assert_eq!(back.identity, hello.identity);
        assert_eq!(back.resume_epoch, 3);

        let ack = ReplAck {
            ok: false,
            error: Some("index identity mismatch".to_string()),
            epoch: 0,
        };
        let line = serde_json::to_string(&ack).unwrap();
        let back: ReplAck = serde_json::from_str(&line).unwrap();
        assert!(!back.ok);
        assert!(back.error.unwrap().contains("identity"));
    }

    #[test]
    fn exact_reads_distinguish_clean_eof_from_torn_frames() {
        let mut buf = [0u8; 4];
        let mut empty = std::io::Cursor::new(Vec::<u8>::new());
        assert!(matches!(
            read_exact_or_eof(&mut empty, &mut buf, None).unwrap(),
            ReadState::Eof
        ));
        let mut torn = std::io::Cursor::new(vec![1u8, 2]);
        assert!(matches!(
            read_exact_or_eof(&mut torn, &mut buf, None).unwrap(),
            ReadState::Torn(2)
        ));
        let mut full = std::io::Cursor::new(vec![1u8, 2, 3, 4, 5]);
        assert!(matches!(
            read_exact_or_eof(&mut full, &mut buf, None).unwrap(),
            ReadState::Full
        ));
        assert_eq!(buf, [1, 2, 3, 4]);
    }
}
