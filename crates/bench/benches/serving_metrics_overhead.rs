//! Overhead of the observability layer on the serving hot path.
//!
//! Every instrumented request in `imserve` pays exactly this per call: one
//! counter increment plus one histogram record of the measured latency.
//! The bench contrasts the bare oracle `estimate_with` hot path with the
//! same path wrapped the way `QueryEngine` wraps it — the difference is the
//! full cost of metrics on a query, and it must sit within run-to-run noise
//! of the bare path (the record path is three relaxed atomic adds and never
//! allocates, pinned by `imobs/tests/record_alloc.rs`).
//!
//! The raw-record group prices the primitives themselves, per operation.

use criterion::{criterion_group, criterion_main, Criterion};
use im_core::sampler::Backend;
use im_core::InfluenceOracle;
use imnet::{Dataset, ProbabilityModel};
use imobs::Registry;
use std::hint::black_box;
use std::time::Instant;

const POOL: usize = 200_000;

fn bench(c: &mut Criterion) {
    let ig = Dataset::CaGrQc.influence_graph(ProbabilityModel::uc01(), 3);
    let oracle = InfluenceOracle::builder(POOL)
        .seed(11)
        .backend(Backend::Sequential)
        .sample(&ig);
    let mut scratch = oracle.scratch();

    // The engine's per-request instrumentation: a lane counter and a
    // latency histogram, pre-fetched Arc handles exactly as `QueryEngine`
    // holds them (the registry is never touched per request).
    let registry = Registry::new();
    let lane_count = registry.counter("bench_requests_total", "requests");
    let lane_latency = registry.histogram("bench_latency_micros", "latency");

    // The serving query mix: singletons and multi-seed sets.
    let mut queries: Vec<Vec<u32>> = Vec::new();
    let n = ig.num_vertices() as u32;
    for i in 0..64u32 {
        queries.push(vec![(i * 37) % n]);
        queries.push(vec![(i * 37) % n, (i * 101 + 5) % n, (i * 211 + 9) % n]);
    }

    let mut group = c.benchmark_group("serving_metrics_overhead");
    group.bench_function("estimate_bare", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for q in &queries {
                acc += oracle.estimate_with(black_box(q), &mut scratch);
            }
            acc
        });
    });
    group.bench_function("estimate_instrumented", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for q in &queries {
                let began = Instant::now();
                lane_count.inc();
                acc += oracle.estimate_with(black_box(q), &mut scratch);
                lane_latency.record(began.elapsed().as_micros() as u64);
            }
            acc
        });
    });
    // The primitives alone, per operation: what one record actually costs.
    group.bench_function("record_path_only", |b| {
        b.iter(|| {
            for i in 0..128u64 {
                lane_count.inc();
                lane_latency.record(black_box(i * 31));
            }
        });
    });
    group.finish();

    let snapshot = lane_latency.snapshot();
    println!(
        "recorded {} samples, p99 bucket bound {}us",
        snapshot.count,
        snapshot.quantile(0.99)
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
