//! `imexp` — run the paper's experiments from the command line.
//!
//! ```text
//! imexp <experiment> [--scale quick|standard|paper] [--json]
//! imexp all [--scale quick]
//! imexp list
//! ```
//!
//! Each experiment name corresponds to one table or figure of the paper; see
//! `imexp list` or DESIGN.md for the mapping.

use std::process::ExitCode;

use imexp::config::ExperimentScale;
use imexp::experiments::{experiment_names, run_by_name};

fn print_usage() {
    eprintln!("usage: imexp <experiment|all|list> [--scale quick|standard|paper] [--json]");
    eprintln!("experiments: {}", experiment_names().join(", "));
}

fn parse_scale(value: &str) -> Option<ExperimentScale> {
    match value {
        "quick" => Some(ExperimentScale::Quick),
        "standard" => Some(ExperimentScale::Standard),
        "paper" => Some(ExperimentScale::Paper),
        _ => None,
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        print_usage();
        return ExitCode::FAILURE;
    }
    let command = args[0].as_str();
    let mut scale = ExperimentScale::Quick;
    let mut json = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                let Some(value) = args.get(i + 1) else {
                    eprintln!("--scale requires a value");
                    return ExitCode::FAILURE;
                };
                let Some(parsed) = parse_scale(value) else {
                    eprintln!("unknown scale {value:?} (expected quick, standard or paper)");
                    return ExitCode::FAILURE;
                };
                scale = parsed;
                i += 2;
            }
            "--json" => {
                json = true;
                i += 1;
            }
            other => {
                eprintln!("unknown option {other:?}");
                print_usage();
                return ExitCode::FAILURE;
            }
        }
    }

    match command {
        "list" => {
            for name in experiment_names() {
                println!("{name}");
            }
            ExitCode::SUCCESS
        }
        "all" => {
            for name in experiment_names() {
                eprintln!("running {name} …");
                let report = run_by_name(name, scale).expect("registered experiment must run");
                if json {
                    println!(
                        "{}",
                        serde_json::to_string_pretty(&report).expect("report serialises")
                    );
                } else {
                    println!("{report}");
                }
            }
            ExitCode::SUCCESS
        }
        name => match run_by_name(name, scale) {
            Some(report) => {
                if json {
                    println!(
                        "{}",
                        serde_json::to_string_pretty(&report).expect("report serialises")
                    );
                } else {
                    println!("{report}");
                }
                ExitCode::SUCCESS
            }
            None => {
                eprintln!("unknown experiment {name:?}");
                print_usage();
                ExitCode::FAILURE
            }
        },
    }
}
