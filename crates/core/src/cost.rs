//! Implementation-independent cost accounting.
//!
//! Section 1.3 of the paper: rather than CPU time and RAM — which depend on
//! implementations and machines — the study measures the number of vertices
//! and edges *traversed* (proportional to running time) and the number of
//! vertices and edges *stored in memory as samples* (proportional to memory
//! usage). These two structs are threaded through every estimator.

use serde::{Deserialize, Serialize};

/// Vertices and edges examined by an algorithm (possibly counting repeats),
/// the paper's *traversal cost*.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraversalCost {
    /// Number of vertex examinations.
    pub vertices: u64,
    /// Number of edge examinations.
    pub edges: u64,
}

impl TraversalCost {
    /// A zero cost.
    #[must_use]
    pub fn zero() -> Self {
        Self::default()
    }

    /// Construct from explicit counts.
    #[must_use]
    pub fn new(vertices: u64, edges: u64) -> Self {
        Self { vertices, edges }
    }

    /// Total touches (vertices + edges); the scalar used when a single
    /// "traversal cost" number is reported (Table 9).
    #[must_use]
    pub fn total(&self) -> u64 {
        self.vertices + self.edges
    }

    /// Add a reachability query's counts.
    pub fn add_scan(&mut self, vertices: usize, edges: usize) {
        self.vertices += vertices as u64;
        self.edges += edges as u64;
    }
}

impl std::ops::Add for TraversalCost {
    type Output = TraversalCost;
    fn add(self, rhs: TraversalCost) -> TraversalCost {
        TraversalCost {
            vertices: self.vertices + rhs.vertices,
            edges: self.edges + rhs.edges,
        }
    }
}

impl std::ops::AddAssign for TraversalCost {
    fn add_assign(&mut self, rhs: TraversalCost) {
        self.vertices += rhs.vertices;
        self.edges += rhs.edges;
    }
}

impl std::iter::Sum for TraversalCost {
    fn sum<I: Iterator<Item = TraversalCost>>(iter: I) -> TraversalCost {
        iter.fold(TraversalCost::zero(), |acc, c| acc + c)
    }
}

/// Vertices and edges stored in memory as approach-specific samples, the
/// paper's *sample size*.
///
/// * Oneshot stores nothing between Estimate calls (sample size 0);
/// * Snapshot stores `τ` live-edge graphs (`τ·n` vertices plus in expectation
///   `τ·m̃` edges);
/// * RIS stores `θ` RR sets (`θ·EPT` vertices in expectation, no edges).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SampleSize {
    /// Vertices stored across all samples.
    pub vertices: u64,
    /// Edges stored across all samples.
    pub edges: u64,
}

impl SampleSize {
    /// A zero sample size (Oneshot).
    #[must_use]
    pub fn zero() -> Self {
        Self::default()
    }

    /// Construct from explicit counts.
    #[must_use]
    pub fn new(vertices: u64, edges: u64) -> Self {
        Self { vertices, edges }
    }

    /// Total stored items (vertices + edges), the scalar used for the
    /// comparable *size* ratio of Section 5.2.3.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.vertices + self.edges
    }
}

impl std::ops::Add for SampleSize {
    type Output = SampleSize;
    fn add(self, rhs: SampleSize) -> SampleSize {
        SampleSize {
            vertices: self.vertices + rhs.vertices,
            edges: self.edges + rhs.edges,
        }
    }
}

impl std::ops::AddAssign for SampleSize {
    fn add_assign(&mut self, rhs: SampleSize) {
        self.vertices += rhs.vertices;
        self.edges += rhs.edges;
    }
}

impl std::iter::Sum for SampleSize {
    fn sum<I: Iterator<Item = SampleSize>>(iter: I) -> SampleSize {
        iter.fold(SampleSize::zero(), |acc, s| acc + s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traversal_cost_arithmetic() {
        let a = TraversalCost::new(3, 7);
        let b = TraversalCost::new(10, 20);
        assert_eq!(a + b, TraversalCost::new(13, 27));
        let mut c = a;
        c += b;
        assert_eq!(c, TraversalCost::new(13, 27));
        assert_eq!(c.total(), 40);
        assert_eq!(TraversalCost::zero().total(), 0);
    }

    #[test]
    fn traversal_cost_add_scan() {
        let mut c = TraversalCost::zero();
        c.add_scan(5, 9);
        c.add_scan(1, 0);
        assert_eq!(c, TraversalCost::new(6, 9));
    }

    #[test]
    fn traversal_cost_sum() {
        let total: TraversalCost = vec![TraversalCost::new(1, 2), TraversalCost::new(3, 4)]
            .into_iter()
            .sum();
        assert_eq!(total, TraversalCost::new(4, 6));
    }

    #[test]
    fn sample_size_arithmetic() {
        let a = SampleSize::new(2, 5);
        let b = SampleSize::new(8, 0);
        assert_eq!(a + b, SampleSize::new(10, 5));
        let mut c = a;
        c += b;
        assert_eq!(c.total(), 15);
        let sum: SampleSize = vec![a, b].into_iter().sum();
        assert_eq!(sum, c);
    }

    #[test]
    fn serde_round_trip() {
        let c = TraversalCost::new(11, 13);
        let json = serde_json::to_string(&c).unwrap();
        assert_eq!(serde_json::from_str::<TraversalCost>(&json).unwrap(), c);
        let s = SampleSize::new(1, 2);
        let json = serde_json::to_string(&s).unwrap();
        assert_eq!(serde_json::from_str::<SampleSize>(&json).unwrap(), s);
    }
}
