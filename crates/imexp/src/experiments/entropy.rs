//! Figures 1–3: entropy of seed-set distributions.
//!
//! * **Figure 1** — entropy vs sample number on Karate (uc0.1) for
//!   k ∈ {1, 4, 16}, all three approaches; the paper's headline finding is
//!   that the entropy of Oneshot, Snapshot and RIS drops at the same rate up
//!   to a horizontal shift (scaling of the sample number) and converges to 0
//!   for k = 1 and 4.
//! * **Figure 2** — two instances (Karate iwc k = 4, Physicians iwc k = 1)
//!   whose entropy hits a plateau near 1 bit because two seed sets have
//!   almost identical influence.
//! * **Figure 3** — entropy decay of RIS at k = 1 on BA_s and BA_d under the
//!   four probability models, plus the Table 4 explanation (the gap between
//!   the top-1 and top-2 single-vertex influence governs the decay speed).

use imnet::{Dataset, ProbabilityModel};
use imstats::convergence::{analyze_curve, ConvergenceReport};

use crate::config::{ApproachKind, ExperimentScale};
use crate::experiments::{instance_for, trials_for, ExperimentReport};
use crate::report::{fmt_float, fmt_option, TextTable};
use crate::runner::{AnalyzedSweep, PreparedInstance};

/// The entropy curves of every approach on one instance at one seed size.
#[derive(Debug, Clone)]
pub struct EntropyExperiment {
    /// The instance label.
    pub instance: String,
    /// The seed-set size.
    pub seed_size: usize,
    /// One analysed sweep per approach.
    pub sweeps: Vec<AnalyzedSweep>,
}

impl EntropyExperiment {
    /// Run all three approaches on one prepared instance.
    #[must_use]
    pub fn run(
        instance: &PreparedInstance,
        k: usize,
        scale: ExperimentScale,
        trials: usize,
    ) -> Self {
        let sweeps = ApproachKind::all()
            .into_iter()
            .map(|approach| {
                let sweep = match approach {
                    ApproachKind::Ris => scale.ris_sweep(trials),
                    _ => scale.simulation_sweep(trials),
                };
                instance.sweep(approach, k, &sweep)
            })
            .collect();
        Self {
            instance: instance.label(),
            seed_size: k,
            sweeps,
        }
    }

    /// Convergence report per approach.
    #[must_use]
    pub fn convergence(&self) -> Vec<(ApproachKind, ConvergenceReport)> {
        self.sweeps
            .iter()
            .map(|s| (s.approach, analyze_curve(&s.entropy_curve(), 3, 0.35)))
            .collect()
    }

    /// Render the entropy curves as one table (one row per sample number, one
    /// column per approach), mirroring the figure's series.
    #[must_use]
    pub fn to_table(&self, title: &str) -> TextTable {
        let mut header = vec!["sample number".to_string()];
        for sweep in &self.sweeps {
            header.push(format!("H[{}]", sweep.approach.name()));
        }
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        let mut table = TextTable::new(title, &header_refs);
        // Collect the union of sample numbers across approaches (RIS sweeps
        // further than the others).
        let mut sample_numbers: Vec<u64> = self
            .sweeps
            .iter()
            .flat_map(|s| s.analyses.iter().map(|a| a.sample_number))
            .collect();
        sample_numbers.sort_unstable();
        sample_numbers.dedup();
        for s in sample_numbers {
            let mut row = vec![s.to_string()];
            for sweep in &self.sweeps {
                row.push(fmt_option(sweep.at(s).map(|a| fmt_float(a.entropy))));
            }
            table.add_row(row);
        }
        table
    }
}

/// Figure 1: Karate (uc0.1), k ∈ {1, 4, 16}.
#[must_use]
pub fn fig1(scale: ExperimentScale) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig1",
        "entropy of seed-set distributions on Karate (uc0.1), k = 1, 4, 16 (Figure 1)",
    );
    let seed_sizes: &[usize] = match scale {
        ExperimentScale::Quick => &[1, 4],
        _ => &[1, 4, 16],
    };
    let instance = PreparedInstance::prepare(
        instance_for(Dataset::Karate, ProbabilityModel::uc01(), scale),
        scale.oracle_pool(),
        1,
    );
    let trials = trials_for(Dataset::Karate, scale);
    for &k in seed_sizes {
        let experiment = EntropyExperiment::run(&instance, k, scale, trials);
        report
            .tables
            .push(experiment.to_table(&format!("Entropy on Karate (uc0.1), k = {k}")));
        for (approach, convergence) in experiment.convergence() {
            report.notes.push(format!(
                "k = {k}, {}: converged_at = {}, final entropy zero = {}",
                approach.name(),
                fmt_option(convergence.converged_at),
                convergence.final_entropy_is_zero,
            ));
        }
    }
    report.notes.push(
        "Paper finding: for k = 1 and k = 4 all three approaches converge to entropy 0 (a unique \
         seed set); the curves are horizontal shifts of one another."
            .to_string(),
    );
    report
}

/// Figure 2: plateau instances (Karate iwc k = 4, Physicians iwc k = 1).
#[must_use]
pub fn fig2(scale: ExperimentScale) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig2",
        "entropy plateaus caused by almost-tied seed sets (Figure 2)",
    );
    let cases = [(Dataset::Karate, 4usize), (Dataset::Physicians, 1usize)];
    for (dataset, k) in cases {
        let instance = PreparedInstance::prepare(
            instance_for(dataset, ProbabilityModel::InDegreeWeighted, scale),
            scale.oracle_pool(),
            2,
        );
        let trials = trials_for(dataset, scale);
        let experiment = EntropyExperiment::run(&instance, k, scale, trials);
        report
            .tables
            .push(experiment.to_table(&format!("Entropy on {} (iwc), k = {k}", dataset.name())));
        for (approach, convergence) in experiment.convergence() {
            report.notes.push(format!(
                "{} (iwc) k = {k}, {}: plateau = {:?}",
                dataset.name(),
                approach.name(),
                convergence
                    .plateau
                    .map(|p| (p.start_sample_number, p.end_sample_number, p.level)),
            ));
        }
        // The paper explains the plateau by two near-tied seed sets: report the
        // top-2 gap.
        let top = instance.oracle.top_influential_vertices(2);
        if top.len() == 2 {
            report.notes.push(format!(
                "{} (iwc): top-1 influence {} vs top-2 influence {} (near ties slow convergence)",
                dataset.name(),
                fmt_float(top[0].1),
                fmt_float(top[1].1),
            ));
        }
    }
    report
}

/// Figure 3: RIS entropy decay on BA_s and BA_d under the four probability
/// models, plus the Table 4 top-3 influence explanation.
#[must_use]
pub fn fig3(scale: ExperimentScale) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig3",
        "entropy decay speed per edge-probability setting on BA_s / BA_d, RIS, k = 1 (Figure 3)",
    );
    for dataset in [Dataset::BaSparse, Dataset::BaDense] {
        let trials = trials_for(dataset, scale);
        let mut header = vec!["sample number".to_string()];
        for model in ProbabilityModel::paper_models() {
            header.push(format!("H[{}]", model.label()));
        }
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        let mut table = TextTable::new(
            format!("RIS entropy on {} (k = 1)", dataset.name()),
            &header_refs,
        );

        let mut sweeps = Vec::new();
        for model in ProbabilityModel::paper_models() {
            let instance = PreparedInstance::prepare(
                instance_for(dataset, model, scale),
                scale.oracle_pool(),
                3,
            );
            let sweep = instance.sweep(ApproachKind::Ris, 1, &scale.ris_sweep(trials));
            sweeps.push((model, sweep));
        }
        let sample_numbers: Vec<u64> = sweeps[0]
            .1
            .analyses
            .iter()
            .map(|a| a.sample_number)
            .collect();
        for s in sample_numbers {
            let mut row = vec![s.to_string()];
            for (_, sweep) in &sweeps {
                row.push(fmt_option(sweep.at(s).map(|a| fmt_float(a.entropy))));
            }
            table.add_row(row);
        }
        report.tables.push(table);
        // Entropy at the final sample number per model, to compare decay speed.
        for (model, sweep) in &sweeps {
            let last = sweep.analyses.last().expect("sweep is non-empty");
            report.notes.push(format!(
                "{} ({}): entropy at θ = {} is {}",
                dataset.name(),
                model.label(),
                last.sample_number,
                fmt_float(last.entropy),
            ));
        }
    }
    report.notes.push(
        "Paper finding: iwc shows the fastest entropy decay on both BA networks because the gap \
         between the largest and second-largest single-vertex influence is widest (Table 4)."
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::InstanceConfig;

    fn tiny_instance() -> PreparedInstance {
        PreparedInstance::prepare(
            InstanceConfig::new(Dataset::Karate, ProbabilityModel::uc01()),
            5_000,
            9,
        )
    }

    #[test]
    fn entropy_experiment_produces_curves_for_all_approaches() {
        let instance = tiny_instance();
        // Hand-rolled small sweep to keep the test fast.
        let sweeps = ApproachKind::all()
            .into_iter()
            .map(|approach| {
                let sweep = crate::config::SweepConfig {
                    sample_numbers: vec![1, 16, 256],
                    trials: 25,
                    base_seed: 3,
                    threads: 0,
                };
                instance.sweep(approach, 1, &sweep)
            })
            .collect();
        let experiment = EntropyExperiment {
            instance: instance.label(),
            seed_size: 1,
            sweeps,
        };
        let table = experiment.to_table("test");
        assert_eq!(table.num_rows(), 3);
        // Larger sample numbers should not increase entropy for any approach.
        let convergence = experiment.convergence();
        assert_eq!(convergence.len(), 3);
        for sweep in &experiment.sweeps {
            let curve = sweep.entropy_curve();
            assert!(
                curve.first().unwrap().entropy >= curve.last().unwrap().entropy - 0.5,
                "{}: entropy should broadly decrease",
                sweep.approach.name()
            );
        }
    }
}
