//! The `InfluenceService` interchangeability contract, end to end:
//!
//! * local, remote (protocol v2 over TCP) and sharded backends answer every
//!   query bit-identically — including after broadcast mutations;
//! * a v1 client keeps working against a v2 server (dialect compatibility);
//! * v2 pipelining matches responses to requests by id;
//! * the typed error taxonomy survives the wire.

mod fixtures;

use std::sync::Arc;

use imgraph::GraphDelta;
use imserve::client::{Connection, RemoteService, ServiceConnection};
use imserve::engine::QueryEngine;
use imserve::index::{build_dataset_index, IndexArtifact};
use imserve::protocol::{Request, Response, TopKAlgorithm, PROTOCOL_VERSION};
use imserve::server::{self, ServerConfig};
use imserve::service::{InfluenceService, LocalService, ServiceError};
use imserve::shard::ShardedService;

const POOL: usize = 6_000;
const SEED: u64 = 7;
const SHARDS: usize = 3;

fn karate_graph() -> imgraph::InfluenceGraph {
    imserve::index::parse_dataset("karate")
        .unwrap()
        .influence_graph(imserve::index::parse_model("uc0.1").unwrap(), SEED)
}

fn local_backend() -> LocalService {
    let engine = QueryEngine::builder(build_dataset_index("karate", "uc0.1", POOL, SEED).unwrap())
        .build()
        .unwrap();
    LocalService::new(Arc::new(engine))
}

fn sharded_backend() -> ShardedService<LocalService> {
    let graph = karate_graph();
    let shards: Vec<LocalService> = (0..SHARDS)
        .map(|i| {
            let artifact =
                IndexArtifact::build_shard("Karate", "uc0.1", graph.clone(), POOL, SEED, i, SHARDS);
            LocalService::new(Arc::new(QueryEngine::builder(artifact).build().unwrap()))
        })
        .collect();
    ShardedService::new(shards).unwrap()
}

/// Assert two services answer a probe battery bit-identically.
fn assert_equivalent(a: &mut dyn InfluenceService, b: &mut dyn InfluenceService, context: &str) {
    let info_a = a.info().unwrap();
    let info_b = b.info().unwrap();
    assert_eq!(info_a.num_vertices, info_b.num_vertices, "{context}");
    assert_eq!(info_a.num_edges, info_b.num_edges, "{context}");
    assert_eq!(info_a.pool_size, info_b.pool_size, "{context}");
    let n = info_a.num_vertices as u32;
    for seeds in [
        vec![0u32],
        vec![n - 1],
        vec![0, 5, 9],
        vec![0, n / 2, n - 1],
        vec![33, 0, 33],
    ] {
        let ea = a.estimate(&seeds).unwrap();
        let eb = b.estimate(&seeds).unwrap();
        assert_eq!(
            ea.spread.to_bits(),
            eb.spread.to_bits(),
            "{context}: estimate({seeds:?})"
        );
        assert_eq!(ea.covered, eb.covered, "{context}: covered({seeds:?})");
        assert_eq!(ea.pool, eb.pool, "{context}: pool({seeds:?})");
    }
    for selected in [vec![], vec![0u32], vec![0, 33]] {
        let ga = a.gains(&selected).unwrap();
        let gb = b.gains(&selected).unwrap();
        assert_eq!(ga.gains, gb.gains, "{context}: gains({selected:?})");
        assert_eq!(ga.covered, gb.covered, "{context}");
    }
    for algorithm in [TopKAlgorithm::Greedy, TopKAlgorithm::SingletonRank] {
        for k in [1usize, 3] {
            let ta = a.top_k(k, algorithm).unwrap();
            let tb = b.top_k(k, algorithm).unwrap();
            assert_eq!(ta.seeds, tb.seeds, "{context}: top_k({k}, {algorithm})");
            assert_eq!(
                ta.spread.to_bits(),
                tb.spread.to_bits(),
                "{context}: top_k({k}, {algorithm}) spread"
            );
        }
    }
}

#[test]
fn sharded_service_is_byte_identical_to_local_including_after_mutations() {
    let mut local = local_backend();
    let mut sharded = sharded_backend();
    assert_eq!(sharded.shard_count(), SHARDS);
    assert_equivalent(&mut local, &mut sharded, "fresh pools");

    // Broadcast the same batches to both; equivalence must hold at every
    // intermediate epoch (interleaved with queries, which prime caches).
    let batches: Vec<Vec<GraphDelta>> = vec![
        vec![
            GraphDelta::InsertEdge {
                source: 0,
                target: 33,
                probability: 0.5,
            },
            GraphDelta::DeleteEdge {
                source: 0,
                target: 1,
            },
        ],
        vec![GraphDelta::SetProbability {
            source: 33,
            target: 32,
            probability: 1.0,
        }],
        vec![GraphDelta::InsertEdge {
            source: 16,
            target: 0,
            probability: 0.9,
        }],
    ];
    let mut epoch = 0u64;
    for (i, batch) in batches.iter().enumerate() {
        let a = local.mutate_batch(batch).unwrap();
        let b = sharded.mutate_batch(batch).unwrap();
        epoch += batch.len() as u64;
        assert_eq!(a.epoch, epoch);
        assert_eq!(b.epoch, epoch, "sharded epoch stays in lockstep");
        assert_eq!(a.applied, batch.len());
        assert_eq!(b.applied, batch.len());
        assert_equivalent(&mut local, &mut sharded, &format!("after batch {i}"));
    }

    // Shard-aware epoch reporting: every shard sits at the common epoch.
    let stats = sharded.stats().unwrap();
    assert_eq!(stats.epoch, epoch);
    assert_eq!(stats.shards.len(), SHARDS);
    for report in &stats.shards {
        assert_eq!(report.epoch, epoch);
        assert_eq!(report.log_len as u64, epoch, "no shard compacted");
    }
    assert_eq!(stats.pool_size, POOL);

    // A rejected batch is atomic everywhere: nothing lands on any backend.
    let bad = vec![
        GraphDelta::InsertEdge {
            source: 0,
            target: 2,
            probability: 0.5,
        },
        GraphDelta::DeleteEdge {
            source: 999,
            target: 0,
        },
    ];
    assert!(matches!(
        local.mutate_batch(&bad),
        Err(ServiceError::Mutation(_))
    ));
    assert!(matches!(
        sharded.mutate_batch(&bad),
        Err(ServiceError::Mutation(_))
    ));
    assert_equivalent(&mut local, &mut sharded, "after rejected batch");

    // Compaction broadcasts too: epochs agree, pending logs fold everywhere.
    let report = sharded.compact().unwrap();
    assert_eq!(report.epoch, epoch);
    assert_eq!(report.folded, SHARDS * epoch as usize);
    let stats = sharded.stats().unwrap();
    for shard in &stats.shards {
        assert_eq!(shard.log_len, 0);
        assert_eq!(shard.snapshot_epoch, epoch);
    }
    local.compact().unwrap();
    assert_equivalent(&mut local, &mut sharded, "after compaction");
}

#[test]
fn remote_service_is_byte_identical_to_local_over_protocol_v2() {
    let engine = Arc::new(
        QueryEngine::builder(build_dataset_index("karate", "uc0.1", POOL, SEED).unwrap())
            .build()
            .unwrap(),
    );
    let handle = fixtures::spawn_server("127.0.0.1:0", Arc::clone(&engine), 2);
    let mut remote = RemoteService::connect(handle.addr()).unwrap();
    let mut local = local_backend();
    assert_equivalent(&mut local, &mut remote, "remote vs local");

    // Mutate through the remote service; the local reference applies the
    // same batch.
    let batch = vec![GraphDelta::DeleteEdge {
        source: 0,
        target: 1,
    }];
    let a = local.mutate_batch(&batch).unwrap();
    let b = remote.mutate_batch(&batch).unwrap();
    assert_eq!(a.epoch, b.epoch);
    assert_eq!(a.resampled, b.resampled);
    assert_equivalent(&mut local, &mut remote, "remote vs local after mutation");

    // Typed errors survive the wire with their taxonomy intact.
    match remote.estimate(&[9_999]) {
        Err(ServiceError::Query(message)) => assert!(message.contains("out of range")),
        other => panic!("expected a typed Query error, got {other:?}"),
    }
    match remote.top_k(0, TopKAlgorithm::Greedy) {
        Err(ServiceError::Query(message)) => assert!(message.contains("positive")),
        other => panic!("expected a typed Query error, got {other:?}"),
    }
    match remote.mutate_batch(&[]) {
        Err(ServiceError::Mutation(message)) => assert!(message.contains("empty")),
        other => panic!("expected a typed Mutation error, got {other:?}"),
    }
    handle.shutdown();
}

#[test]
fn sharded_service_over_remote_shards_matches_local() {
    // The full deployment shape: every shard behind its own TCP server, the
    // router speaking protocol v2 to all of them.
    let graph = karate_graph();
    let mut handles = Vec::new();
    let mut remotes = Vec::new();
    for i in 0..2 {
        let artifact =
            IndexArtifact::build_shard("Karate", "uc0.1", graph.clone(), POOL, SEED, i, 2);
        let engine = Arc::new(QueryEngine::builder(artifact).build().unwrap());
        let handle = fixtures::spawn_server("127.0.0.1:0", engine, 4);
        remotes.push(RemoteService::connect(handle.addr()).unwrap());
        handles.push(handle);
    }
    let mut sharded = ShardedService::new(remotes).unwrap();
    let mut local = local_backend();
    assert_equivalent(&mut local, &mut sharded, "remote shards vs local");

    let batch = vec![GraphDelta::InsertEdge {
        source: 2,
        target: 0,
        probability: 0.25,
    }];
    local.mutate_batch(&batch).unwrap();
    sharded.mutate_batch(&batch).unwrap();
    assert_equivalent(&mut local, &mut sharded, "remote shards after mutation");
    for handle in handles {
        handle.shutdown();
    }
}

#[test]
fn v1_clients_work_unchanged_against_a_v2_server() {
    let engine = Arc::new(
        QueryEngine::builder(build_dataset_index("karate", "uc0.1", POOL, SEED).unwrap())
            .build()
            .unwrap(),
    );
    let handle = fixtures::spawn_server("127.0.0.1:0", Arc::clone(&engine), 4);

    // Bare v1 frames on the wire, answered with bare v1 responses.
    let mut v1 = Connection::open(handle.addr()).unwrap();
    assert_eq!(v1.roundtrip(&Request::Ping).unwrap(), Response::Pong);
    let v1_estimate = v1
        .roundtrip(&Request::Estimate { seeds: vec![0, 33] })
        .unwrap();
    // The very same question through protocol v2 gets the same payload.
    let mut v2 = RemoteService::connect(handle.addr()).unwrap();
    let typed = v2.estimate(&[0, 33]).unwrap();
    match v1_estimate {
        Response::Estimate {
            seeds,
            spread,
            covered,
            pool,
        } => {
            assert_eq!(seeds, vec![0, 33]);
            assert_eq!(spread.to_bits(), typed.spread.to_bits());
            assert_eq!(covered, typed.covered);
            assert_eq!(pool, typed.pool);
        }
        other => panic!("unexpected v1 response {other:?}"),
    }
    // v1 errors stay in-band (no typed channel to speak of).
    let response = v1
        .roundtrip(&Request::Estimate { seeds: vec![9_999] })
        .unwrap();
    assert!(matches!(response, Response::Error { .. }));
    // Both dialects interleave freely on one server (different sockets).
    assert_eq!(v1.roundtrip(&Request::Ping).unwrap(), Response::Pong);
    handle.shutdown();
}

#[test]
fn protocol_v2_pipelines_and_handshakes() {
    let engine = Arc::new(
        QueryEngine::builder(build_dataset_index("karate", "uc0.1", 2_000, SEED).unwrap())
            .build()
            .unwrap(),
    );
    let handle = fixtures::spawn_server("127.0.0.1:0", Arc::clone(&engine), 4);

    let mut connection = ServiceConnection::connect(handle.addr()).unwrap();
    assert_eq!(connection.server_version(), PROTOCOL_VERSION);

    // Write three requests before reading anything; responses come back
    // id-matched and in order.
    let outcomes = connection
        .pipeline(&[
            Request::Estimate { seeds: vec![0] },
            Request::TopK {
                k: 0, // invalid on purpose: typed error mid-pipeline
                algorithm: TopKAlgorithm::Greedy,
            },
            Request::Estimate { seeds: vec![33] },
        ])
        .unwrap();
    assert_eq!(outcomes.len(), 3);
    assert!(matches!(
        outcomes[0],
        Ok(Response::Estimate { ref seeds, .. }) if seeds == &vec![0]
    ));
    assert!(
        matches!(outcomes[1], Err(ServiceError::Query(_))),
        "a rejected request must not poison the pipeline"
    );
    assert!(matches!(
        outcomes[2],
        Ok(Response::Estimate { ref seeds, .. }) if seeds == &vec![33]
    ));
    // The connection stays usable after a mid-pipeline error.
    let answer = connection.call(&Request::Ping).unwrap();
    assert_eq!(answer, Response::Pong);
    handle.shutdown();
}

/// A misconfigured shard set — the same shard listed twice, overlapping
/// ranges, or replicas of a whole pool — must fail construction instead of
/// silently double-counting coverage.
#[test]
fn duplicate_or_overlapping_shard_backends_are_rejected() {
    let graph = karate_graph();
    let shard0 = || {
        let artifact =
            IndexArtifact::build_shard("Karate", "uc0.1", graph.clone(), POOL, SEED, 0, 2);
        LocalService::new(Arc::new(QueryEngine::builder(artifact).build().unwrap()))
    };
    // The same shard twice ("--addr S0 --addr S0").
    match ShardedService::new(vec![shard0(), shard0()]) {
        Err(ServiceError::Shard(message)) => {
            assert!(message.contains("covered twice"), "{message}")
        }
        other => panic!("duplicate shards must be rejected, got {other:?}"),
    }
    // Two whole-pool replicas are a replication setup, not a merge.
    match ShardedService::new(vec![local_backend(), local_backend()]) {
        Err(ServiceError::Shard(message)) => {
            assert!(message.contains("covered twice"), "{message}")
        }
        other => panic!("whole-pool replicas must be rejected, got {other:?}"),
    }
    // A contiguous subset (one shard alone) is legal and self-describing:
    // it behaves as one larger shard and reports partial coverage.
    let mut partial = ShardedService::new(vec![shard0()]).unwrap();
    let info = partial.info().unwrap();
    assert_eq!(info.pool_size, POOL / 2);
    assert_eq!(info.global_pool, POOL as u64);
    assert_eq!(info.shard_offset, 0);
}

/// A v2 frame whose request payload the server cannot parse (a newer
/// client's variant, a typo) must come back as an **id-tagged** Unsupported
/// error, not a bare v1 line — a pipelining client matches responses by id
/// and would otherwise desync.
#[test]
fn unknown_v2_payloads_get_id_tagged_errors() {
    use std::io::{BufRead, BufReader, Write};

    let engine = Arc::new(
        QueryEngine::builder(build_dataset_index("karate", "uc0.1", 1_000, SEED).unwrap())
            .build()
            .unwrap(),
    );
    let handle = fixtures::spawn_server("127.0.0.1:0", Arc::clone(&engine), 4);

    let mut stream = std::net::TcpStream::connect(handle.addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    // Pipeline a valid frame, a frame with an unknown request variant, and
    // another valid frame — all before reading.
    stream
        .write_all(
            b"{\"v\":2,\"id\":41,\"req\":\"Ping\"}\n\
              {\"v\":2,\"id\":42,\"req\":{\"TimeTravel\":{\"to\":1999}}}\n\
              {\"v\":2,\"id\":43,\"req\":\"Ping\"}\n",
        )
        .unwrap();
    let mut lines = Vec::new();
    for _ in 0..3 {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        lines.push(line);
    }
    assert!(lines[0].contains("\"id\":41"), "{}", lines[0]);
    assert!(lines[0].contains("Pong"), "{}", lines[0]);
    assert!(
        lines[1].contains("\"id\":42") && lines[1].contains("Unsupported"),
        "unknown payloads must keep their frame id: {}",
        lines[1]
    );
    assert!(lines[2].contains("\"id\":43"), "{}", lines[2]);
    assert!(lines[2].contains("Pong"), "{}", lines[2]);
    handle.shutdown();
}

/// Out-of-band mutations (behind the router's back) must never let the
/// `top_k` memo serve a stale selection: mutating *every* shard invalidates
/// it, and mutating only *some* shards surfaces as a torn-epoch error.
#[test]
fn sharded_topk_memo_survives_out_of_band_mutations() {
    let graph = karate_graph();
    let engines: Vec<Arc<QueryEngine>> = (0..2)
        .map(|i| {
            let artifact =
                IndexArtifact::build_shard("Karate", "uc0.1", graph.clone(), POOL, SEED, i, 2);
            Arc::new(QueryEngine::builder(artifact).build().unwrap())
        })
        .collect();
    let mut sharded = ShardedService::new(
        engines
            .iter()
            .map(|e| LocalService::new(Arc::clone(e)))
            .collect(),
    )
    .unwrap();
    let before = sharded.top_k(3, TopKAlgorithm::Greedy).unwrap();

    // Mutate every shard engine directly — the router never sees it.
    let batch = vec![GraphDelta::InsertEdge {
        source: 16,
        target: 0,
        probability: 1.0,
    }];
    for engine in &engines {
        engine.mutate_batch(&batch).unwrap();
    }
    // The next selection must be recomputed at the new epoch, matching a
    // single-pool reference over the mutated graph — not the memoized one.
    let after = sharded.top_k(3, TopKAlgorithm::Greedy).unwrap();
    let mut reference = {
        let artifact =
            imserve::index::build_dataset_index_with_deltas("karate", "uc0.1", POOL, SEED, &batch)
                .unwrap();
        LocalService::new(Arc::new(QueryEngine::builder(artifact).build().unwrap()))
    };
    let expected = reference.top_k(3, TopKAlgorithm::Greedy).unwrap();
    assert_eq!(after.seeds, expected.seeds);
    assert_eq!(after.spread.to_bits(), expected.spread.to_bits());
    let _ = before;

    // Tearing the group (mutating only one shard) is a loud Shard error.
    engines[0].mutate_batch(&batch_again()).unwrap();
    match sharded.top_k(3, TopKAlgorithm::Greedy) {
        Err(ServiceError::Shard(message)) => assert!(message.contains("epoch"), "{message}"),
        other => panic!("expected a Shard error on torn epochs, got {other:?}"),
    }
}

fn batch_again() -> Vec<GraphDelta> {
    vec![GraphDelta::DeleteEdge {
        source: 0,
        target: 1,
    }]
}

/// Regression: the loadtest's discovery probe must not hold its connection
/// across the run — on a single-worker server a lingering probe would pin
/// the only worker and deadlock every loadtest connection behind it.
#[test]
fn loadtest_completes_against_a_single_worker_server() {
    use imserve::loadtest::{self, LoadtestConfig};

    let engine = Arc::new(
        QueryEngine::builder(build_dataset_index("karate", "uc0.1", 1_000, SEED).unwrap())
            .build()
            .unwrap(),
    );
    let handle = server::spawn(
        "127.0.0.1:0",
        Arc::clone(&engine),
        &ServerConfig {
            workers: 1,
            idle_timeout: Some(std::time::Duration::from_secs(30)),
        },
    )
    .unwrap();
    let report = loadtest::run(
        handle.addr(),
        &LoadtestConfig {
            connections: 2,
            requests_per_connection: 20,
            k: 2,
            seed: 1,
            arrival_rps: None,
        },
    )
    .unwrap();
    assert_eq!(report.total_requests, 40);
    assert!(report.server_stats.is_some());
    handle.shutdown();
}
