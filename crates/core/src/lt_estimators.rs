//! Oneshot, Snapshot and RIS estimators under the linear threshold model.
//!
//! The paper's experiments use the independent cascade model exclusively, but
//! its three algorithmic approaches are model-agnostic: each only needs an
//! unbiased estimator of the influence spread. This module ports all three to
//! the linear threshold (LT) model of [`crate::lt`], using the classical
//! live-edge interpretation of Kempe et al.: every vertex keeps *at most one*
//! incoming edge, chosen with probability equal to its weight, and LT
//! influence equals expected reachability over that distribution. Consequently
//!
//! * LT-Oneshot simulates the threshold process directly (β simulations per
//!   Estimate call);
//! * LT-Snapshot samples τ one-in-edge live-edge graphs up front;
//! * LT-RIS samples reverse *paths*: an RR set under LT is the path obtained
//!   by repeatedly hopping to the (at most one) live in-neighbour.
//!
//! All three implement [`InfluenceEstimator`], so they drive the same greedy
//! framework, cost accounting and experiment harness as their IC counterparts.

use imgraph::{DiGraph, InfluenceGraph, VertexId};
use imrand::{derive_seed, DefaultRng, Rng32};

use crate::cost::{SampleSize, TraversalCost};
use crate::estimator::InfluenceEstimator;
use crate::lt::{sample_lt_live_edges, LtSimulator};
use crate::sampler::{self, Backend, SampleBudget};

/// Where LT-Oneshot's per-Estimate simulations draw their randomness from
/// (mirrors the IC estimator's two disciplines).
enum LtSource<R> {
    Stream(R),
    Batched {
        base_seed: u64,
        backend: Backend,
        next_call: u64,
    },
}

/// LT-Oneshot: β forward threshold simulations per Estimate call.
pub struct LtOneshotEstimator<'g, R: Rng32> {
    graph: &'g InfluenceGraph,
    beta: u64,
    source: LtSource<R>,
    simulator: LtSimulator,
    committed: Vec<VertexId>,
    cost: TraversalCost,
}

impl<'g, R: Rng32> LtOneshotEstimator<'g, R> {
    /// Build an LT-Oneshot estimator with `beta ≥ 1` simulations per call.
    ///
    /// # Panics
    ///
    /// Panics if `beta == 0`.
    pub fn new(graph: &'g InfluenceGraph, beta: u64, rng: R) -> Self {
        assert!(
            beta >= 1,
            "LT-Oneshot needs at least one simulation per call"
        );
        Self {
            graph,
            beta,
            source: LtSource::Stream(rng),
            simulator: LtSimulator::for_graph(graph),
            committed: Vec::new(),
            cost: TraversalCost::zero(),
        }
    }

    /// The seeds committed so far.
    #[must_use]
    pub fn current_seeds(&self) -> &[VertexId] {
        &self.committed
    }

    /// Estimate the LT influence of an arbitrary seed set.
    pub fn estimate_set(&mut self, seeds: &[VertexId]) -> f64 {
        let beta = self.beta;
        let (activated, cost) = match &mut self.source {
            LtSource::Stream(rng) => {
                let graph = self.graph;
                let simulator = &mut self.simulator;
                sampler::fold_stream(
                    beta,
                    rng,
                    (0u64, TraversalCost::zero()),
                    |(activated, mut cost), _, rng| {
                        let outcome = simulator.simulate(graph, seeds, rng);
                        cost += outcome.cost;
                        (activated + outcome.activated as u64, cost)
                    },
                )
            }
            LtSource::Batched {
                base_seed,
                backend,
                next_call,
            } => {
                let call_seed = derive_seed(*base_seed, *next_call);
                let backend = *backend;
                *next_call += 1;
                let graph = self.graph;
                let budget = SampleBudget::new(beta);
                // `run_batches_reusing` lets the single worker drive the
                // estimator-owned simulator instead of allocating fresh O(n)
                // scratch on every Estimate call.
                sampler::run_batches_reusing(
                    &budget,
                    call_seed,
                    backend,
                    &mut self.simulator,
                    || LtSimulator::for_graph(graph),
                    |simulator, batch, rng| {
                        let mut activated = 0u64;
                        let mut cost = TraversalCost::zero();
                        for _ in 0..batch.len {
                            let outcome = simulator.simulate(graph, seeds, rng);
                            activated += outcome.activated as u64;
                            cost += outcome.cost;
                        }
                        (activated, cost)
                    },
                )
                .into_iter()
                .fold((0u64, TraversalCost::zero()), |(a, mut c), (ba, bc)| {
                    c += bc;
                    (a + ba, c)
                })
            }
        };
        self.cost += cost;
        activated as f64 / beta as f64
    }
}

impl<'g> LtOneshotEstimator<'g, DefaultRng> {
    /// Build an LT-Oneshot estimator driven by the batched sampler (identical
    /// estimates on the sequential and parallel [`Backend`]s for a fixed
    /// `base_seed`).
    ///
    /// # Panics
    ///
    /// Panics if `beta == 0`.
    pub fn with_backend(
        graph: &'g InfluenceGraph,
        beta: u64,
        base_seed: u64,
        backend: Backend,
    ) -> Self {
        assert!(
            beta >= 1,
            "LT-Oneshot needs at least one simulation per call"
        );
        Self {
            graph,
            beta,
            source: LtSource::Batched {
                base_seed,
                backend,
                next_call: 0,
            },
            simulator: LtSimulator::for_graph(graph),
            committed: Vec::new(),
            cost: TraversalCost::zero(),
        }
    }
}

impl<R: Rng32> InfluenceEstimator for LtOneshotEstimator<'_, R> {
    fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    fn estimate(&mut self, candidate: VertexId) -> f64 {
        let mut seeds = self.committed.clone();
        seeds.push(candidate);
        self.estimate_set(&seeds)
    }

    fn update(&mut self, chosen: VertexId) {
        self.committed.push(chosen);
    }

    fn traversal_cost(&self) -> TraversalCost {
        self.cost
    }

    fn sample_size(&self) -> SampleSize {
        SampleSize::zero()
    }

    fn approach_name(&self) -> &'static str {
        "LT-Oneshot"
    }

    fn sample_number(&self) -> u64 {
        self.beta
    }

    fn is_submodular(&self) -> bool {
        false
    }
}

/// LT-Snapshot: τ one-in-edge live-edge graphs sampled in Build and shared by
/// the whole greedy selection, with residual marking in Update.
pub struct LtSnapshotEstimator {
    /// Live-edge graphs; each vertex has in-degree at most one.
    snapshots: Vec<DiGraph>,
    /// Per-snapshot flags marking vertices already reached by committed seeds.
    reached: Vec<Vec<bool>>,
    committed: Vec<VertexId>,
    num_vertices: usize,
    tau: u64,
    cost: TraversalCost,
    sample_size: SampleSize,
}

impl LtSnapshotEstimator {
    /// Build an LT-Snapshot estimator with `tau ≥ 1` live-edge samples.
    ///
    /// # Panics
    ///
    /// Panics if `tau == 0` or the graph is empty.
    pub fn new<R: Rng32>(graph: &InfluenceGraph, tau: u64, rng: &mut R) -> Self {
        assert!(tau >= 1, "LT-Snapshot needs at least one live-edge sample");
        assert!(
            graph.num_vertices() > 0,
            "LT-Snapshot needs a non-empty graph"
        );
        let lists = sampler::fold_stream(
            tau,
            rng,
            Vec::with_capacity(tau as usize),
            |mut acc, _, rng| {
                acc.push(sample_lt_live_edges(graph, rng));
                acc
            },
        );
        Self::from_live_lists(graph, tau, lists)
    }

    /// Build step driven by the batched sampler: `τ` one-in-edge live-edge
    /// samples drawn from per-batch PRNG streams derived from `base_seed`,
    /// optionally across worker threads; identical output on the sequential
    /// and parallel [`Backend`]s.
    ///
    /// # Panics
    ///
    /// Panics if `tau == 0` or the graph is empty.
    pub fn with_backend(
        graph: &InfluenceGraph,
        tau: u64,
        base_seed: u64,
        backend: Backend,
    ) -> Self {
        assert!(tau >= 1, "LT-Snapshot needs at least one live-edge sample");
        assert!(
            graph.num_vertices() > 0,
            "LT-Snapshot needs a non-empty graph"
        );
        let lists = sampler::sample_batched(
            &SampleBudget::new(tau),
            base_seed,
            backend,
            || (),
            |(), _, rng| sample_lt_live_edges(graph, rng),
        );
        Self::from_live_lists(graph, tau, lists)
    }

    fn from_live_lists(
        graph: &InfluenceGraph,
        tau: u64,
        lists: Vec<Vec<(VertexId, VertexId)>>,
    ) -> Self {
        let n = graph.num_vertices();
        let mut snapshots = Vec::with_capacity(lists.len());
        let mut cost = TraversalCost::zero();
        let mut sample_size = SampleSize::zero();
        for live in lists {
            // Sampling examines every vertex and, in the worst case, all of its
            // in-edges.
            cost.vertices += n as u64;
            cost.edges += graph.num_edges() as u64;
            sample_size.vertices += n as u64;
            sample_size.edges += live.len() as u64;
            snapshots.push(DiGraph::from_edges(n, &live));
        }
        Self {
            reached: vec![vec![false; n]; tau as usize],
            snapshots,
            committed: Vec::new(),
            num_vertices: n,
            tau,
            cost,
            sample_size,
        }
    }

    /// The seeds committed so far.
    #[must_use]
    pub fn current_seeds(&self) -> &[VertexId] {
        &self.committed
    }

    /// Count vertices newly reachable from `v` in snapshot `i`, optionally
    /// marking them as reached.
    ///
    /// Vertices already reached by committed seeds are neither counted nor
    /// expanded: the reached set is closed under reachability, so everything
    /// behind them is already accounted for.
    fn marginal_reach(&mut self, i: usize, v: VertexId, commit: bool) -> usize {
        if self.reached[i][v as usize] {
            return 0;
        }
        let mut stack = vec![v];
        let mut newly: Vec<VertexId> = Vec::new();
        // Local visited set so estimate-only calls leave no trace.
        let mut seen = vec![false; self.num_vertices];
        while let Some(u) = stack.pop() {
            if seen[u as usize] || self.reached[i][u as usize] {
                continue;
            }
            seen[u as usize] = true;
            newly.push(u);
            self.cost.vertices += 1;
            for &w in self.snapshots[i].out_neighbors(u) {
                self.cost.edges += 1;
                stack.push(w);
            }
        }
        if commit {
            for &u in &newly {
                self.reached[i][u as usize] = true;
            }
        }
        newly.len()
    }
}

impl InfluenceEstimator for LtSnapshotEstimator {
    fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    fn estimate(&mut self, candidate: VertexId) -> f64 {
        let mut total = 0usize;
        for i in 0..self.snapshots.len() {
            total += self.marginal_reach(i, candidate, false);
        }
        total as f64 / self.tau as f64
    }

    fn update(&mut self, chosen: VertexId) {
        self.committed.push(chosen);
        for i in 0..self.snapshots.len() {
            let _ = self.marginal_reach(i, chosen, true);
        }
    }

    fn traversal_cost(&self) -> TraversalCost {
        self.cost
    }

    fn sample_size(&self) -> SampleSize {
        self.sample_size
    }

    fn approach_name(&self) -> &'static str {
        "LT-Snapshot"
    }

    fn sample_number(&self) -> u64 {
        self.tau
    }

    fn is_submodular(&self) -> bool {
        true
    }
}

/// One LT reverse-reachable set: the backward path from a random target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LtRrSet {
    /// The vertices on the reverse path (the target comes first).
    pub vertices: Vec<VertexId>,
    /// The random target the path was grown from.
    pub target: VertexId,
    /// In-edges examined while growing the path.
    pub edges_examined: u64,
}

/// Generate one LT RR set: starting from `target`, repeatedly pick at most one
/// live in-edge (in-neighbour `u` with probability `w(u, target)`) and hop to
/// it, stopping when no edge is live or a vertex repeats.
pub fn generate_lt_rr_set<R: Rng32>(
    graph: &InfluenceGraph,
    target: VertexId,
    rng: &mut R,
) -> LtRrSet {
    let mut vertices = vec![target];
    let mut edges_examined = 0u64;
    let mut current = target;
    loop {
        let x = rng.next_f64();
        let mut acc = 0.0f64;
        let mut next: Option<VertexId> = None;
        for (u, w) in graph.in_edges_with_prob(current) {
            edges_examined += 1;
            acc += w;
            if x < acc {
                next = Some(u);
                break;
            }
        }
        match next {
            Some(u) if !vertices.contains(&u) => {
                vertices.push(u);
                current = u;
            }
            _ => break,
        }
    }
    LtRrSet {
        vertices,
        target,
        edges_examined,
    }
}

/// LT-RIS: θ reverse paths and greedy maximum coverage over them.
pub struct LtRisEstimator {
    rr_sets: Vec<Vec<VertexId>>,
    vertex_to_sets: Vec<Vec<u32>>,
    covered: Vec<bool>,
    cover_count: Vec<u32>,
    committed: Vec<VertexId>,
    num_vertices: usize,
    theta: u64,
    cost: TraversalCost,
    sample_size: SampleSize,
}

impl LtRisEstimator {
    /// Build an LT-RIS estimator from `theta ≥ 1` reverse paths.
    ///
    /// # Panics
    ///
    /// Panics if `theta == 0` or the graph is empty.
    pub fn new<R: Rng32>(graph: &InfluenceGraph, theta: u64, rng: &mut R) -> Self {
        assert!(theta >= 1, "LT-RIS needs at least one RR set");
        let n = graph.num_vertices();
        assert!(n > 0, "LT-RIS needs a non-empty graph");
        let generated = sampler::fold_stream(
            theta,
            rng,
            Vec::with_capacity(theta as usize),
            |mut acc, _, rng| {
                let target = rng.gen_index(n) as VertexId;
                acc.push(generate_lt_rr_set(graph, target, rng));
                acc
            },
        );
        Self::from_rr_sets(n, theta, generated)
    }

    /// Build step driven by the batched sampler: `θ` reverse paths drawn from
    /// per-batch PRNG streams derived from `base_seed`, optionally across
    /// worker threads; identical output on the sequential and parallel
    /// [`Backend`]s.
    ///
    /// # Panics
    ///
    /// Panics if `theta == 0` or the graph is empty.
    pub fn with_backend(
        graph: &InfluenceGraph,
        theta: u64,
        base_seed: u64,
        backend: Backend,
    ) -> Self {
        assert!(theta >= 1, "LT-RIS needs at least one RR set");
        let n = graph.num_vertices();
        assert!(n > 0, "LT-RIS needs a non-empty graph");
        let generated = sampler::sample_batched(
            &SampleBudget::new(theta),
            base_seed,
            backend,
            || (),
            |(), _, rng| {
                let target = rng.gen_index(n) as VertexId;
                generate_lt_rr_set(graph, target, rng)
            },
        );
        Self::from_rr_sets(n, theta, generated)
    }

    fn from_rr_sets(n: usize, theta: u64, generated: Vec<LtRrSet>) -> Self {
        let mut rr_sets = Vec::with_capacity(generated.len());
        let mut vertex_to_sets: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut cover_count = vec![0u32; n];
        let mut cost = TraversalCost::zero();
        let mut sample_size = SampleSize::zero();
        for (set_id, rr) in generated.into_iter().enumerate() {
            cost.vertices += rr.vertices.len() as u64;
            cost.edges += rr.edges_examined;
            sample_size.vertices += rr.vertices.len() as u64;
            for &v in &rr.vertices {
                vertex_to_sets[v as usize].push(set_id as u32);
                cover_count[v as usize] += 1;
            }
            rr_sets.push(rr.vertices);
        }
        Self {
            covered: vec![false; rr_sets.len()],
            rr_sets,
            vertex_to_sets,
            cover_count,
            committed: Vec::new(),
            num_vertices: n,
            theta,
            cost,
            sample_size,
        }
    }

    /// The seeds committed so far.
    #[must_use]
    pub fn current_seeds(&self) -> &[VertexId] {
        &self.committed
    }

    /// Estimate the LT influence of an arbitrary seed set over all RR sets.
    #[must_use]
    pub fn estimate_set(&self, seeds: &[VertexId]) -> f64 {
        let mut hit = vec![false; self.rr_sets.len()];
        for &s in seeds {
            for &set_id in &self.vertex_to_sets[s as usize] {
                hit[set_id as usize] = true;
            }
        }
        let count = hit.iter().filter(|&&h| h).count();
        self.num_vertices as f64 * count as f64 / self.theta as f64
    }
}

impl InfluenceEstimator for LtRisEstimator {
    fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    fn estimate(&mut self, candidate: VertexId) -> f64 {
        self.num_vertices as f64 * f64::from(self.cover_count[candidate as usize])
            / self.theta as f64
    }

    fn update(&mut self, chosen: VertexId) {
        self.committed.push(chosen);
        let set_ids = std::mem::take(&mut self.vertex_to_sets[chosen as usize]);
        for &set_id in &set_ids {
            if self.covered[set_id as usize] {
                continue;
            }
            self.covered[set_id as usize] = true;
            for &member in &self.rr_sets[set_id as usize] {
                let count = &mut self.cover_count[member as usize];
                *count = count.saturating_sub(1);
            }
        }
        self.vertex_to_sets[chosen as usize] = set_ids;
    }

    fn traversal_cost(&self) -> TraversalCost {
        self.cost
    }

    fn sample_size(&self) -> SampleSize {
        self.sample_size
    }

    fn approach_name(&self) -> &'static str {
        "LT-RIS"
    }

    fn sample_number(&self) -> u64 {
        self.theta
    }

    fn is_submodular(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::greedy_select;
    use crate::lt::monte_carlo_lt_influence;
    use imgraph::DiGraph;
    use imrand::Pcg32;

    /// 0 -> 2 and 1 -> 2 with weights 0.5 each: Inf_LT({0}) = 1.5,
    /// Inf_LT({0,1}) = 3.
    fn fan_in() -> InfluenceGraph {
        InfluenceGraph::new(DiGraph::from_edges(3, &[(0, 2), (1, 2)]), vec![0.5, 0.5])
    }

    /// Path with full weights: seeding the head activates everything.
    fn path_full(len: usize) -> InfluenceGraph {
        let edges: Vec<_> = (0..len as u32 - 1).map(|i| (i, i + 1)).collect();
        InfluenceGraph::new(DiGraph::from_edges(len, &edges), vec![1.0; len - 1])
    }

    #[test]
    fn lt_oneshot_estimates_the_closed_form() {
        let ig = fan_in();
        let mut est = LtOneshotEstimator::new(&ig, 40_000, Pcg32::seed_from_u64(1));
        let inf = est.estimate(0);
        assert!((inf - 1.5).abs() < 0.03, "LT-Oneshot estimate {inf}");
        assert_eq!(est.approach_name(), "LT-Oneshot");
        assert_eq!(est.sample_number(), 40_000);
        assert!(!est.is_submodular());
        assert_eq!(est.sample_size(), SampleSize::zero());
        assert!(est.traversal_cost().vertices > 0);
    }

    #[test]
    fn lt_snapshot_estimates_the_closed_form() {
        let ig = fan_in();
        let mut est = LtSnapshotEstimator::new(&ig, 20_000, &mut Pcg32::seed_from_u64(2));
        let inf = est.estimate(0);
        assert!((inf - 1.5).abs() < 0.05, "LT-Snapshot estimate {inf}");
        assert!(est.is_submodular());
        assert_eq!(est.approach_name(), "LT-Snapshot");
        assert!(est.sample_size().vertices > 0);
    }

    #[test]
    fn lt_ris_estimates_the_closed_form() {
        let ig = fan_in();
        let mut est = LtRisEstimator::new(&ig, 60_000, &mut Pcg32::seed_from_u64(3));
        let inf = est.estimate(0);
        assert!((inf - 1.5).abs() < 0.05, "LT-RIS estimate {inf}");
        assert_eq!(est.approach_name(), "LT-RIS");
        assert_eq!(est.sample_size().edges, 0);
    }

    #[test]
    fn all_three_match_monte_carlo_on_a_weighted_diamond() {
        let g = DiGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let ig = InfluenceGraph::new(g, vec![0.6, 0.4, 0.5, 0.5]);
        let reference = monte_carlo_lt_influence(&ig, &[0], 200_000, &mut Pcg32::seed_from_u64(4));
        let mut oneshot = LtOneshotEstimator::new(&ig, 50_000, Pcg32::seed_from_u64(5));
        let mut snapshot = LtSnapshotEstimator::new(&ig, 30_000, &mut Pcg32::seed_from_u64(6));
        let mut ris = LtRisEstimator::new(&ig, 80_000, &mut Pcg32::seed_from_u64(7));
        assert!((oneshot.estimate(0) - reference).abs() < 0.05);
        assert!((snapshot.estimate(0) - reference).abs() < 0.05);
        assert!((ris.estimate(0) - reference).abs() < 0.05);
    }

    #[test]
    fn lt_rr_sets_are_paths_without_repeats() {
        let ig = path_full(5);
        let mut rng = Pcg32::seed_from_u64(8);
        for _ in 0..100 {
            let target = rng.gen_index(5) as VertexId;
            let rr = generate_lt_rr_set(&ig, target, &mut rng);
            assert!(rr.vertices.contains(&rr.target));
            let mut sorted = rr.vertices.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(
                sorted.len(),
                rr.vertices.len(),
                "repeated vertex in LT RR set"
            );
            // On the full-weight path, the RR set of target z is {0, …, z}.
            assert_eq!(rr.vertices.len(), rr.target as usize + 1);
        }
    }

    #[test]
    fn greedy_under_lt_picks_the_path_head() {
        let ig = path_full(6);
        let mut est = LtRisEstimator::new(&ig, 3_000, &mut Pcg32::seed_from_u64(9));
        let result = greedy_select(&mut est, 1, &mut Pcg32::seed_from_u64(10));
        assert_eq!(result.selection_order, vec![0]);

        let mut snap = LtSnapshotEstimator::new(&ig, 200, &mut Pcg32::seed_from_u64(11));
        let result = greedy_select(&mut snap, 1, &mut Pcg32::seed_from_u64(12));
        assert_eq!(result.selection_order, vec![0]);
    }

    #[test]
    fn snapshot_update_makes_marginals_shrink() {
        let ig = path_full(4);
        let mut est = LtSnapshotEstimator::new(&ig, 100, &mut Pcg32::seed_from_u64(13));
        let before = est.estimate(1);
        est.update(0); // head reaches everything, so vertex 1's marginal drops to 0.
        let after = est.estimate(1);
        assert!(before > after);
        assert_eq!(after, 0.0);
        assert_eq!(est.current_seeds(), &[0]);
    }

    #[test]
    fn ris_update_removes_covered_paths() {
        let ig = path_full(4);
        let mut est = LtRisEstimator::new(&ig, 1_000, &mut Pcg32::seed_from_u64(14));
        est.update(0);
        for v in 0..4u32 {
            assert_eq!(
                est.estimate(v),
                0.0,
                "marginal of {v} after covering everything"
            );
        }
    }

    #[test]
    fn estimate_set_handles_unions() {
        let ig = fan_in();
        let est = LtRisEstimator::new(&ig, 50_000, &mut Pcg32::seed_from_u64(15));
        let union = est.estimate_set(&[0, 1]);
        assert!((union - 3.0).abs() < 0.05, "union estimate {union}");
    }

    #[test]
    #[should_panic(expected = "at least one simulation")]
    fn lt_oneshot_zero_beta_panics() {
        let ig = fan_in();
        let _ = LtOneshotEstimator::new(&ig, 0, Pcg32::seed_from_u64(1));
    }

    #[test]
    #[should_panic(expected = "at least one live-edge sample")]
    fn lt_snapshot_zero_tau_panics() {
        let ig = fan_in();
        let _ = LtSnapshotEstimator::new(&ig, 0, &mut Pcg32::seed_from_u64(1));
    }

    #[test]
    #[should_panic(expected = "at least one RR set")]
    fn lt_ris_zero_theta_panics() {
        let ig = fan_in();
        let _ = LtRisEstimator::new(&ig, 0, &mut Pcg32::seed_from_u64(1));
    }
}
