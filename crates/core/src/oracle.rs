//! The reusable influence oracle (Section 5.2).
//!
//! The exact influence spread is ♯P-hard to compute, so the paper evaluates
//! the quality of every returned seed set with a single, *shared* estimator:
//! a pool of 10⁷ RR sets per influence graph, reused across all runs of all
//! algorithms so that identical seed sets always receive the identical
//! estimate. The 99 % confidence half-width of the oracle for a true spread of
//! `Inf(S)` is `1.29·n/√pool` (each RR set intersecting `S` is a Bernoulli
//! trial with success probability `Inf(S)/n`).

use imgraph::{InfluenceGraph, VertexId};
use imrand::Rng32;

use crate::ris::RrScratch;
use crate::sampler::{self, Backend, SampleBudget};
use crate::seed_set::SeedSet;

/// Append `set_id` to the posting list of every member vertex of one RR set
/// (shared by the stream and batched build paths).
fn index_rr_set(vertex_to_sets: &mut [Vec<u32>], set_id: u32, vertices: &[VertexId]) {
    for &v in vertices {
        vertex_to_sets[v as usize].push(set_id);
    }
}

/// A shared, read-only influence estimator backed by a pool of RR sets.
#[derive(Debug, Clone)]
pub struct InfluenceOracle {
    /// For each vertex, the ids of pool RR sets containing it.
    vertex_to_sets: Vec<Vec<u32>>,
    pool_size: usize,
    num_vertices: usize,
    /// Scratch marks reused across queries (epoch per RR set id).
    // Interior mutability is deliberately avoided: `estimate` takes `&self`
    // and allocates a fresh bitmap per call; seed sets are tiny and queries
    // are far off the hot path, so clarity wins here.
    _private: (),
}

impl InfluenceOracle {
    /// Build an oracle from `pool_size` RR sets.
    ///
    /// The paper uses 10⁷; the experiment harness scales the pool with the
    /// graph size so the oracle's confidence interval stays well below the
    /// 5 % near-optimality margin it is used to judge.
    ///
    /// # Panics
    ///
    /// Panics if `pool_size == 0` or the graph is empty.
    pub fn build<R: Rng32>(graph: &InfluenceGraph, pool_size: usize, rng: &mut R) -> Self {
        assert!(pool_size > 0, "oracle needs a non-empty RR-set pool");
        let n = graph.num_vertices();
        assert!(n > 0, "oracle needs a non-empty graph");
        assert!(
            pool_size <= u32::MAX as usize,
            "pool size exceeds u32 set ids"
        );

        // Stream discipline over the shared RR-set scratch; posting lists are
        // filled as sets are drawn so the member lists are never all held at
        // once (pools go up to 10⁷ sets).
        let mut vertex_to_sets: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut scratch = RrScratch::for_graph(graph);
        sampler::fold_stream(pool_size as u64, rng, (), |(), set_id, rng| {
            let rr = scratch.generate(graph, rng);
            index_rr_set(&mut vertex_to_sets, set_id as u32, &rr.vertices);
        });
        Self {
            vertex_to_sets,
            pool_size,
            num_vertices: n,
            _private: (),
        }
    }

    /// Build an oracle with the batched sampler: the pool's RR sets are drawn
    /// from per-batch PRNG streams derived from `base_seed`, optionally across
    /// worker threads. For a fixed `base_seed` the pool — and therefore every
    /// oracle estimate — is identical on the sequential and parallel
    /// [`Backend`]s. This is the recommended constructor for the paper-scale
    /// 10⁷-set pools, whose generation is embarrassingly parallel.
    ///
    /// # Panics
    ///
    /// Panics if `pool_size == 0` or the graph is empty.
    pub fn build_with_backend(
        graph: &InfluenceGraph,
        pool_size: usize,
        base_seed: u64,
        backend: Backend,
    ) -> Self {
        assert!(pool_size > 0, "oracle needs a non-empty RR-set pool");
        let n = graph.num_vertices();
        assert!(n > 0, "oracle needs a non-empty graph");
        assert!(
            pool_size <= u32::MAX as usize,
            "pool size exceeds u32 set ids"
        );

        // Workers return only the member lists; the posting lists are merged
        // in deterministic batch order on the calling thread.
        let members = sampler::sample_batched(
            &SampleBudget::new(pool_size as u64),
            base_seed,
            backend,
            || RrScratch::for_graph(graph),
            |scratch, _, rng| scratch.generate(graph, rng).vertices,
        );
        let mut vertex_to_sets: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (set_id, vertices) in members.into_iter().enumerate() {
            index_rr_set(&mut vertex_to_sets, set_id as u32, &vertices);
        }
        Self {
            vertex_to_sets,
            pool_size,
            num_vertices: n,
            _private: (),
        }
    }

    /// Number of RR sets in the pool.
    #[must_use]
    pub fn pool_size(&self) -> usize {
        self.pool_size
    }

    /// Number of vertices of the underlying graph.
    #[must_use]
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// The oracle's 99 % confidence half-width `1.29·n/√pool` (Section 5.2).
    #[must_use]
    pub fn confidence_99(&self) -> f64 {
        1.29 * self.num_vertices as f64 / (self.pool_size as f64).sqrt()
    }

    /// Estimate `Inf(S)` as `n · (fraction of pool RR sets intersecting S)`.
    #[must_use]
    pub fn estimate(&self, seeds: &[VertexId]) -> f64 {
        if seeds.is_empty() {
            return 0.0;
        }
        if seeds.len() == 1 {
            // Fast path: a singleton's coverage is just its posting-list length.
            let hits = self.vertex_to_sets[seeds[0] as usize].len();
            return self.num_vertices as f64 * hits as f64 / self.pool_size as f64;
        }
        // Merge the posting lists and count distinct RR-set ids.
        let mut ids: Vec<u32> = Vec::new();
        for &s in seeds {
            ids.extend_from_slice(&self.vertex_to_sets[s as usize]);
        }
        ids.sort_unstable();
        ids.dedup();
        self.num_vertices as f64 * ids.len() as f64 / self.pool_size as f64
    }

    /// Estimate the influence spread of a canonical [`SeedSet`].
    #[must_use]
    pub fn estimate_seed_set(&self, seeds: &SeedSet) -> f64 {
        let vertices: Vec<VertexId> = seeds.iter().collect();
        self.estimate(&vertices)
    }

    /// Influence estimates for *every* singleton seed set, i.e. the per-vertex
    /// influence `Inf(v)` column used by Table 4 and by the theoretical cost
    /// model of Table 1.
    #[must_use]
    pub fn singleton_influences(&self) -> Vec<f64> {
        (0..self.num_vertices)
            .map(|v| {
                self.num_vertices as f64 * self.vertex_to_sets[v].len() as f64
                    / self.pool_size as f64
            })
            .collect()
    }

    /// The top `count` vertices by singleton influence, with their estimates,
    /// in descending order (ties broken by vertex id). This is exactly the
    /// content of Table 4 for `count = 3`.
    #[must_use]
    pub fn top_influential_vertices(&self, count: usize) -> Vec<(VertexId, f64)> {
        let mut all: Vec<(VertexId, f64)> = self
            .singleton_influences()
            .into_iter()
            .enumerate()
            .map(|(v, inf)| (v as VertexId, inf))
            .collect();
        all.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("influence is finite")
                .then(a.0.cmp(&b.0))
        });
        all.truncate(count);
        all
    }

    /// The paper's EPT quantity `(1/n)·Σ_v Inf(v)`: the expected size of an RR
    /// set, used in Table 1's cost model.
    #[must_use]
    pub fn expected_rr_size(&self) -> f64 {
        self.singleton_influences().iter().sum::<f64>() / self.num_vertices as f64
    }

    /// Greedy maximum coverage over the oracle's own RR-set pool.
    ///
    /// With a large pool this is the study's stand-in for "Exact Greedy" — the
    /// unique seed set all three algorithms converge to (Section 5.2 regards
    /// the seed set obtained at entropy 0 as Exact Greedy; running greedy
    /// directly on the shared oracle produces the same limit object). Returns
    /// the seeds in selection order together with the oracle estimate of their
    /// joint influence.
    #[must_use]
    pub fn greedy_seed_set(&self, k: usize) -> (Vec<VertexId>, f64) {
        let n = self.num_vertices;
        let k = k.min(n);
        let mut covered = vec![false; self.pool_size];
        let mut covered_count = 0usize;
        let mut selected: Vec<VertexId> = Vec::with_capacity(k);
        let mut is_selected = vec![false; n];
        for _ in 0..k {
            let mut best: Option<(VertexId, usize)> = None;
            for (v, &already) in is_selected.iter().enumerate() {
                if already {
                    continue;
                }
                let gain = self.vertex_to_sets[v]
                    .iter()
                    .filter(|&&id| !covered[id as usize])
                    .count();
                match best {
                    Some((_, best_gain)) if gain <= best_gain => {}
                    _ => best = Some((v as VertexId, gain)),
                }
            }
            let Some((chosen, _)) = best else { break };
            is_selected[chosen as usize] = true;
            for &id in &self.vertex_to_sets[chosen as usize] {
                if !covered[id as usize] {
                    covered[id as usize] = true;
                    covered_count += 1;
                }
            }
            selected.push(chosen);
        }
        let influence = n as f64 * covered_count as f64 / self.pool_size as f64;
        (selected, influence)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diffusion::monte_carlo_influence;
    use imgraph::DiGraph;
    use imrand::Pcg32;

    fn star(prob: f64) -> InfluenceGraph {
        let edges: Vec<_> = (1..5u32).map(|v| (0, v)).collect();
        InfluenceGraph::new(DiGraph::from_edges(5, &edges), vec![prob; 4])
    }

    #[test]
    fn oracle_matches_closed_form_on_star() {
        let ig = star(0.5);
        let mut rng = Pcg32::seed_from_u64(1);
        let oracle = InfluenceOracle::build(&ig, 100_000, &mut rng);
        assert!((oracle.estimate(&[0]) - 3.0).abs() < 0.05);
        assert!((oracle.estimate(&[1]) - 1.0).abs() < 0.05);
        // {0, 1}: hub covers 1 + 4·0.5 but vertex 1 is then already counted;
        // Inf({0,1}) = 2 + 3·0.5 = 3.5.
        assert!((oracle.estimate(&[0, 1]) - 3.5).abs() < 0.05);
        assert_eq!(oracle.estimate(&[]), 0.0);
    }

    #[test]
    fn oracle_agrees_with_monte_carlo() {
        let ig = star(0.3);
        let oracle = InfluenceOracle::build(&ig, 50_000, &mut Pcg32::seed_from_u64(2));
        let mc = monte_carlo_influence(&ig, &[0], 50_000, &mut Pcg32::seed_from_u64(3));
        let rr = oracle.estimate(&[0]);
        assert!((mc - rr).abs() < 0.1, "MC {mc} vs RR-oracle {rr}");
    }

    #[test]
    fn identical_seed_sets_get_identical_estimates() {
        let ig = star(0.5);
        let oracle = InfluenceOracle::build(&ig, 10_000, &mut Pcg32::seed_from_u64(4));
        let a = oracle.estimate(&[2, 0]);
        let b = oracle.estimate_seed_set(&SeedSet::new(vec![0, 2]));
        assert_eq!(a, b, "the oracle must be a pure function of the seed set");
    }

    #[test]
    fn confidence_shrinks_with_pool_size() {
        let ig = star(0.5);
        let small = InfluenceOracle::build(&ig, 100, &mut Pcg32::seed_from_u64(5));
        let large = InfluenceOracle::build(&ig, 10_000, &mut Pcg32::seed_from_u64(5));
        assert!(large.confidence_99() < small.confidence_99());
        assert!((small.confidence_99() - 1.29 * 5.0 / 10.0).abs() < 1e-12);
        assert_eq!(large.pool_size(), 10_000);
        assert_eq!(large.num_vertices(), 5);
    }

    #[test]
    fn top_influential_vertices_ranks_the_hub_first() {
        let ig = star(0.8);
        let oracle = InfluenceOracle::build(&ig, 20_000, &mut Pcg32::seed_from_u64(6));
        let top = oracle.top_influential_vertices(3);
        assert_eq!(top.len(), 3);
        assert_eq!(top[0].0, 0);
        assert!(top[0].1 > top[1].1);
        // The remaining vertices are all leaves with influence ≈ 1.
        assert!((top[1].1 - 1.0).abs() < 0.1);
        assert!((top[2].1 - 1.0).abs() < 0.1);
        assert!(top[1].1 >= top[2].1);
    }

    #[test]
    fn expected_rr_size_matches_mean_singleton_influence() {
        let ig = star(0.5);
        let oracle = InfluenceOracle::build(&ig, 30_000, &mut Pcg32::seed_from_u64(7));
        // Σ Inf(v) = 3 + 4·1 = 7, so EPT = 7/5 = 1.4.
        assert!((oracle.expected_rr_size() - 1.4).abs() < 0.05);
    }

    #[test]
    fn greedy_seed_set_picks_the_hub_first() {
        let ig = star(0.8);
        let oracle = InfluenceOracle::build(&ig, 20_000, &mut Pcg32::seed_from_u64(9));
        let (seeds, influence) = oracle.greedy_seed_set(2);
        assert_eq!(seeds[0], 0, "the hub dominates every leaf");
        assert_eq!(seeds.len(), 2);
        // Inf({0, leaf}) = 2 + 3·0.8 = 4.4.
        assert!((influence - 4.4).abs() < 0.1, "joint influence {influence}");
        // The greedy influence agrees with the oracle's own estimate.
        assert!((oracle.estimate(&seeds) - influence).abs() < 1e-9);
        // k larger than n is clamped.
        assert_eq!(oracle.greedy_seed_set(100).0.len(), 5);
    }

    #[test]
    #[should_panic(expected = "non-empty RR-set pool")]
    fn zero_pool_panics() {
        let ig = star(0.5);
        let _ = InfluenceOracle::build(&ig, 0, &mut Pcg32::seed_from_u64(8));
    }
}
