//! `imdyn` — incremental RR-set maintenance for evolving influence graphs.
//!
//! The RR-set pool behind the serving layer is a *materialized view* over the
//! influence graph: expensive to compute, cheap to query. Before this crate,
//! any graph change invalidated the whole view — a full resample and a server
//! restart. [`DynamicOracle`] instead keeps the view consistent under a
//! stream of typed mutations ([`imgraph::GraphDelta`]), with a strong
//! correctness contract:
//!
//! > After any sequence of applied deltas, the maintained pool is
//! > **byte-identical** (via `InfluenceOracle::to_bytes`) to a pool rebuilt
//! > from scratch on the mutated graph with the same base seed.
//!
//! The contract is achievable because the pool is built with one derived
//! PRNG stream *per RR set* (`InfluenceOracle::build_incremental`), and the
//! reverse BFS generating a set only examines in-edges of vertices inside the
//! set — so a mutation of edge `(u, v)` dirties exactly the sets containing
//! `v`, and those are listed by the pool's own posting list for `v`. See
//! `README.md` next to this crate for the full argument.
//!
//! [`workload`] provides deterministic random mutation generators used by the
//! proptest suite, the `evolve`/`compaction` experiments and the maintenance
//! benches.
//!
//! # Index lifecycle
//!
//! A long-lived service accumulates an unbounded delta log and pays a CSR
//! re-materialization per structural delta. This crate therefore layers a
//! log-structured lifecycle on top of single-delta maintenance:
//!
//! * [`DynamicOracle::apply_batch`] applies an atomic batch, re-materializes
//!   the CSR **once**, and resamples the *union* of dirty RR sets exactly
//!   once per set;
//! * [`DynamicOracle::compact`] folds the pending log into the base state,
//!   advancing the snapshot watermark so the epoch stays monotonic (caches
//!   keyed on it never see a reset);
//! * [`CompactionPolicy`] decides *when* to compact (pending-log length or
//!   resampled-dirty fraction), and [`DynamicOracle::maybe_compact`] wires
//!   it into the mutation path;
//! * [`DynamicOracle::snapshot`] / [`DynamicOracle::restore`] round-trip the
//!   compacted state, so a restored service answers byte-identically to the
//!   one that produced the snapshot.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use im_core::sampler::Backend;
use im_core::InfluenceOracle;
use imgraph::{
    BatchError, DeltaError, DeltaLog, GraphDelta, InfluenceGraph, MutableInfluenceGraph,
};

pub mod workload;

/// Monotonic counters describing the maintenance work performed so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaintenanceStats {
    /// Deltas successfully applied through [`DynamicOracle::apply`] and
    /// [`DynamicOracle::apply_batch`].
    pub deltas_applied: u64,
    /// RR sets resampled across all applied deltas.
    pub sets_resampled: u64,
    /// Deltas that only patched an edge attribute (no CSR rebuild).
    pub attribute_patches: u64,
    /// Batches successfully applied through [`DynamicOracle::apply_batch`].
    pub batches_applied: u64,
    /// CSR re-materializations paid for structural change. The batched path
    /// pays one per batch; the per-delta path one per structural delta.
    pub csr_materializations: u64,
    /// Times the pending log was folded away ([`DynamicOracle::compact`]).
    pub compactions: u64,
    /// RR sets resampled since the last compaction (the dirty-work signal
    /// [`CompactionPolicy::max_dirty_fraction`] thresholds on; reset by
    /// [`DynamicOracle::compact`]).
    pub resampled_since_compaction: u64,
}

impl MaintenanceStats {
    /// Visit every counter as a `(name, value)` pair, in declaration order.
    /// The names are stable identifiers (snake_case field names) — metric
    /// exporters mirror them without hand-listing the fields.
    pub fn for_each(&self, mut f: impl FnMut(&'static str, u64)) {
        f("deltas_applied", self.deltas_applied);
        f("sets_resampled", self.sets_resampled);
        f("attribute_patches", self.attribute_patches);
        f("batches_applied", self.batches_applied);
        f("csr_materializations", self.csr_materializations);
        f("compactions", self.compactions);
        f(
            "resampled_since_compaction",
            self.resampled_since_compaction,
        );
    }
}

/// What one [`DynamicOracle::apply`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ApplyOutcome {
    /// The engine epoch after the delta (the number of deltas ever applied).
    pub epoch: u64,
    /// RR sets that were dirty and resampled.
    pub resampled: usize,
    /// Whether the adjacency structure changed (insert/delete) rather than
    /// only an edge probability.
    pub structural: bool,
}

/// What one [`DynamicOracle::apply_batch`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchOutcome {
    /// The engine epoch after the batch (the number of deltas ever applied).
    pub epoch: u64,
    /// Deltas applied by the batch (the whole batch, or none).
    pub applied: usize,
    /// Distinct RR sets resampled — the union of the batch's dirty sets,
    /// resampled once each.
    pub resampled: usize,
    /// Structural deltas (insert/delete) in the batch.
    pub structural: usize,
    /// Whether the CSR was re-materialized (exactly once, iff any delta was
    /// structural).
    pub materialized: bool,
}

/// One maintained pool's position in the epoch timeline: where its snapshot
/// watermark sits, how many deltas are still pending in the log, and the
/// resulting epoch.
///
/// This is the unit of *shard-aware* epoch reporting: a sharded service
/// broadcasts every mutation to all pool shards, so their reports must stay
/// in lockstep — any divergence between shards' `EpochReport`s means a
/// broadcast was torn and the union invariant no longer holds. The serving
/// layer aggregates one report per shard and compares them field by field.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EpochReport {
    /// Total deltas ever applied (`snapshot_epoch + log_len`).
    pub epoch: u64,
    /// Deltas folded away by compactions (the snapshot watermark).
    pub snapshot_epoch: u64,
    /// Deltas still pending in the delta log.
    pub log_len: usize,
}

/// What one [`DynamicOracle::compact`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionOutcome {
    /// The epoch at which the log was folded — unchanged by compaction, and
    /// from now on the snapshot watermark ([`DynamicOracle::snapshot_epoch`]).
    pub epoch: u64,
    /// Pending deltas folded into the base state.
    pub folded: usize,
}

/// When a [`DynamicOracle`] should fold its pending delta log away.
///
/// Both thresholds are optional and independent; the policy fires when *any*
/// enabled threshold is reached. The default ([`CompactionPolicy::DISABLED`])
/// never fires, so compaction stays explicit unless an operator opts in.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CompactionPolicy {
    /// Compact once the pending log holds at least this many deltas.
    pub max_log_len: Option<usize>,
    /// Compact once the RR sets resampled since the last compaction reach
    /// this fraction of the pool (a proxy for "how much of the materialized
    /// view has churned"; `1.0` means a full pool's worth of resampling).
    pub max_dirty_fraction: Option<f64>,
}

impl CompactionPolicy {
    /// The policy that never triggers (compaction on demand only).
    pub const DISABLED: Self = Self {
        max_log_len: None,
        max_dirty_fraction: None,
    };

    /// A pure log-length policy: compact every `len` pending deltas.
    #[must_use]
    pub fn log_len(len: usize) -> Self {
        Self {
            max_log_len: Some(len),
            max_dirty_fraction: None,
        }
    }

    /// A pure dirty-fraction policy: compact once resampling since the last
    /// compaction reaches `fraction` of the pool.
    #[must_use]
    pub fn dirty_fraction(fraction: f64) -> Self {
        Self {
            max_log_len: None,
            max_dirty_fraction: Some(fraction),
        }
    }

    /// Whether any threshold is enabled.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.max_log_len.is_some() || self.max_dirty_fraction.is_some()
    }

    /// Whether the thresholds say a state with `log_len` pending deltas and
    /// `resampled_since_compaction` resampled sets over a `pool_size`-set
    /// pool should compact now.
    #[must_use]
    pub fn should_compact(
        &self,
        log_len: usize,
        resampled_since_compaction: u64,
        pool_size: usize,
    ) -> bool {
        if log_len == 0 {
            return false;
        }
        if let Some(max_len) = self.max_log_len {
            if log_len >= max_len {
                return true;
            }
        }
        if let Some(max_fraction) = self.max_dirty_fraction {
            if resampled_since_compaction as f64 >= max_fraction * pool_size as f64 {
                return true;
            }
        }
        false
    }
}

/// The compacted state of a [`DynamicOracle`]: graph, pool and epoch
/// watermark, with no pending log.
///
/// Only obtainable from [`DynamicOracle::snapshot`], so
/// [`DynamicOracle::restore`] is infallible: the parts are consistent by
/// construction (same fixed vertex set, incremental pool, epoch watermark
/// covering every delta ever applied).
#[derive(Debug, Clone)]
pub struct OracleSnapshot {
    epoch: u64,
    graph: InfluenceGraph,
    oracle: InfluenceOracle,
}

impl OracleSnapshot {
    /// The epoch watermark the snapshot was taken at.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The snapshotted influence graph.
    #[must_use]
    pub fn graph(&self) -> &InfluenceGraph {
        &self.graph
    }

    /// The snapshotted RR-set oracle.
    #[must_use]
    pub fn oracle(&self) -> &InfluenceOracle {
        &self.oracle
    }
}

/// An influence oracle kept consistent with an evolving graph.
///
/// Owns the graph in both mutable (edge-list) and materialized (CSR) form,
/// the incrementally maintainable RR-set pool, and the log of every delta
/// applied since the last compaction. All state advances in lock step inside
/// [`DynamicOracle::apply`] / [`DynamicOracle::apply_batch`], so readers
/// holding `&self` always observe a consistent `(graph, pool, epoch)` triple.
///
/// The **epoch** is `snapshot_epoch + pending log length`: compaction moves
/// deltas from the log into the watermark without ever changing the epoch, so
/// epoch-keyed caches remain correct across compactions (a compaction is
/// invisible to queries, by design — it changes where history is stored,
/// never what the graph or the pool is).
///
/// # Example
///
/// ```
/// use im_core::sampler::Backend;
/// use imdyn::{CompactionPolicy, DynamicOracle};
/// use imgraph::{DiGraph, GraphDelta, InfluenceGraph};
///
/// let graph = InfluenceGraph::new(DiGraph::from_edges(3, &[(0, 1), (1, 2)]), vec![0.5, 0.5]);
/// let mut dynamic = DynamicOracle::build(graph, 200, 7, Backend::Sequential)
///     .with_policy(CompactionPolicy::log_len(2));
///
/// // An atomic batch: one CSR re-materialization, one resample per dirty set.
/// let outcome = dynamic
///     .apply_batch(&[
///         GraphDelta::InsertEdge { source: 2, target: 0, probability: 0.5 },
///         GraphDelta::SetProbability { source: 0, target: 1, probability: 1.0 },
///     ])
///     .unwrap();
/// assert_eq!((outcome.epoch, outcome.applied), (2, 2));
///
/// // The policy says the two pending deltas should now be folded away.
/// let compaction = dynamic.maybe_compact().expect("policy threshold reached");
/// assert_eq!((compaction.epoch, compaction.folded), (2, 2));
/// assert_eq!((dynamic.epoch(), dynamic.log().len()), (2, 0));
///
/// // The maintained pool is byte-identical to a from-scratch rebuild, and a
/// // restored snapshot carries the identical state forward.
/// assert!(dynamic.matches_rebuild());
/// let restored = DynamicOracle::restore(dynamic.snapshot());
/// assert_eq!(restored.oracle().to_bytes(), dynamic.oracle().to_bytes());
/// assert_eq!(restored.epoch(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct DynamicOracle {
    mutable: MutableInfluenceGraph,
    graph: InfluenceGraph,
    oracle: InfluenceOracle,
    log: DeltaLog,
    /// Deltas folded into the base state by compactions (or carried by the
    /// snapshot/artifact this oracle was reassembled from) — the log
    /// watermark the pending `log` counts on top of.
    snapshot_epoch: u64,
    policy: CompactionPolicy,
    stats: MaintenanceStats,
}

impl DynamicOracle {
    /// Build a dynamic oracle over `graph` with a fresh incremental pool.
    ///
    /// # Panics
    ///
    /// Panics if `pool_size == 0` or the graph is empty (the pool build
    /// contract).
    #[must_use]
    pub fn build(
        graph: InfluenceGraph,
        pool_size: usize,
        base_seed: u64,
        backend: Backend,
    ) -> Self {
        let oracle = InfluenceOracle::builder(pool_size)
            .seed(base_seed)
            .backend(backend)
            .incremental()
            .sample(&graph);
        Self {
            mutable: MutableInfluenceGraph::from_graph(&graph),
            graph,
            oracle,
            log: DeltaLog::new(),
            snapshot_epoch: 0,
            policy: CompactionPolicy::DISABLED,
            stats: MaintenanceStats::default(),
        }
    }

    /// Reassemble a dynamic oracle from persisted parts (graph, pool, log,
    /// snapshot watermark).
    ///
    /// `graph` and `oracle` must already be at the *same* version (the
    /// serving artifact stores the current graph and current pool; the log is
    /// provenance, not a pending queue). `snapshot_epoch` is the number of
    /// deltas already folded away by compactions *before* the given log, so
    /// the reassembled epoch is `snapshot_epoch + log.len()`. The oracle must
    /// carry incremental state (`InfluenceOracle::is_incremental`); reload
    /// paths re-attach it with `attach_incremental(base_seed)` before calling
    /// this.
    pub fn from_parts(
        graph: InfluenceGraph,
        oracle: InfluenceOracle,
        log: DeltaLog,
        snapshot_epoch: u64,
    ) -> Result<Self, String> {
        if !oracle.is_incremental() {
            return Err("oracle pool carries no incremental state (attach_incremental)".into());
        }
        if oracle.num_vertices() != graph.num_vertices() {
            return Err(format!(
                "pool indexes {} vertices but graph has {}",
                oracle.num_vertices(),
                graph.num_vertices()
            ));
        }
        Ok(Self {
            mutable: MutableInfluenceGraph::from_graph(&graph),
            graph,
            oracle,
            log,
            snapshot_epoch,
            policy: CompactionPolicy::DISABLED,
            stats: MaintenanceStats::default(),
        })
    }

    /// Attach a compaction policy (builder style). The default is
    /// [`CompactionPolicy::DISABLED`].
    #[must_use]
    pub fn with_policy(mut self, policy: CompactionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Replace the compaction policy.
    pub fn set_policy(&mut self, policy: CompactionPolicy) {
        self.policy = policy;
    }

    /// The active compaction policy.
    #[must_use]
    pub fn policy(&self) -> &CompactionPolicy {
        &self.policy
    }

    /// Apply one mutation: update the graph, resample exactly the dirty RR
    /// sets, and append to the log. On error nothing changes.
    ///
    /// Structural deltas pay one CSR re-materialization *each*; a stream of
    /// them is cheaper through [`DynamicOracle::apply_batch`], which pays one
    /// per batch.
    pub fn apply(&mut self, delta: GraphDelta) -> Result<ApplyOutcome, DeltaError> {
        let effect = self.mutable.apply(&delta)?;
        if effect.structural {
            // Insert/delete change the CSR: re-derive it from the edge list,
            // which is exactly the graph a from-scratch rebuild would see.
            self.graph = self.mutable.materialize();
            self.stats.csr_materializations += 1;
        } else if let GraphDelta::SetProbability { probability, .. } = delta {
            // Attribute-only fast path: patch the one probability slot
            // in place (bit-identical to a rebuild, see `set_probability`).
            self.graph.set_probability(effect.edge_id, probability);
            self.stats.attribute_patches += 1;
        }
        let resampled = self
            .oracle
            .apply_delta(&self.graph, &delta)
            .expect("dynamic oracle state is incremental and dimension-consistent");
        self.log.push(delta);
        self.stats.deltas_applied += 1;
        self.stats.sets_resampled += resampled as u64;
        self.stats.resampled_since_compaction += resampled as u64;
        Ok(ApplyOutcome {
            epoch: self.epoch(),
            resampled,
            structural: effect.structural,
        })
    }

    /// Apply an atomic batch of mutations: the graph advances by the whole
    /// batch or not at all, the CSR is re-materialized **once** (iff any
    /// delta is structural), and the *union* of dirty RR sets is resampled
    /// exactly once per set on the final graph.
    ///
    /// The end state is byte-identical to applying the same deltas one at a
    /// time through [`DynamicOracle::apply`] — and therefore to a
    /// from-scratch rebuild — but a batch of `b` structural deltas pays one
    /// materialization instead of `b`, and an RR set dirtied by several
    /// deltas of the batch is resampled once instead of once per delta.
    ///
    /// On error ([`BatchError`] naming the offending delta) nothing changes;
    /// an empty batch is a no-op that does not advance the epoch.
    pub fn apply_batch(&mut self, deltas: &[GraphDelta]) -> Result<BatchOutcome, BatchError> {
        if deltas.is_empty() {
            return Ok(BatchOutcome {
                epoch: self.epoch(),
                applied: 0,
                resampled: 0,
                structural: 0,
                materialized: false,
            });
        }
        let effect = self.mutable.apply_batch(deltas)?;
        let materialized = effect.structural > 0;
        if materialized {
            // One re-materialization for the whole batch: exactly the graph a
            // from-scratch rebuild at the post-batch version would see.
            self.graph = self.mutable.materialize();
            self.stats.csr_materializations += 1;
            self.stats.attribute_patches += (effect.effects.len() - effect.structural) as u64;
        } else {
            // Attribute-only batch: patch each slot in place. Edge ids are
            // stable because nothing structural happened.
            for (delta, per_delta) in deltas.iter().zip(&effect.effects) {
                if let GraphDelta::SetProbability { probability, .. } = delta {
                    self.graph.set_probability(per_delta.edge_id, *probability);
                }
            }
            self.stats.attribute_patches += effect.effects.len() as u64;
        }
        let resampled = self
            .oracle
            .apply_delta_batch(&self.graph, deltas)
            .expect("dynamic oracle state is incremental and dimension-consistent");
        for delta in deltas {
            self.log.push(*delta);
        }
        self.stats.deltas_applied += deltas.len() as u64;
        self.stats.batches_applied += 1;
        self.stats.sets_resampled += resampled as u64;
        self.stats.resampled_since_compaction += resampled as u64;
        Ok(BatchOutcome {
            epoch: self.epoch(),
            applied: deltas.len(),
            resampled,
            structural: effect.structural,
            materialized,
        })
    }

    /// Fold the pending log into the base state.
    ///
    /// The graph and pool are already current — maintenance keeps them at the
    /// head version — so compaction is pure bookkeeping: the watermark
    /// advances by the pending log's length and the log empties. The epoch is
    /// **unchanged**, queries are unaffected, and the only observable
    /// difference is that the history before the watermark is no longer
    /// replayable from this oracle (persist the log first if lineage matters).
    ///
    /// Compacting an empty log is a no-op: nothing folds and the
    /// `compactions` counter does not move, so operators polling the counter
    /// only ever see compactions that did work.
    pub fn compact(&mut self) -> CompactionOutcome {
        let folded = self.log.len();
        if folded > 0 {
            self.snapshot_epoch += folded as u64;
            self.log = DeltaLog::new();
            self.stats.compactions += 1;
            self.stats.resampled_since_compaction = 0;
        }
        CompactionOutcome {
            epoch: self.epoch(),
            folded,
        }
    }

    /// Whether the active [`CompactionPolicy`] says to compact now.
    #[must_use]
    pub fn should_compact(&self) -> bool {
        self.policy.should_compact(
            self.log.len(),
            self.stats.resampled_since_compaction,
            self.pool_size(),
        )
    }

    /// Compact iff the active policy's thresholds are reached
    /// ([`DynamicOracle::should_compact`]); the mutation paths' auto-trigger.
    pub fn maybe_compact(&mut self) -> Option<CompactionOutcome> {
        self.should_compact().then(|| self.compact())
    }

    /// Snapshot the compacted state (graph, pool, epoch watermark).
    ///
    /// The snapshot carries no pending log: it represents the state *as if*
    /// compacted at the current epoch, whether or not [`DynamicOracle::compact`]
    /// has run. Restoring it ([`DynamicOracle::restore`]) yields an oracle
    /// that answers byte-identically to this one.
    #[must_use]
    pub fn snapshot(&self) -> OracleSnapshot {
        OracleSnapshot {
            epoch: self.epoch(),
            graph: self.graph.clone(),
            oracle: self.oracle.clone(),
        }
    }

    /// Rebuild a dynamic oracle from a snapshot: same graph, same pool, same
    /// epoch, empty pending log, fresh stats, policy disabled.
    #[must_use]
    pub fn restore(snapshot: OracleSnapshot) -> Self {
        let OracleSnapshot {
            epoch,
            graph,
            oracle,
        } = snapshot;
        Self {
            mutable: MutableInfluenceGraph::from_graph(&graph),
            graph,
            oracle,
            log: DeltaLog::new(),
            snapshot_epoch: epoch,
            policy: CompactionPolicy::DISABLED,
            stats: MaintenanceStats::default(),
        }
    }

    /// The engine epoch: the number of deltas ever applied — those folded
    /// behind the snapshot watermark plus the pending log.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.snapshot_epoch + self.log.len() as u64
    }

    /// The snapshot watermark: deltas folded away by compactions (or carried
    /// by the artifact this oracle was reassembled from). Equivalently, the
    /// epoch of the last compaction — `0` if none ever ran.
    #[must_use]
    pub fn snapshot_epoch(&self) -> u64 {
        self.snapshot_epoch
    }

    /// The pool's position in the epoch timeline as one comparable value —
    /// the unit a sharded deployment uses to verify its shards stayed in
    /// lockstep (see [`EpochReport`]).
    #[must_use]
    pub fn epoch_report(&self) -> EpochReport {
        EpochReport {
            epoch: self.epoch(),
            snapshot_epoch: self.snapshot_epoch,
            log_len: self.log.len(),
        }
    }

    /// The influence graph at the current epoch.
    #[must_use]
    pub fn graph(&self) -> &InfluenceGraph {
        &self.graph
    }

    /// The mutable edge-list view of the graph at the current epoch.
    #[must_use]
    pub fn mutable_graph(&self) -> &MutableInfluenceGraph {
        &self.mutable
    }

    /// The maintained RR-set oracle at the current epoch.
    #[must_use]
    pub fn oracle(&self) -> &InfluenceOracle {
        &self.oracle
    }

    /// Re-layout the maintained pool in place (raw ⇄ compressed ⇄ tiered).
    ///
    /// A pure storage change: epoch, pending log, incremental state and every
    /// answer — including the byte-identical-rebuild contract — are
    /// unaffected. The cross-layout equivalence proptest pins this by
    /// maintaining one oracle per layout through identical mutation batches.
    pub fn convert_pool_layout(&mut self, layout: im_core::PoolLayout) {
        self.oracle.convert_layout(layout);
    }

    /// The pending log: every delta applied since the last compaction (or
    /// since the artifact this oracle was reassembled from was written), in
    /// application order.
    #[must_use]
    pub fn log(&self) -> &DeltaLog {
        &self.log
    }

    /// Maintenance counters.
    #[must_use]
    pub fn stats(&self) -> &MaintenanceStats {
        &self.stats
    }

    /// The base seed the pool's per-set streams derive from.
    #[must_use]
    pub fn base_seed(&self) -> u64 {
        self.oracle
            .incremental_base_seed()
            .expect("dynamic oracle pools are always incremental")
    }

    /// Number of RR sets in the maintained pool.
    #[must_use]
    pub fn pool_size(&self) -> usize {
        self.oracle.pool_size()
    }

    /// Build the reference pool: a from-scratch incremental build on the
    /// current graph at the same seed (and, for a pool shard, the same
    /// global stream offset). This is the right-hand side of the crate's
    /// correctness contract (and costs a full resample — use it for
    /// verification, not serving).
    #[must_use]
    pub fn rebuild_from_scratch(&self) -> InfluenceOracle {
        InfluenceOracle::builder(self.pool_size())
            .seed(self.base_seed())
            .backend(Backend::Sequential)
            .shard_offset(self.oracle.set_id_offset().unwrap_or(0))
            .sample(&self.graph)
    }

    /// Verify the correctness contract: the maintained pool serializes to
    /// exactly the bytes a from-scratch rebuild produces.
    #[must_use]
    pub fn matches_rebuild(&self) -> bool {
        self.oracle.to_bytes() == self.rebuild_from_scratch().to_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imgraph::DiGraph;

    fn star(prob: f64) -> InfluenceGraph {
        let edges: Vec<_> = (1..5u32).map(|v| (0, v)).collect();
        InfluenceGraph::new(DiGraph::from_edges(5, &edges), vec![prob; 4])
    }

    #[test]
    fn apply_advances_epoch_log_and_stats() {
        let mut dynamic = DynamicOracle::build(star(0.5), 1_000, 7, Backend::Sequential);
        assert_eq!(dynamic.epoch(), 0);
        assert_eq!(dynamic.base_seed(), 7);
        assert_eq!(dynamic.pool_size(), 1_000);

        let outcome = dynamic
            .apply(GraphDelta::InsertEdge {
                source: 3,
                target: 4,
                probability: 0.5,
            })
            .unwrap();
        assert_eq!(outcome.epoch, 1);
        assert!(outcome.structural);
        let outcome = dynamic
            .apply(GraphDelta::SetProbability {
                source: 0,
                target: 2,
                probability: 1.0,
            })
            .unwrap();
        assert!(!outcome.structural);
        assert_eq!(dynamic.epoch(), 2);
        assert_eq!(dynamic.log().len(), 2);
        assert_eq!(dynamic.stats().deltas_applied, 2);
        assert_eq!(dynamic.stats().attribute_patches, 1);
        assert_eq!(dynamic.graph().num_edges(), 5);
        assert!(dynamic.matches_rebuild());
    }

    #[test]
    fn failed_deltas_change_nothing() {
        let mut dynamic = DynamicOracle::build(star(0.5), 500, 3, Backend::Sequential);
        let bytes_before = dynamic.oracle().to_bytes();
        let err = dynamic.apply(GraphDelta::DeleteEdge {
            source: 4,
            target: 0,
        });
        assert!(err.is_err());
        assert_eq!(dynamic.epoch(), 0);
        assert_eq!(dynamic.oracle().to_bytes(), bytes_before);
        assert_eq!(dynamic.stats(), &MaintenanceStats::default());
        // Failed batches are all-or-nothing: a valid delta ahead of an
        // invalid one must not survive.
        let err = dynamic.apply_batch(&[
            GraphDelta::SetProbability {
                source: 0,
                target: 1,
                probability: 1.0,
            },
            GraphDelta::DeleteEdge {
                source: 4,
                target: 0,
            },
        ]);
        assert_eq!(err.unwrap_err().index, 1);
        assert_eq!(dynamic.epoch(), 0);
        assert_eq!(dynamic.oracle().to_bytes(), bytes_before);
        assert_eq!(dynamic.graph().probability(0), 0.5);
        assert_eq!(dynamic.stats(), &MaintenanceStats::default());
    }

    #[test]
    fn apply_batch_matches_per_delta_application_and_rebuild() {
        let deltas = [
            GraphDelta::InsertEdge {
                source: 3,
                target: 4,
                probability: 0.5,
            },
            GraphDelta::SetProbability {
                source: 0,
                target: 2,
                probability: 1.0,
            },
            GraphDelta::DeleteEdge {
                source: 0,
                target: 1,
            },
        ];
        let mut batched = DynamicOracle::build(star(0.5), 1_000, 7, Backend::Sequential);
        let mut per_delta = batched.clone();
        let outcome = batched.apply_batch(&deltas).unwrap();
        assert_eq!(outcome.epoch, 3);
        assert_eq!(outcome.applied, 3);
        assert_eq!(outcome.structural, 2);
        assert!(outcome.materialized);
        for delta in &deltas {
            per_delta.apply(*delta).unwrap();
        }
        assert_eq!(batched.oracle().to_bytes(), per_delta.oracle().to_bytes());
        assert_eq!(
            imgraph::binio::influence_graph_to_bytes(batched.graph()),
            imgraph::binio::influence_graph_to_bytes(per_delta.graph())
        );
        assert_eq!(batched.epoch(), per_delta.epoch());
        assert!(batched.matches_rebuild());
        // One materialization for the batch versus one per structural delta.
        assert_eq!(batched.stats().csr_materializations, 1);
        assert_eq!(per_delta.stats().csr_materializations, 2);
        assert_eq!(batched.stats().batches_applied, 1);
        // The dirty union never exceeds the per-delta resample total.
        assert!(batched.stats().sets_resampled <= per_delta.stats().sets_resampled);

        // Attribute-only batches skip materialization entirely.
        let before = batched.stats().csr_materializations;
        let outcome = batched
            .apply_batch(&[
                GraphDelta::SetProbability {
                    source: 0,
                    target: 2,
                    probability: 0.5,
                },
                GraphDelta::SetProbability {
                    source: 0,
                    target: 3,
                    probability: 1.0,
                },
            ])
            .unwrap();
        assert!(!outcome.materialized);
        assert_eq!(batched.stats().csr_materializations, before);
        assert!(batched.matches_rebuild());

        // The empty batch is a no-op.
        let epoch = batched.epoch();
        let outcome = batched.apply_batch(&[]).unwrap();
        assert_eq!(outcome.applied, 0);
        assert_eq!(batched.epoch(), epoch);
    }

    #[test]
    fn compaction_folds_the_log_without_moving_the_epoch() {
        let mut dynamic = DynamicOracle::build(star(0.5), 400, 11, Backend::Sequential)
            .with_policy(CompactionPolicy::log_len(3));
        assert!(dynamic.policy().is_enabled());
        let deltas = [
            GraphDelta::SetProbability {
                source: 0,
                target: 1,
                probability: 1.0,
            },
            GraphDelta::InsertEdge {
                source: 1,
                target: 2,
                probability: 0.5,
            },
        ];
        dynamic.apply_batch(&deltas).unwrap();
        assert!(!dynamic.should_compact(), "threshold is 3, log holds 2");
        assert!(dynamic.maybe_compact().is_none());

        let pre_compaction = dynamic.oracle().to_bytes();
        dynamic
            .apply(GraphDelta::DeleteEdge {
                source: 0,
                target: 1,
            })
            .unwrap();
        assert!(dynamic.should_compact());
        let outcome = dynamic.maybe_compact().expect("threshold reached");
        assert_eq!(outcome.folded, 3);
        assert_eq!(outcome.epoch, 3);
        assert_eq!(dynamic.epoch(), 3, "compaction never moves the epoch");
        assert_eq!(dynamic.snapshot_epoch(), 3);
        assert!(dynamic.log().is_empty());
        assert_eq!(dynamic.stats().compactions, 1);
        assert_eq!(dynamic.stats().resampled_since_compaction, 0);
        assert!(
            dynamic.matches_rebuild(),
            "state is untouched by compaction"
        );
        drop(pre_compaction);

        // Compacting an already-empty log is a counted-nowhere no-op.
        let outcome = dynamic.compact();
        assert_eq!(outcome.folded, 0);
        assert_eq!(outcome.epoch, 3);
        assert_eq!(
            dynamic.stats().compactions,
            1,
            "no-op folds are not counted"
        );

        // Later mutations keep counting from the watermark.
        dynamic
            .apply(GraphDelta::InsertEdge {
                source: 2,
                target: 0,
                probability: 0.25,
            })
            .unwrap();
        assert_eq!(dynamic.epoch(), 4);
        assert_eq!(dynamic.log().len(), 1);
    }

    #[test]
    fn dirty_fraction_policies_trigger_on_resampled_work() {
        let policy = CompactionPolicy::dirty_fraction(0.5);
        assert!(
            !policy.should_compact(0, 1_000, 100),
            "empty log never compacts"
        );
        assert!(!policy.should_compact(5, 49, 100));
        assert!(policy.should_compact(5, 50, 100));
        assert!(!CompactionPolicy::DISABLED.should_compact(1_000, u64::MAX, 1));
        assert!(!CompactionPolicy::default().is_enabled());
    }

    #[test]
    fn snapshot_restore_round_trips_the_compacted_state() {
        let mut dynamic = DynamicOracle::build(star(0.5), 600, 13, Backend::Sequential);
        dynamic
            .apply_batch(&[
                GraphDelta::InsertEdge {
                    source: 4,
                    target: 1,
                    probability: 0.5,
                },
                GraphDelta::DeleteEdge {
                    source: 0,
                    target: 2,
                },
            ])
            .unwrap();
        let snapshot = dynamic.snapshot();
        assert_eq!(snapshot.epoch(), 2);
        assert_eq!(
            imgraph::binio::influence_graph_to_bytes(snapshot.graph()),
            imgraph::binio::influence_graph_to_bytes(dynamic.graph())
        );
        assert_eq!(snapshot.oracle().to_bytes(), dynamic.oracle().to_bytes());

        let mut restored = DynamicOracle::restore(snapshot);
        assert_eq!(restored.epoch(), 2);
        assert_eq!(restored.snapshot_epoch(), 2);
        assert!(restored.log().is_empty());
        assert_eq!(restored.oracle().to_bytes(), dynamic.oracle().to_bytes());
        assert!(restored.matches_rebuild());

        // The restored oracle keeps evolving equivalently to the original.
        let next = GraphDelta::SetProbability {
            source: 4,
            target: 1,
            probability: 1.0,
        };
        dynamic.apply(next).unwrap();
        restored.apply(next).unwrap();
        assert_eq!(restored.oracle().to_bytes(), dynamic.oracle().to_bytes());
        assert_eq!(restored.epoch(), dynamic.epoch());
    }

    #[test]
    fn from_parts_requires_incremental_state_and_matching_dimensions() {
        let graph = star(0.5);
        let plain = InfluenceOracle::builder(100)
            .seed(1)
            .backend(Backend::Sequential)
            .sample(&graph);
        assert!(
            DynamicOracle::from_parts(graph.clone(), plain.clone(), DeltaLog::new(), 0).is_err()
        );

        let mut attached = plain;
        attached.attach_incremental(1, 0);
        let dynamic =
            DynamicOracle::from_parts(graph.clone(), attached.clone(), DeltaLog::new(), 0)
                .expect("incremental state attached");
        assert_eq!(dynamic.epoch(), 0);

        let other = {
            let edges: Vec<_> = (1..3u32).map(|v| (0, v)).collect();
            InfluenceGraph::new(DiGraph::from_edges(3, &edges), vec![0.5; 2])
        };
        assert!(DynamicOracle::from_parts(other, attached, DeltaLog::new(), 0).is_err());
    }

    #[test]
    fn epoch_counts_reassembled_logs() {
        let graph = star(0.5);
        let mut dynamic = DynamicOracle::build(graph, 200, 9, Backend::Sequential);
        dynamic
            .apply(GraphDelta::DeleteEdge {
                source: 0,
                target: 1,
            })
            .unwrap();
        let reassembled = DynamicOracle::from_parts(
            dynamic.graph().clone(),
            dynamic.oracle().clone(),
            dynamic.log().clone(),
            0,
        )
        .unwrap();
        assert_eq!(reassembled.epoch(), 1);
        assert!(reassembled.matches_rebuild());

        // A compacted server persists (graph, pool, empty log, watermark):
        // the reassembled epoch honours the watermark.
        let compacted = DynamicOracle::from_parts(
            dynamic.graph().clone(),
            dynamic.oracle().clone(),
            DeltaLog::new(),
            1,
        )
        .unwrap();
        assert_eq!(compacted.epoch(), 1);
        assert_eq!(compacted.snapshot_epoch(), 1);
        assert!(compacted.matches_rebuild());
    }
}
