//! Upper-bound based pruning of Estimate calls (UBLF, Zhou et al., ICDM 2013).
//!
//! Section 3.3.3 describes "Estimate call pruning" for Oneshot-type
//! algorithms: upper bounds on the marginal influence, derived without any
//! simulation, identify vertices that can never be the argmax and so never
//! need to be simulated. UBLF obtains such bounds from a linear system over
//! the influence-probability matrix; this module implements the walk-sum form
//! of that bound and a bound-pruned greedy driver that works with any
//! [`InfluenceEstimator`].
//!
//! The bound: the probability that a seed `v` reaches a vertex `w` is at most
//! the sum over all walks from `v` to `w` of the product of edge
//! probabilities, hence
//!
//! ```text
//! Inf({v}) ≤ Σ_{t = 0}^{n − 1} (Pᵗ·1)(v)
//! ```
//!
//! where `P` is the `n × n` matrix with `P[v][w] = p(v, w)`. Because the
//! influence function is submodular, `Inf({v})` also bounds the marginal gain
//! of `v` with respect to *any* seed set, so one static bound vector serves
//! every greedy iteration.

use imgraph::{InfluenceGraph, VertexId};
use imrand::{seq, Rng32};

use crate::estimator::InfluenceEstimator;
use crate::greedy::GreedyResult;

/// Compute the UBLF walk-sum upper bound on `Inf({v})` for every vertex.
///
/// `max_walk_length` caps the Neumann series. Any cap of at least `n − 1`
/// yields a true upper bound (reachability only needs simple paths); smaller
/// caps make the vector a heuristic bound, which is how UBLF is typically run
/// on graphs where the series converges quickly.
#[must_use]
pub fn influence_upper_bounds(graph: &InfluenceGraph, max_walk_length: usize) -> Vec<f64> {
    let n = graph.num_vertices();
    // walk[v] after t rounds holds Σ over walks of length exactly t starting
    // at v of the product of probabilities; bound accumulates the series.
    let mut walk = vec![1.0f64; n];
    let mut bound = vec![1.0f64; n];
    let mut next = vec![0.0f64; n];
    for _ in 0..max_walk_length {
        for v in 0..n as VertexId {
            let mut sum = 0.0f64;
            for (w, p) in graph.out_edges_with_prob(v) {
                sum += p * walk[w as usize];
            }
            next[v as usize] = sum;
        }
        std::mem::swap(&mut walk, &mut next);
        let mut any_progress = false;
        for v in 0..n {
            if walk[v] > 1e-15 {
                any_progress = true;
            }
            bound[v] += walk[v];
        }
        if !any_progress {
            break;
        }
    }
    bound
}

/// Statistics of a bound-pruned greedy run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct UblfStats {
    /// Estimate calls actually issued.
    pub estimate_calls: u64,
    /// Candidate evaluations skipped thanks to the upper bounds.
    pub pruned: u64,
}

/// Greedy seed selection with static upper-bound pruning.
///
/// In every iteration the candidates are scanned in decreasing bound order;
/// as soon as the bound of the next candidate does not exceed the best
/// estimate seen in this iteration, the remaining candidates are skipped.
/// Ties in the resulting argmax are broken towards the candidate appearing
/// later in the per-run random shuffle, matching Algorithm 3.1.
///
/// Pruning is exact when every estimate is at most its bound (true for the
/// exact influence and for RIS/Snapshot estimates up to sampling noise); with
/// a noisy estimator the pruned scan may differ from the full scan on
/// near-ties, which is the trade-off UBLF accepts.
///
/// # Panics
///
/// Panics if `bounds.len()` differs from the estimator's vertex count.
pub fn ublf_select<E: InfluenceEstimator, R: Rng32>(
    estimator: &mut E,
    k: usize,
    bounds: &[f64],
    rng: &mut R,
) -> (GreedyResult, UblfStats) {
    let n = estimator.num_vertices();
    assert_eq!(bounds.len(), n, "need exactly one upper bound per vertex");
    let k = k.min(n);

    // Shuffle first (tie-breaking), then sort by bound descending, keeping the
    // shuffled order among equal bounds. The shuffled rank also decides ties
    // between equal *estimates* (later rank wins, as in Algorithm 3.1).
    let order = seq::random_permutation(n, rng);
    let mut rank_of = vec![0u32; n];
    for (rank, &v) in order.iter().enumerate() {
        rank_of[v as usize] = rank as u32;
    }
    let mut by_bound: Vec<VertexId> = order;
    by_bound.sort_by(|&a, &b| {
        bounds[b as usize]
            .partial_cmp(&bounds[a as usize])
            .expect("bounds must not be NaN")
            .then(rank_of[a as usize].cmp(&rank_of[b as usize]))
    });

    let mut selection_order = Vec::with_capacity(k);
    let mut estimates = Vec::with_capacity(k);
    let mut selected = vec![false; n];
    let mut stats = UblfStats::default();

    for _ in 0..k {
        let mut best: Option<(VertexId, f64)> = None;
        let mut scanned = 0u64;
        for &v in &by_bound {
            if selected[v as usize] {
                continue;
            }
            if let Some((_, best_value)) = best {
                if bounds[v as usize] <= best_value {
                    // Every remaining candidate has an even smaller bound.
                    break;
                }
            }
            let value = estimator.estimate(v);
            stats.estimate_calls += 1;
            scanned += 1;
            match best {
                Some((bv, best_value))
                    if value < best_value
                        || (value == best_value && rank_of[v as usize] < rank_of[bv as usize]) => {}
                _ => best = Some((v, value)),
            }
        }
        let remaining = (n - selection_order.len()) as u64;
        stats.pruned += remaining.saturating_sub(scanned);
        let Some((chosen, value)) = best else { break };
        selected[chosen as usize] = true;
        estimator.update(chosen);
        selection_order.push(chosen);
        estimates.push(value);
    }

    (
        GreedyResult {
            selection_order,
            estimates,
            estimate_calls: stats.estimate_calls,
        },
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::testing::TableEstimator;
    use crate::exact::{exact_influence, exact_singleton_influences};
    use crate::greedy::greedy_select;
    use crate::ris::RisEstimator;
    use imgraph::DiGraph;
    use imrand::Pcg32;

    fn small_graph() -> InfluenceGraph {
        let edges = [(0u32, 1u32), (0, 2), (1, 3), (2, 3), (3, 4), (4, 0)];
        InfluenceGraph::new(
            DiGraph::from_edges(5, &edges),
            vec![0.6, 0.3, 0.5, 0.7, 0.4, 0.2],
        )
    }

    #[test]
    fn bounds_dominate_exact_singleton_influence() {
        let ig = small_graph();
        let bounds = influence_upper_bounds(&ig, ig.num_vertices());
        let exact = exact_singleton_influences(&ig);
        for (v, (&b, &inf)) in bounds.iter().zip(&exact).enumerate() {
            assert!(
                b + 1e-12 >= inf,
                "vertex {v}: bound {b} < exact influence {inf}"
            );
        }
    }

    #[test]
    fn bounds_dominate_marginal_gains() {
        // Submodularity: the marginal gain of v w.r.t. any set is at most
        // Inf({v}) ≤ bound(v).
        let ig = small_graph();
        let bounds = influence_upper_bounds(&ig, ig.num_vertices());
        for v in 0..5u32 {
            for other in 0..5u32 {
                if other == v {
                    continue;
                }
                let gain = exact_influence(&ig, &[other, v]) - exact_influence(&ig, &[other]);
                assert!(bounds[v as usize] + 1e-12 >= gain);
            }
        }
    }

    #[test]
    fn bound_on_isolated_vertex_is_one() {
        let ig = InfluenceGraph::new(DiGraph::from_edges(3, &[(0, 1)]), vec![0.5]);
        let bounds = influence_upper_bounds(&ig, 3);
        assert!((bounds[2] - 1.0).abs() < 1e-12);
        assert!((bounds[1] - 1.0).abs() < 1e-12);
        assert!((bounds[0] - 1.5).abs() < 1e-12);
    }

    #[test]
    fn longer_walk_caps_never_decrease_the_bound() {
        let ig = small_graph();
        let short = influence_upper_bounds(&ig, 1);
        let long = influence_upper_bounds(&ig, 10);
        for v in 0..5 {
            assert!(long[v] + 1e-12 >= short[v]);
        }
    }

    #[test]
    fn pruned_greedy_matches_plain_greedy_on_exact_tables() {
        // A value table that respects its own bounds exactly: pruning is then
        // lossless and the selections must agree.
        let values = vec![4.0, 9.0, 2.0, 7.0, 5.0, 1.0];
        let bounds = vec![4.5, 9.5, 2.5, 7.5, 5.5, 1.5];
        for seed in 0..20u64 {
            let mut plain = TableEstimator::new(values.clone());
            let mut pruned = TableEstimator::new(values.clone());
            let g = greedy_select(&mut plain, 3, &mut Pcg32::seed_from_u64(seed));
            let (u, stats) = ublf_select(&mut pruned, 3, &bounds, &mut Pcg32::seed_from_u64(seed));
            assert_eq!(g.seed_set(), u.seed_set(), "seed {seed}");
            assert!(stats.estimate_calls <= g.estimate_calls);
            assert!(stats.pruned > 0, "tight bounds should prune something");
        }
    }

    #[test]
    fn pruned_greedy_with_ris_picks_the_same_hub() {
        let ig = small_graph();
        let bounds = influence_upper_bounds(&ig, ig.num_vertices());
        let mut a = RisEstimator::new(&ig, 4_000, &mut Pcg32::seed_from_u64(1));
        let mut b = RisEstimator::new(&ig, 4_000, &mut Pcg32::seed_from_u64(1));
        let g = greedy_select(&mut a, 2, &mut Pcg32::seed_from_u64(2));
        let (u, _) = ublf_select(&mut b, 2, &bounds, &mut Pcg32::seed_from_u64(2));
        assert_eq!(g.seed_set(), u.seed_set());
    }

    #[test]
    fn k_zero_and_empty_bounds() {
        let mut est = TableEstimator::new(vec![]);
        let (result, stats) = ublf_select(&mut est, 3, &[], &mut Pcg32::seed_from_u64(1));
        assert!(result.is_empty());
        assert_eq!(stats.estimate_calls, 0);
    }

    #[test]
    #[should_panic(expected = "one upper bound per vertex")]
    fn mismatched_bound_length_panics() {
        let mut est = TableEstimator::new(vec![1.0, 2.0]);
        let _ = ublf_select(&mut est, 1, &[1.0], &mut Pcg32::seed_from_u64(1));
    }
}
