//! Influence maximization under the independent cascade model.
//!
//! This crate is the paper's subject matter: the greedy framework of
//! Algorithm 3.1 together with the three influence estimators it can be
//! instantiated with —
//!
//! * [`OneshotEstimator`] (Algorithm 3.2) — `β` forward Monte-Carlo
//!   simulations per [`InfluenceEstimator::estimate`] call;
//! * [`SnapshotEstimator`] (Algorithm 3.3) — `τ` live-edge graphs sampled once
//!   in Build and shared across the whole greedy selection, with the optional
//!   subgraph-reduction Update of Section 3.4.3;
//! * [`RisEstimator`] (Algorithm 3.4) — `θ` reverse-reachable sets and greedy
//!   maximum coverage.
//!
//! Every estimator accounts for its work in the paper's two
//! implementation-independent metrics: the *traversal cost* (vertices and
//! edges examined, [`TraversalCost`]) and the *sample size* (vertices and
//! edges stored in memory, [`SampleSize`]).
//!
//! Supporting modules:
//!
//! * [`sampler`] — the shared batch-sampling execution layer all three
//!   estimators drive: a [`sampler::SampleBudget`] split into batches with one
//!   SplitMix64-derived PRNG stream each, executed sequentially or (with the
//!   `parallel` feature) across worker threads with byte-identical results;
//! * [`diffusion`] — forward IC simulation (and the linear-threshold extension
//!   in [`lt`]);
//! * [`greedy`] — the shared greedy loop with the random tie-breaking rule of
//!   Section 4.1, plus the CELF lazy-greedy acceleration of Section 3.3.3;
//! * [`oracle`] — the reusable RR-set–based influence oracle the paper uses to
//!   evaluate the quality of returned seed sets (Section 5.2);
//! * [`bounds`] — the worst-case sample-number bounds quoted in Sections 3.3.3,
//!   3.4.3 and 3.5.3, used for the bound-gap discussion of Section 5.2.1;
//! * [`algorithm`] — a small front-end enum selecting an approach and a sample
//!   number, which is what the experiment harness drives.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algorithm;
pub mod bounds;
pub mod celfpp;
pub mod cost;
pub mod determination;
pub mod diffusion;
pub mod estimator;
pub mod exact;
pub mod greedy;
pub mod lt;
pub mod lt_estimators;
pub mod oneshot;
pub mod oracle;
pub mod ris;
pub mod sampler;
pub mod seed_set;
pub mod snapshot;
pub mod ublf;

pub use algorithm::{Algorithm, RunOptions, RunOutcome};
pub use celfpp::celf_pp_select;
pub use cost::{SampleSize, TraversalCost};
pub use determination::AccuracyTarget;
pub use estimator::InfluenceEstimator;
pub use exact::{exact_greedy, exact_influence};
pub use greedy::{celf_select, greedy_select, GreedyResult};
pub use lt_estimators::{LtOneshotEstimator, LtRisEstimator, LtSnapshotEstimator};
pub use oneshot::OneshotEstimator;
pub use oracle::{shard_layout, EstimateScratch, InfluenceOracle, OracleBuilder, ShardRange};
// Pool storage-engine surface (re-exported so oracle callers pick layouts
// without depending on impool directly).
pub use impool::{Pool, PoolLayout, PoolStore, TieredConfig};
pub use ris::RisEstimator;
pub use sampler::{Backend, SampleBudget};
pub use seed_set::SeedSet;
pub use snapshot::SnapshotEstimator;
pub use ublf::{influence_upper_bounds, ublf_select};
