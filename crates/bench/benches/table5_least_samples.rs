//! Table 5 bench: the least sample number reaching near-optimal seed sets
//! with high probability.

use criterion::{criterion_group, criterion_main, Criterion};
use imexp::ApproachKind;
use imnet::ProbabilityModel;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let instance = im_bench::karate(ProbabilityModel::uc01());
    let (_, exact) = instance.exact_greedy(1);
    let threshold = 0.95 * exact;
    let sweep = im_bench::small_sweep(8, 30);

    println!("\n--- Table 5 series (Karate uc0.1, k = 1, 30 trials, 95%-near-optimal @ 90%) ---");
    for approach in ApproachKind::all() {
        let analyzed = instance.sweep(approach, 1, &sweep);
        let hit = analyzed.least_sample_number_reaching(threshold, 0.9);
        println!("{:<9} least sample number = {:?}", approach.name(), hit);
    }

    let mut group = c.benchmark_group("table5_least_samples");
    group.sample_size(10);
    group.bench_function("near_optimal_fraction/snapshot_tau128", |b| {
        b.iter(|| {
            let batch = instance.run_trials(
                ApproachKind::Snapshot.with_sample_number(128),
                1,
                10,
                3,
                false,
            );
            let hits = batch
                .outcomes
                .iter()
                .filter(|o| instance.oracle.estimate_seed_set(&o.seeds) >= threshold)
                .count();
            black_box(hits)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
