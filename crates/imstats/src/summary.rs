//! Summary statistics of influence distributions.
//!
//! Figure 4 of the paper presents influence distributions as *notched box
//! plots*: mean, median with a 95 % confidence notch, quartiles, 1st/99th
//! percentiles and outliers. [`SummaryStats`] computes all of those from the
//! `T` recorded influence values of a configuration.

use serde::{Deserialize, Serialize};

/// Summary statistics of a sample of real values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SummaryStats {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n − 1 in the denominator; 0 for n < 2).
    pub std_dev: f64,
    /// Minimum observation.
    pub min: f64,
    /// 1st percentile.
    pub p01: f64,
    /// 25th percentile (lower quartile).
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// 75th percentile (upper quartile).
    pub q3: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum observation.
    pub max: f64,
    /// Half-width of the 95 % median notch, `1.57·IQR/√n` (McGill et al.), the
    /// convention used by the paper's notched box plots.
    pub median_notch: f64,
}

impl SummaryStats {
    /// Compute summary statistics of `values`.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty or contains NaN.
    #[must_use]
    pub fn from_values(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "cannot summarise an empty sample");
        assert!(
            values.iter().all(|v| v.is_finite()),
            "values must be finite"
        );
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("values are finite"));

        let count = sorted.len();
        let mean = sorted.iter().sum::<f64>() / count as f64;
        let variance = if count < 2 {
            0.0
        } else {
            sorted.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (count as f64 - 1.0)
        };
        let q1 = percentile_of_sorted(&sorted, 25.0);
        let q3 = percentile_of_sorted(&sorted, 75.0);
        let iqr = q3 - q1;
        Self {
            count,
            mean,
            std_dev: variance.sqrt(),
            min: sorted[0],
            p01: percentile_of_sorted(&sorted, 1.0),
            q1,
            median: percentile_of_sorted(&sorted, 50.0),
            q3,
            p99: percentile_of_sorted(&sorted, 99.0),
            max: sorted[count - 1],
            median_notch: 1.57 * iqr / (count as f64).sqrt(),
        }
    }

    /// An arbitrary percentile in `[0, 100]` of the original sample.
    #[must_use]
    pub fn percentile(values: &[f64], p: f64) -> f64 {
        assert!(
            !values.is_empty(),
            "cannot take a percentile of an empty sample"
        );
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("values must not be NaN"));
        percentile_of_sorted(&sorted, p)
    }

    /// Fraction of observations at or above `threshold`; Table 5 uses this
    /// with `threshold = 0.95 × exact-greedy influence` and asks for ≥ 0.99.
    #[must_use]
    pub fn fraction_at_least(values: &[f64], threshold: f64) -> f64 {
        if values.is_empty() {
            return 0.0;
        }
        values.iter().filter(|&&v| v >= threshold).count() as f64 / values.len() as f64
    }

    /// The interquartile range `q3 − q1`.
    #[must_use]
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }

    /// Lower and upper bounds of the median's 95 % notch.
    #[must_use]
    pub fn notch_interval(&self) -> (f64, f64) {
        (
            self.median - self.median_notch,
            self.median + self.median_notch,
        )
    }
}

/// Linear-interpolation percentile of an already sorted slice (the "linear"
/// a.k.a. type-7 quantile definition used by NumPy's default).
fn percentile_of_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!((0.0..=100.0).contains(&p), "percentile {p} out of [0, 100]");
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (n as f64 - 1.0);
    let lower = rank.floor() as usize;
    let upper = rank.ceil() as usize;
    let weight = rank - lower as f64;
    sorted[lower] * (1.0 - weight) + sorted[upper] * weight
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_statistics() {
        let values = [1.0, 2.0, 3.0, 4.0, 5.0];
        let s = SummaryStats::from_values(&values);
        assert_eq!(s.count, 5);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert!((s.median - 3.0).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert!((s.std_dev - (2.5f64).sqrt()).abs() < 1e-12);
        assert!((s.q1 - 2.0).abs() < 1e-12);
        assert!((s.q3 - 4.0).abs() < 1e-12);
        assert!((s.iqr() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn single_observation() {
        let s = SummaryStats::from_values(&[7.5]);
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, 7.5);
        assert_eq!(s.median, 7.5);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.p01, 7.5);
        assert_eq!(s.p99, 7.5);
        assert_eq!(s.median_notch, 0.0);
    }

    #[test]
    fn percentiles_interpolate() {
        let values = [0.0, 10.0];
        assert!((SummaryStats::percentile(&values, 50.0) - 5.0).abs() < 1e-12);
        assert!((SummaryStats::percentile(&values, 25.0) - 2.5).abs() < 1e-12);
        assert_eq!(SummaryStats::percentile(&values, 0.0), 0.0);
        assert_eq!(SummaryStats::percentile(&values, 100.0), 10.0);
    }

    #[test]
    fn percentile_is_order_independent() {
        let a = [5.0, 1.0, 4.0, 2.0, 3.0];
        let b = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(
            SummaryStats::percentile(&a, 75.0),
            SummaryStats::percentile(&b, 75.0)
        );
    }

    #[test]
    fn fraction_at_least_counts_inclusive() {
        let values = [1.0, 2.0, 3.0, 4.0];
        assert!((SummaryStats::fraction_at_least(&values, 3.0) - 0.5).abs() < 1e-12);
        assert_eq!(SummaryStats::fraction_at_least(&values, 0.0), 1.0);
        assert_eq!(SummaryStats::fraction_at_least(&values, 10.0), 0.0);
        assert_eq!(SummaryStats::fraction_at_least(&[], 1.0), 0.0);
    }

    #[test]
    fn notch_interval_brackets_the_median() {
        let values: Vec<f64> = (0..100).map(f64::from).collect();
        let s = SummaryStats::from_values(&values);
        let (lo, hi) = s.notch_interval();
        assert!(lo < s.median && s.median < hi);
        assert!((s.median_notch - 1.57 * s.iqr() / 10.0).abs() < 1e-12);
    }

    #[test]
    fn constant_sample_has_zero_spread() {
        let s = SummaryStats::from_values(&[2.0; 50]);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.iqr(), 0.0);
        assert_eq!(s.p01, 2.0);
        assert_eq!(s.p99, 2.0);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_sample_panics() {
        let _ = SummaryStats::from_values(&[]);
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn nan_values_panic() {
        let _ = SummaryStats::from_values(&[1.0, f64::NAN]);
    }

    #[test]
    fn serde_round_trip() {
        let s = SummaryStats::from_values(&[1.0, 2.0, 3.0]);
        let json = serde_json::to_string(&s).unwrap();
        assert_eq!(serde_json::from_str::<SummaryStats>(&json).unwrap(), s);
    }
}
