//! `imexp pool` — the pool-store layout benchmark behind `BENCH_pool.json`.
//!
//! One oracle is sampled once on the streamed Chung–Lu fixture
//! ([`crate::fixture::ScaleFixture`]), then measured under all three
//! `impool` backends:
//!
//! * `raw`        — the reference `Vec<Vec<u32>>` layout;
//! * `compressed` — delta-varint blocks with skip headers, fully resident;
//! * `tiered`     — the same blocks demoted to a `PCMP` payload file, with
//!   only hot lists, skip headers and directories resident (the measurement
//!   round-trips through an actual file, exactly like `IndexArtifact::load`
//!   on a v5 tiered index).
//!
//! Per layout the driver records resident pool bytes, bytes per RR set, the
//! coverage-scan throughput of a full greedy gains pass (`coverage_gains`
//! over every posting list) and the latency distribution of single
//! `estimate` queries over a deterministic stream of seed sets. Before any
//! timing it asserts the layouts are *bit-identical* on a probe set —
//! spreads compared by `f64::to_bits` — so the numbers can never come from
//! diverging answers.

use std::time::Instant;

use serde::Serialize;

use im_core::{InfluenceOracle, PoolLayout, TieredConfig};
use imserve::index::parse_model;
use imserve::service::ServiceError;

use crate::fixture::ScaleFixture;
use crate::report::TextTable;

/// Everything `imexp pool` needs for one layout comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolBenchSpec {
    /// Fixture vertices (the issue's floor for committed numbers is 10⁶).
    pub nodes: usize,
    /// Fixture mean degree.
    pub degree: f64,
    /// Probability-model label.
    pub model: String,
    /// RR sets to draw into the pool.
    pub pool: usize,
    /// Seed of both the fixture and the pool sample.
    pub seed: u64,
    /// Timed `estimate` queries per layout.
    pub queries: usize,
    /// Seed-set size of each timed query.
    pub k: usize,
    /// Write the results as a JSON benchmark document.
    pub bench_out: Option<String>,
}

impl Default for PoolBenchSpec {
    fn default() -> Self {
        Self {
            nodes: 1_000_000,
            degree: 4.0,
            model: "iwc".to_string(),
            pool: 100_000,
            seed: 7,
            queries: 200,
            k: 8,
            bench_out: None,
        }
    }
}

/// One layout's measurements.
#[derive(Debug, Clone, Serialize)]
pub struct LayoutRun {
    /// Layout label (`raw`, `compressed`, `tiered`).
    pub layout: String,
    /// Pool bytes resident in process memory under this layout.
    pub resident_bytes: u64,
    /// `resident_bytes / pool` — the headline metric of the comparison.
    pub bytes_per_set: f64,
    /// Wall micros of one full `coverage_gains` pass over the pool.
    pub coverage_scan_micros: f64,
    /// RR sets scanned per second by that pass.
    pub coverage_scan_sets_per_sec: f64,
    /// Median single-`estimate` latency in microseconds.
    pub estimate_p50_micros: f64,
    /// 99th-percentile single-`estimate` latency in microseconds.
    pub estimate_p99_micros: f64,
}

/// The completed benchmark: fixture shape plus one [`LayoutRun`] per layout.
#[derive(Debug)]
pub struct PoolBenchResult {
    /// Realised fixture edges (the spec stores only the expectation).
    pub edges: usize,
    /// Measurements, in `raw`, `compressed`, `tiered` order.
    pub layouts: Vec<LayoutRun>,
    /// Probes confirmed bit-identical across the three layouts.
    pub verified_probes: usize,
}

impl PoolBenchResult {
    /// `raw bytes/set ÷ compressed bytes/set` — the acceptance bar is ≥ 2.
    #[must_use]
    pub fn compression_ratio(&self) -> f64 {
        let per_set = |label: &str| {
            self.layouts
                .iter()
                .find(|l| l.layout == label)
                .map_or(f64::NAN, |l| l.bytes_per_set)
        };
        per_set("raw") / per_set("compressed")
    }

    /// Render the comparison as a text table.
    #[must_use]
    pub fn table(&self) -> TextTable {
        let mut t = TextTable::new(
            "Pool-store layouts",
            &[
                "layout",
                "resident MiB",
                "bytes/RR-set",
                "scan Msets/s",
                "estimate p50 µs",
                "estimate p99 µs",
            ],
        );
        for l in &self.layouts {
            t.add_row(vec![
                l.layout.clone(),
                format!("{:.1}", l.resident_bytes as f64 / (1024.0 * 1024.0)),
                format!("{:.1}", l.bytes_per_set),
                format!("{:.2}", l.coverage_scan_sets_per_sec / 1e6),
                format!("{:.0}", l.estimate_p50_micros),
                format!("{:.0}", l.estimate_p99_micros),
            ]);
        }
        t
    }
}

/// The deterministic query stream: `count` seed sets of size `k`, drawn
/// without replacement from the vertex range. Shared by the probe check and
/// the timed runs so every layout answers the identical workload.
fn seed_sets(n: usize, k: usize, count: usize, seed: u64) -> Vec<Vec<u32>> {
    let mut rng = imrand::default_rng(seed ^ 0x706f_6f6c); // "pool"
    (0..count)
        .map(|_| imrand::seq::sample_distinct(n, k.min(n), &mut rng))
        .collect()
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Measure one oracle under its current layout.
fn measure(oracle: &InfluenceOracle, queries: &[Vec<u32>]) -> LayoutRun {
    let pool = oracle.pool_size().max(1);
    let start = Instant::now();
    let (gains, _) = oracle.coverage_gains(&[]);
    let scan_micros = start.elapsed().as_secs_f64() * 1e6;
    // Keep the scan from being optimised away.
    assert!(!gains.is_empty(), "coverage scan returned no gains");
    let mut scratch = oracle.scratch();
    let mut lat: Vec<f64> = Vec::with_capacity(queries.len());
    for seeds in queries {
        let start = Instant::now();
        let spread = oracle.estimate_with(seeds, &mut scratch);
        lat.push(start.elapsed().as_secs_f64() * 1e6);
        assert!(spread.is_finite());
    }
    lat.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    LayoutRun {
        layout: oracle.pool_layout().label().to_string(),
        resident_bytes: oracle.pool_resident_bytes() as u64,
        bytes_per_set: oracle.pool_resident_bytes() as f64 / pool as f64,
        coverage_scan_micros: scan_micros,
        coverage_scan_sets_per_sec: pool as f64 / (scan_micros / 1e6).max(1e-9),
        estimate_p50_micros: percentile(&lat, 0.50),
        estimate_p99_micros: percentile(&lat, 0.99),
    }
}

/// Estimates on `probes` must be bit-identical between `reference` and
/// `candidate`; anything else voids the benchmark.
fn verify_identical(
    reference: &InfluenceOracle,
    candidate: &InfluenceOracle,
    probes: &[Vec<u32>],
) -> Result<usize, ServiceError> {
    for seeds in probes {
        let a = reference.estimate(seeds);
        let b = candidate.estimate(seeds);
        if a.to_bits() != b.to_bits() {
            return Err(ServiceError::Query(format!(
                "layout {} diverged from {} on estimate({seeds:?}): {a} vs {b}",
                candidate.pool_layout(),
                reference.pool_layout(),
            )));
        }
    }
    Ok(probes.len())
}

/// Run the full comparison: sample once, measure raw, re-layout in place to
/// compressed, then demote through a real `PCMP` payload file for tiered.
pub fn run(spec: &PoolBenchSpec) -> Result<PoolBenchResult, ServiceError> {
    let model = parse_model(&spec.model)?;
    let fixture = ScaleFixture::new(spec.nodes, spec.degree, spec.seed);
    eprintln!(
        "pool bench: generating Chung-Lu fixture ({} vertices, ~{} edges) …",
        spec.nodes,
        fixture.expected_edges()
    );
    let graph = fixture.influence_graph(model);
    let edges = graph.num_edges();
    eprintln!(
        "pool bench: sampling {} RR sets ({} realised edges) …",
        spec.pool, edges
    );
    let mut oracle = InfluenceOracle::builder(spec.pool)
        .seed(spec.seed)
        .incremental()
        .sample(&graph);

    let queries = seed_sets(spec.nodes, spec.k, spec.queries, spec.seed);
    let probes = seed_sets(spec.nodes, spec.k, 16, spec.seed.wrapping_add(1));

    let mut layouts = Vec::with_capacity(3);
    let mut verified_probes = 0;
    eprintln!("pool bench: measuring raw layout …");
    layouts.push(measure(&oracle, &queries));

    eprintln!("pool bench: measuring compressed layout …");
    let raw_reference = spec.nodes <= 200_000;
    // At full scale a second resident copy of the raw pool is exactly the
    // memory wall this crate removes, so the bit-identity probes compare
    // against raw only when the fixture is small enough to keep both.
    let reference = if raw_reference {
        Some(oracle.clone())
    } else {
        None
    };
    oracle.convert_layout(PoolLayout::Compressed);
    if let Some(reference) = &reference {
        verified_probes += verify_identical(reference, &oracle, &probes)?;
    }
    layouts.push(measure(&oracle, &queries));

    eprintln!("pool bench: measuring tiered layout (cold blocks on disk) …");
    let payload = oracle.encode_pcmp_payload(PoolLayout::Tiered);
    let dir = std::env::temp_dir().join(format!("imexp-pool-{}-{}", spec.seed, spec.nodes));
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("pool.pcmp");
    std::fs::write(&path, &payload)?;
    let (mut tiered, hint) = InfluenceOracle::from_pcmp_payload(&payload)
        .map_err(|e| ServiceError::Query(format!("tiered payload rejected: {e}")))?;
    debug_assert_eq!(hint, PoolLayout::Tiered);
    // The decoded oracle lost the incremental stamp the sampled one carried;
    // restore it so the tiered measurement covers the same contract.
    if let (Some(base), Some(offset)) = (oracle.incremental_base_seed(), oracle.set_id_offset()) {
        tiered.attach_incremental(base, offset);
    }
    let file = std::sync::Arc::new(std::fs::File::open(&path)?);
    tiered.attach_cold_pool_file(file, 0, TieredConfig::default());
    verified_probes += verify_identical(&oracle, &tiered, &probes)?;
    layouts.push(measure(&tiered, &queries));
    drop(tiered);
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_dir(&dir);

    Ok(PoolBenchResult {
        edges,
        layouts,
        verified_probes,
    })
}

/// The canonical reproducing invocation (recorded in the document).
#[must_use]
pub fn invocation(spec: &PoolBenchSpec) -> String {
    let mut cmd = format!(
        "imexp pool --nodes {} --degree {} --model {} --pool {} --seed {} --queries {} --k {}",
        spec.nodes, spec.degree, spec.model, spec.pool, spec.seed, spec.queries, spec.k
    );
    if let Some(out) = &spec.bench_out {
        cmd.push_str(&format!(" --bench-out {out}"));
    }
    cmd
}

/// The committed benchmark document (`BENCH_pool.json`).
#[derive(Debug, Serialize)]
pub struct PoolBenchDocument {
    /// Document format tag, bumped on breaking field changes.
    pub schema: String,
    /// The exact command line reproducing these numbers.
    pub invocation: String,
    /// CPU cores available to the run.
    pub cores: usize,
    /// The fixture and workload shape.
    pub fixture: PoolBenchFixture,
    /// One entry per layout, in `raw`, `compressed`, `tiered` order.
    pub layouts: Vec<LayoutRun>,
    /// `raw bytes/set ÷ compressed bytes/set` (acceptance bar: ≥ 2).
    pub compression_ratio: f64,
    /// Probes confirmed bit-identical across layouts before timing.
    pub verified_probes: usize,
}

/// Fixture metadata recorded in a [`PoolBenchDocument`].
#[derive(Debug, Serialize)]
pub struct PoolBenchFixture {
    /// Fixture vertices.
    pub nodes: usize,
    /// Realised fixture edges.
    pub edges: usize,
    /// Target mean degree.
    pub degree: f64,
    /// Probability-model label.
    pub model: String,
    /// RR sets in the pool.
    pub pool: usize,
    /// Seed of fixture, pool and query streams.
    pub seed: u64,
    /// Timed queries per layout.
    pub queries: usize,
    /// Seed-set size of each timed query.
    pub k: usize,
}

/// Assemble the JSON document from a completed run.
#[must_use]
pub fn bench_document(spec: &PoolBenchSpec, result: &PoolBenchResult) -> PoolBenchDocument {
    PoolBenchDocument {
        schema: "imexp-pool/v1".to_string(),
        invocation: invocation(spec),
        cores: std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
        fixture: PoolBenchFixture {
            nodes: spec.nodes,
            edges: result.edges,
            degree: spec.degree,
            model: spec.model.clone(),
            pool: spec.pool,
            seed: spec.seed,
            queries: spec.queries,
            k: spec.k,
        },
        layouts: result.layouts.clone(),
        compression_ratio: result.compression_ratio(),
        verified_probes: result.verified_probes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec() -> PoolBenchSpec {
        PoolBenchSpec {
            nodes: 2_000,
            degree: 3.0,
            pool: 4_000,
            queries: 40,
            ..PoolBenchSpec::default()
        }
    }

    #[test]
    fn bench_runs_all_three_layouts_and_compresses() {
        let spec = small_spec();
        let result = run(&spec).expect("bench runs");
        let labels: Vec<&str> = result.layouts.iter().map(|l| l.layout.as_str()).collect();
        assert_eq!(labels, ["raw", "compressed", "tiered"]);
        assert!(result.verified_probes >= 32, "both comparisons probed");
        assert!(
            result.compression_ratio() >= 2.0,
            "compressed should be >=2x smaller per set (got {:.2}x)",
            result.compression_ratio()
        );
        let tiered = &result.layouts[2];
        let compressed = &result.layouts[1];
        assert!(
            tiered.resident_bytes < compressed.resident_bytes,
            "tiered must keep fewer bytes resident ({} vs {})",
            tiered.resident_bytes,
            compressed.resident_bytes
        );
        for l in &result.layouts {
            assert!(l.coverage_scan_sets_per_sec > 0.0);
            assert!(l.estimate_p99_micros >= l.estimate_p50_micros);
        }
    }

    #[test]
    fn document_carries_schema_and_reproducing_invocation() {
        let spec = small_spec();
        let result = run(&spec).expect("bench runs");
        let doc = bench_document(&spec, &result);
        assert_eq!(doc.schema, "imexp-pool/v1");
        assert!(doc.invocation.starts_with("imexp pool --nodes 2000"));
        assert_eq!(doc.layouts.len(), 3);
        assert_eq!(doc.fixture.pool, 4_000);
        let json = serde_json::to_string_pretty(&doc).expect("serialises");
        for key in [
            "schema",
            "compression_ratio",
            "bytes_per_set",
            "coverage_scan_sets_per_sec",
            "estimate_p50_micros",
            "estimate_p99_micros",
        ] {
            assert!(json.contains(key), "document is missing {key}");
        }
    }

    #[test]
    fn percentiles_are_order_statistics() {
        let sorted = vec![1.0, 2.0, 3.0, 4.0, 100.0];
        assert!((percentile(&sorted, 0.5) - 3.0).abs() < 1e-9);
        assert!((percentile(&sorted, 0.99) - 100.0).abs() < 1e-9);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }
}
