//! Proof that the serving hot path performs zero per-query allocation.
//!
//! A counting global allocator records every `alloc` call; after building the
//! oracle and its [`EstimateScratch`], a burst of `estimate_with` queries must
//! leave the counter untouched. The old `estimate` path allocates on every
//! multi-seed call (it merges posting lists into a fresh `Vec`), which the
//! second assertion documents as the contrast.
//!
//! This file deliberately contains a single `#[test]` so no sibling test can
//! allocate concurrently on another thread and pollute the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use im_core::InfluenceOracle;
use imgraph::{DiGraph, InfluenceGraph};
use imrand::Pcg32;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAllocator;

// SAFETY: delegates directly to the system allocator; the counter is a
// side-effect-free atomic increment.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

#[test]
fn estimate_with_performs_zero_allocations_per_query() {
    // A small scale-free-ish fixture: a hub plus a ring, enough structure for
    // multi-vertex RR sets.
    let n = 64u32;
    let mut edges = Vec::new();
    for v in 1..n {
        edges.push((0, v));
        edges.push((v, (v % (n - 1)) + 1));
    }
    let probs = vec![0.2; edges.len()];
    let graph = InfluenceGraph::new(DiGraph::from_edges(n as usize, &edges), probs);
    let oracle =
        InfluenceOracle::builder(50_000).sample_with_rng(&graph, &mut Pcg32::seed_from_u64(42));
    let mut scratch = oracle.scratch();

    let seed_sets: Vec<Vec<u32>> = vec![
        vec![0],
        vec![0, 1],
        vec![5, 9, 13],
        vec![0, 1, 2, 3, 4, 5, 6, 7],
        (0..32).collect(),
    ];

    // Warm up once (first call may lazily grow nothing, but be safe).
    for seeds in &seed_sets {
        let _ = oracle.estimate_with(seeds, &mut scratch);
    }

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let mut acc = 0.0f64;
    for _ in 0..1_000 {
        for seeds in &seed_sets {
            acc += oracle.estimate_with(seeds, &mut scratch);
        }
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert!(acc > 0.0, "estimates must be non-trivial");
    assert_eq!(
        after - before,
        0,
        "estimate_with must not allocate on the hot path"
    );

    // Contrast: the allocating path does allocate (one merge buffer per
    // multi-seed call), which is exactly what the scratch removes.
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    let _ = oracle.estimate(&[0, 1, 2]);
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert!(
        after > before,
        "the non-scratch path is expected to allocate"
    );

    // And both paths agree bit-for-bit.
    for seeds in &seed_sets {
        assert_eq!(
            oracle.estimate(seeds),
            oracle.estimate_with(seeds, &mut scratch)
        );
    }
}
