//! Ablation: space reduction for Snapshot and RIS (the paper's Section 7
//! question).
//!
//! Measures (i) the compression ratio and decode throughput of delta/varint
//! RR-set storage, (ii) the accuracy/space trade-off of bottom-k reachability
//! sketches against exact descendant counts on a live-edge snapshot, and
//! (iii) the wall-clock cost of building each representation.

use criterion::{criterion_group, criterion_main, Criterion};
use im_core::ris::generate_rr_set;
use imgraph::live_edge::sample_snapshot;
use imnet::ProbabilityModel;
use imrand::default_rng;
use imsketch::{descendant_counts, CompressedRrSets, ReachabilitySketches};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let instance = im_bench::grqc_small(ProbabilityModel::uc01());
    let graph = &instance.graph;

    // Series: compression ratio and sketch error, printed like the tables.
    let theta = 5_000;
    let mut rng = default_rng(1);
    let mut compressed = CompressedRrSets::new();
    for _ in 0..theta {
        compressed.push(&generate_rr_set(graph, &mut rng).vertices);
    }
    println!("\n--- Ablation: space reduction (ca-GrQc/8 uc0.1) ---");
    println!(
        "RR sets: θ = {theta}, stored ids = {}, raw = {} B, compressed = {} B, ratio = {:.2}x",
        compressed.total_vertices(),
        compressed.uncompressed_bytes(),
        compressed.payload_bytes(),
        compressed.compression_ratio()
    );

    let snapshot = sample_snapshot(graph, &mut rng);
    let exact = descendant_counts(snapshot.graph());
    for k in [8usize, 32, 128] {
        let sketches = ReachabilitySketches::build(snapshot.graph(), k, &mut default_rng(2));
        let mean_err: f64 = (0..graph.num_vertices())
            .map(|v| (sketches.estimate_reachable(v as u32) - exact[v] as f64).abs())
            .sum::<f64>()
            / graph.num_vertices() as f64;
        println!(
            "bottom-{k:<3} sketches: {} ranks stored, mean |error| = {mean_err:.2} vertices",
            sketches.stored_ranks()
        );
    }

    let mut group = c.benchmark_group("ablation_space_reduction");
    group.sample_size(10);
    group.bench_function("compress_1000_rr_sets", |b| {
        b.iter(|| {
            let mut rng = default_rng(7);
            let mut store = CompressedRrSets::new();
            for _ in 0..1_000 {
                store.push(&generate_rr_set(graph, &mut rng).vertices);
            }
            black_box(store.payload_bytes())
        })
    });
    group.bench_function("decode_all_rr_sets", |b| {
        b.iter(|| black_box(compressed.iter().map(|s| s.len()).sum::<usize>()))
    });
    group.bench_function("bottomk32_sketch_build", |b| {
        b.iter(|| {
            let s = ReachabilitySketches::build(snapshot.graph(), 32, &mut default_rng(9));
            black_box(s.stored_ranks())
        })
    });
    group.bench_function("exact_descendant_counts", |b| {
        b.iter(|| black_box(descendant_counts(snapshot.graph())))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
