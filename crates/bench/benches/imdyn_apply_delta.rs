//! Maintenance bench: single-mutation `DynamicOracle::apply` latency versus a
//! full `InfluenceOracle::build_incremental` on a Chung–Lu power-law graph
//! with ≥ 100k edges (the same fixture family as the parallel-sampler
//! ablation), under the paper's `uc0.01` cascade — the subcritical regime
//! (EPT ≈ 1) where a large pool is cheap to hold but still minutes-scale to
//! rebuild at paper sizes, i.e. the realistic serving profile. (Under
//! `uc0.1` this fixture is supercritical with EPT ≈ 290: RR sets span the
//! giant component, dirty-set counts approach a constant fraction of the
//! pool, and *no* maintenance scheme — incremental or not — beats a rebuild
//! by a large factor; the interesting serving regime is the sparse one.)
//!
//! The incremental path resamples only the RR sets containing the mutated
//! edge's head (`≈ pool · Inf(head)/n` sets) plus, for structural deltas, one
//! CSR re-materialization; the rebuild resamples the whole pool. The bench
//! prints the measured speedup and asserts the ≥ 10× maintenance advantage
//! the subsystem exists to provide, after first checking the byte-identity
//! contract on a smaller pool so the timed configuration is known-correct.

use criterion::{criterion_group, criterion_main, Criterion};
use im_core::sampler::Backend;
use im_core::InfluenceOracle;
use imdyn::{workload, DynamicOracle};
use imgraph::InfluenceGraph;
use imnet::chung_lu::ChungLu;
use imnet::ProbabilityModel;
use imrand::Pcg32;
use std::hint::black_box;
use std::time::Instant;

const POOL: usize = 500_000;
const SEED: u64 = 29;
const MUTATIONS: usize = 64;

fn chung_lu_graph() -> InfluenceGraph {
    // 40k vertices, ~120k expected edges, Table-3-like exponents.
    let model = ChungLu::power_law(40_000, 120_000, 2.3, 2.3, 0.01);
    let graph = model.generate(&mut imrand::default_rng(97));
    assert!(
        graph.num_edges() >= 100_000,
        "maintenance fixture must have at least 100k edges, got {}",
        graph.num_edges()
    );
    ProbabilityModel::uc001().assign(&graph)
}

fn bench(c: &mut Criterion) {
    let ig = chung_lu_graph();
    println!(
        "\n--- imdyn maintenance bench (Chung-Lu n={} m={}, pool {POOL}) ---",
        ig.num_vertices(),
        ig.num_edges()
    );

    // Correctness first: on a small pool the maintained state must be
    // byte-identical to a rebuild after a mutation burst.
    {
        let mut small = DynamicOracle::build(ig.clone(), 2_000, SEED, Backend::Sequential);
        let mut rng = Pcg32::seed_from_u64(5);
        for _ in 0..8 {
            let delta = workload::random_delta(small.mutable_graph(), &mut rng);
            small.apply(delta).expect("workload deltas are valid");
        }
        assert!(
            small.matches_rebuild(),
            "maintained pool must equal a from-scratch rebuild"
        );
    }

    // The rebuild cost every mutation would pay without the subsystem.
    let started = Instant::now();
    let rebuilt = InfluenceOracle::builder(POOL)
        .seed(SEED)
        .backend(Backend::Sequential)
        .incremental()
        .sample(&ig);
    let rebuild_secs = started.elapsed().as_secs_f64();
    black_box(rebuilt);

    // Per-mutation maintenance cost over a mixed workload.
    let mut dynamic = DynamicOracle::build(ig.clone(), POOL, SEED, Backend::Sequential);
    let mut rng = Pcg32::seed_from_u64(11);
    let mut apply_secs = Vec::with_capacity(MUTATIONS);
    let mut resampled_total = 0usize;
    for _ in 0..MUTATIONS {
        let delta = workload::random_delta(dynamic.mutable_graph(), &mut rng);
        let started = Instant::now();
        let outcome = dynamic.apply(delta).expect("workload deltas are valid");
        apply_secs.push(started.elapsed().as_secs_f64());
        resampled_total += outcome.resampled;
    }
    let mean_apply = apply_secs.iter().sum::<f64>() / apply_secs.len() as f64;
    let max_apply = apply_secs.iter().cloned().fold(0.0f64, f64::max);
    let speedup = rebuild_secs / mean_apply;
    println!(
        "full rebuild: {rebuild_secs:.3}s   apply_delta over {MUTATIONS} mutations: \
         mean {:.3}ms  max {:.3}ms  ({} sets resampled total)",
        mean_apply * 1e3,
        max_apply * 1e3,
        resampled_total
    );
    println!("measured speedup (rebuild / mean apply): {speedup:.1}x");
    assert!(
        speedup >= 10.0,
        "single-mutation maintenance must be at least 10x cheaper than a rebuild \
         (measured {speedup:.1}x)"
    );

    let mut group = c.benchmark_group("imdyn_maintenance");
    group.sample_size(10);
    group.bench_function("apply_delta/mixed_workload", |bch| {
        let mut dynamic = DynamicOracle::build(ig.clone(), POOL / 4, SEED, Backend::Sequential);
        let mut rng = Pcg32::seed_from_u64(23);
        bch.iter(|| {
            let delta = workload::random_delta(dynamic.mutable_graph(), &mut rng);
            black_box(dynamic.apply(delta).expect("workload deltas are valid"))
        })
    });
    group.bench_function("rebuild/full_pool", |bch| {
        bch.iter(|| {
            black_box(
                InfluenceOracle::builder(POOL / 4)
                    .seed(SEED)
                    .backend(Backend::Sequential)
                    .incremental()
                    .sample(&ig),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
