//! Degree-based seed selection: the simplest proxies for influence.

use imgraph::{InfluenceGraph, VertexId};

use crate::selector::{full_scan_edge_cost, top_k_by_score, HeuristicResult, SeedSelector};

/// Rank vertices by raw out-degree `d⁺(v)` and return the top `k`.
///
/// This is the "high-degree" baseline of Kempe et al.'s original evaluation;
/// it ignores edge probabilities entirely and so over-values hubs whose edges
/// are weak (e.g. under the in-degree weighted cascade, where a hub pointing
/// at popular vertices contributes almost nothing per edge).
#[derive(Debug, Clone, Copy, Default)]
pub struct MaxDegree;

impl SeedSelector for MaxDegree {
    fn select(&self, graph: &InfluenceGraph, k: usize) -> HeuristicResult {
        let g = graph.graph();
        let scores: Vec<f64> = (0..g.num_vertices() as VertexId)
            .map(|v| g.out_degree(v) as f64)
            .collect();
        let (seeds, picked) = top_k_by_score(&scores, k);
        HeuristicResult {
            seeds,
            scores: picked,
            vertices_examined: g.num_vertices() as u64,
            edges_examined: 0,
        }
    }

    fn name(&self) -> &'static str {
        "MaxDegree"
    }
}

/// Rank vertices by expected out-weight `Σ_{w ∈ Γ⁺(v)} p(v, w)` — the expected
/// number of direct activations — and return the top `k`.
///
/// Unlike [`MaxDegree`] this is probability-aware: under the out-degree
/// weighted cascade every vertex scores exactly 1 (so the heuristic carries no
/// signal, which is itself informative), while under the uniform cascade the
/// ranking coincides with max-degree.
#[derive(Debug, Clone, Copy, Default)]
pub struct WeightedDegree;

impl SeedSelector for WeightedDegree {
    fn select(&self, graph: &InfluenceGraph, k: usize) -> HeuristicResult {
        let n = graph.num_vertices();
        let scores: Vec<f64> = (0..n as VertexId)
            .map(|v| graph.expected_out_weight(v))
            .collect();
        let (seeds, picked) = top_k_by_score(&scores, k);
        HeuristicResult {
            seeds,
            scores: picked,
            vertices_examined: n as u64,
            edges_examined: full_scan_edge_cost(graph),
        }
    }

    fn name(&self) -> &'static str {
        "WeightedDegree"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imgraph::DiGraph;

    /// A hub (vertex 0) with three out-edges plus a chain 4 -> 5.
    fn hub_graph(p_hub: f64, p_chain: f64) -> InfluenceGraph {
        let g = DiGraph::from_edges(6, &[(0, 1), (0, 2), (0, 3), (4, 5)]);
        InfluenceGraph::new(g, vec![p_hub, p_hub, p_hub, p_chain])
    }

    #[test]
    fn max_degree_picks_the_hub_first() {
        let ig = hub_graph(0.01, 0.9);
        let r = MaxDegree.select(&ig, 2);
        assert_eq!(r.seeds[0], 0);
        assert_eq!(r.seeds[1], 4);
        assert_eq!(r.scores, vec![3.0, 1.0]);
        assert_eq!(r.vertices_examined, 6);
        assert_eq!(MaxDegree.name(), "MaxDegree");
    }

    #[test]
    fn weighted_degree_prefers_strong_edges() {
        // Hub has 3 weak edges (total weight 0.03); the chain vertex has one
        // strong edge (0.9), so weighted degree ranks it first.
        let ig = hub_graph(0.01, 0.9);
        let r = WeightedDegree.select(&ig, 1);
        assert_eq!(r.seeds, vec![4]);
        assert!((r.scores[0] - 0.9).abs() < 1e-12);
        assert_eq!(r.edges_examined, 4);
    }

    #[test]
    fn weighted_degree_matches_max_degree_under_uniform_probabilities() {
        let ig = hub_graph(0.1, 0.1);
        let by_degree = MaxDegree.select(&ig, 3).seeds;
        let by_weight = WeightedDegree.select(&ig, 3).seeds;
        assert_eq!(by_degree, by_weight);
    }

    #[test]
    fn k_zero_and_k_larger_than_n() {
        let ig = hub_graph(0.5, 0.5);
        assert!(MaxDegree.select(&ig, 0).is_empty());
        assert_eq!(WeightedDegree.select(&ig, 100).len(), 6);
    }

    #[test]
    fn seeds_are_distinct() {
        let ig = hub_graph(0.5, 0.5);
        let r = MaxDegree.select(&ig, 6);
        let mut sorted = r.seeds.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), r.seeds.len());
    }
}
