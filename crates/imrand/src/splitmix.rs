//! SplitMix64 (Steele, Lea & Flood, 2014): a tiny generator whose main role in
//! this workspace is expanding 64-bit seeds into the larger states of
//! [`crate::Mt19937`] and [`crate::Pcg32`], and deriving per-trial seeds.

use crate::traits::Rng32;

/// The SplitMix64 generator (64-bit state, 64-bit output, period `2^64`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator whose state is exactly `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Produce the next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl Rng32 for SplitMix64 {
    fn next_u32(&mut self) -> u32 {
        (SplitMix64::next_u64(self) >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        SplitMix64::next_u64(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference outputs for seed 1234567 published with the original
    /// SplitMix64 sources (Vigna's `splitmix64.c`).
    #[test]
    fn matches_reference_vector() {
        let mut rng = SplitMix64::new(1_234_567);
        let expected = [
            6_457_827_717_110_365_317u64,
            3_203_168_211_198_807_973,
            9_817_491_932_198_370_423,
            4_593_380_528_125_082_431,
            16_408_922_859_458_223_821,
        ];
        for (i, &e) in expected.iter().enumerate() {
            assert_eq!(rng.next_u64(), e, "mismatch at output {i}");
        }
    }

    #[test]
    fn zero_seed_produces_nonzero_stream() {
        let mut rng = SplitMix64::new(0);
        assert_ne!(rng.next_u64(), 0);
    }

    #[test]
    fn rng32_impl_consumes_one_u64_per_u32() {
        // The Rng32 impl deliberately draws a full 64-bit word per 32-bit
        // output (simplicity over thrift); document that behaviour here.
        let mut a = SplitMix64::new(9);
        let mut b = SplitMix64::new(9);
        let x = Rng32::next_u32(&mut a);
        let y = (SplitMix64::next_u64(&mut b) >> 32) as u32;
        assert_eq!(x, y);
    }
}
