//! The influence graph `G = (V, E, p)`.

use serde::{Deserialize, Serialize};

use crate::{DiGraph, Edge, VertexId};

/// The influence-probability domain: `p ∈ (0, 1]` and finite.
///
/// One predicate shared by every layer that admits probabilities — graph
/// construction, in-place updates, delta validation, binary decode and CLI
/// parsing — so the domain can never silently diverge between them.
#[must_use]
pub fn is_valid_probability(p: f64) -> bool {
    p > 0.0 && p <= 1.0 && p.is_finite()
}

/// A directed graph whose edges carry influence probabilities `p(e) ∈ (0, 1]`.
///
/// This is the input object of the influence-maximization problem
/// (Problem 2.1). Probabilities are stored in a flat array indexed by edge id,
/// so the same array serves both the forward graph (used by Oneshot/Snapshot)
/// and the cached transpose (used by RIS reverse traversals).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InfluenceGraph {
    graph: DiGraph,
    /// `probabilities[edge_id]` is `p(e)` for the edge with that insertion id.
    probabilities: Vec<f64>,
    /// Lazily constructed transpose would complicate sharing; we build it
    /// eagerly because RIS always needs it and it is cheap relative to the
    /// experiments run on the graph.
    transpose: DiGraph,
    /// Cached sum of all edge probabilities, `m̃ = Σ_e p(e)`: the expected
    /// number of live edges, used throughout the traversal-cost analysis.
    prob_sum: f64,
}

impl InfluenceGraph {
    /// Attach per-edge probabilities to a directed graph.
    ///
    /// `probabilities[i]` must be the probability of the edge with insertion
    /// id `i` (the order in which edges were passed to
    /// [`DiGraph::from_edges`]).
    ///
    /// # Panics
    ///
    /// Panics if the number of probabilities differs from the number of edges
    /// or any probability lies outside `(0, 1]`.
    #[must_use]
    pub fn new(graph: DiGraph, probabilities: Vec<f64>) -> Self {
        assert_eq!(
            probabilities.len(),
            graph.num_edges(),
            "need exactly one probability per edge"
        );
        for (i, &p) in probabilities.iter().enumerate() {
            assert!(
                is_valid_probability(p),
                "edge {i} has invalid probability {p}; probabilities must lie in (0, 1]"
            );
        }
        let transpose = graph.transpose();
        let prob_sum = probabilities.iter().sum();
        Self {
            graph,
            probabilities,
            transpose,
            prob_sum,
        }
    }

    /// Build an influence graph directly from an edge list and a probability
    /// assignment function `p(u, v)`.
    #[must_use]
    pub fn from_edges_with(
        n: usize,
        edges: &[Edge],
        mut p: impl FnMut(VertexId, VertexId) -> f64,
    ) -> Self {
        let graph = DiGraph::from_edges(n, edges);
        let probabilities = edges.iter().map(|&(u, v)| p(u, v)).collect();
        Self::new(graph, probabilities)
    }

    /// The underlying deterministic graph.
    #[must_use]
    pub fn graph(&self) -> &DiGraph {
        &self.graph
    }

    /// The transposed graph `G⊤` with edge ids preserved, so
    /// [`InfluenceGraph::probability`] remains valid for its edges.
    #[must_use]
    pub fn transpose(&self) -> &DiGraph {
        &self.transpose
    }

    /// Number of vertices `n`.
    #[must_use]
    pub fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    /// Number of edges `m`.
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.graph.num_edges()
    }

    /// Probability of the edge with the given insertion id.
    #[must_use]
    pub fn probability(&self, edge_id: u32) -> f64 {
        self.probabilities[edge_id as usize]
    }

    /// All edge probabilities, indexed by edge id.
    #[must_use]
    pub fn probabilities(&self) -> &[f64] {
        &self.probabilities
    }

    /// Overwrite the probability of the edge with the given insertion id.
    ///
    /// This is the attribute-only fast path of incremental graph maintenance:
    /// a `SetProbability` delta touches no adjacency, so the CSR and its
    /// transpose are reused as-is. The cached probability sum is recomputed by
    /// the same full summation [`InfluenceGraph::new`] performs, so the result
    /// is bit-identical to rebuilding the graph from scratch with the updated
    /// probability array.
    ///
    /// # Panics
    ///
    /// Panics if `edge_id` is out of range or `p` lies outside `(0, 1]`.
    pub fn set_probability(&mut self, edge_id: u32, p: f64) {
        assert!(
            (edge_id as usize) < self.probabilities.len(),
            "edge id {edge_id} out of range for {} edges",
            self.probabilities.len()
        );
        assert!(
            is_valid_probability(p),
            "invalid probability {p}; probabilities must lie in (0, 1]"
        );
        self.probabilities[edge_id as usize] = p;
        self.prob_sum = self.probabilities.iter().sum();
    }

    /// `m̃ = Σ_e p(e)`, the expected number of edges in a live-edge sample.
    ///
    /// This is the quantity the paper calls `m̃`; it appears in the Snapshot
    /// sample-size bound (`τ·m̃`) and in the per-sample edge-traversal-cost
    /// ratio `1 : m̃/m : 1/n` of Section 5.4.3.
    #[must_use]
    pub fn probability_sum(&self) -> f64 {
        self.prob_sum
    }

    /// Out-neighbours of `v` with the probability of each incident edge.
    pub fn out_edges_with_prob(&self, v: VertexId) -> impl Iterator<Item = (VertexId, f64)> + '_ {
        self.graph
            .out_edges(v)
            .map(move |(w, eid)| (w, self.probability(eid)))
    }

    /// In-neighbours of `v` with the probability of each incident edge
    /// (i.e. the probability of the original edge `(u, v)`).
    pub fn in_edges_with_prob(&self, v: VertexId) -> impl Iterator<Item = (VertexId, f64)> + '_ {
        self.graph
            .in_edges(v)
            .map(move |(u, eid)| (u, self.probability(eid)))
    }

    /// The expected in-weight `Σ_{u ∈ Γ⁻(v)} p(u, v)` of a vertex; equals 1 for
    /// every vertex with in-neighbours under the in-degree weighted cascade.
    #[must_use]
    pub fn expected_in_weight(&self, v: VertexId) -> f64 {
        self.in_edges_with_prob(v).map(|(_, p)| p).sum()
    }

    /// The expected out-weight `Σ_{w ∈ Γ⁺(v)} p(v, w)` of a vertex; equals 1
    /// for every vertex with out-neighbours under the out-degree weighted
    /// cascade.
    #[must_use]
    pub fn expected_out_weight(&self, v: VertexId) -> f64 {
        self.out_edges_with_prob(v).map(|(_, p)| p).sum()
    }

    /// Return the influence graph of the transposed network `G⊤` (same edge
    /// probabilities, reversed direction), used for `Inf_{G⊤}` quantities in
    /// the traversal-cost appendix.
    #[must_use]
    pub fn reversed(&self) -> Self {
        Self {
            graph: self.transpose.clone(),
            probabilities: self.probabilities.clone(),
            transpose: self.graph.clone(),
            prob_sum: self.prob_sum,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph() -> InfluenceGraph {
        // 0 -> 1 -> 2 with probabilities 0.5 and 0.25
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 2)]);
        InfluenceGraph::new(g, vec![0.5, 0.25])
    }

    #[test]
    fn probability_lookup() {
        let ig = path_graph();
        assert_eq!(ig.probability(0), 0.5);
        assert_eq!(ig.probability(1), 0.25);
        assert!((ig.probability_sum() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn out_edges_with_prob_matches_edges() {
        let ig = path_graph();
        let out: Vec<_> = ig.out_edges_with_prob(0).collect();
        assert_eq!(out, vec![(1, 0.5)]);
        let inn: Vec<_> = ig.in_edges_with_prob(2).collect();
        assert_eq!(inn, vec![(1, 0.25)]);
    }

    #[test]
    fn expected_weights() {
        let ig = path_graph();
        assert!((ig.expected_out_weight(0) - 0.5).abs() < 1e-12);
        assert!((ig.expected_in_weight(1) - 0.5).abs() < 1e-12);
        assert_eq!(ig.expected_in_weight(0), 0.0);
        assert_eq!(ig.expected_out_weight(2), 0.0);
    }

    #[test]
    fn transpose_preserves_probabilities() {
        let ig = path_graph();
        let t = ig.transpose();
        // In the transpose, vertex 1 has an out-edge to 0 with the id of the
        // original (0, 1) edge.
        let (target, eid) = t.out_edges(1).next().unwrap();
        assert_eq!(target, 0);
        assert_eq!(ig.probability(eid), 0.5);
    }

    #[test]
    fn reversed_swaps_directions() {
        let ig = path_graph();
        let rev = ig.reversed();
        assert_eq!(rev.graph().out_neighbors(1), &[0]);
        assert_eq!(rev.graph().out_neighbors(0), &[] as &[VertexId]);
        assert!((rev.probability_sum() - ig.probability_sum()).abs() < 1e-12);
        // Reversing twice gives back the original structure.
        let back = rev.reversed();
        assert_eq!(back.graph().out_neighbors(0), ig.graph().out_neighbors(0));
    }

    #[test]
    fn from_edges_with_assignment_function() {
        let ig = InfluenceGraph::from_edges_with(3, &[(0, 1), (1, 2), (0, 2)], |u, _v| {
            if u == 0 {
                0.1
            } else {
                0.9
            }
        });
        assert_eq!(ig.probability(0), 0.1);
        assert_eq!(ig.probability(1), 0.9);
        assert_eq!(ig.probability(2), 0.1);
    }

    #[test]
    #[should_panic(expected = "invalid probability")]
    fn zero_probability_rejected() {
        let g = DiGraph::from_edges(2, &[(0, 1)]);
        let _ = InfluenceGraph::new(g, vec![0.0]);
    }

    #[test]
    #[should_panic(expected = "invalid probability")]
    fn above_one_probability_rejected() {
        let g = DiGraph::from_edges(2, &[(0, 1)]);
        let _ = InfluenceGraph::new(g, vec![1.5]);
    }

    #[test]
    #[should_panic(expected = "one probability per edge")]
    fn probability_count_mismatch_rejected() {
        let g = DiGraph::from_edges(2, &[(0, 1)]);
        let _ = InfluenceGraph::new(g, vec![0.5, 0.5]);
    }

    #[test]
    fn probability_of_exactly_one_is_allowed() {
        let g = DiGraph::from_edges(2, &[(0, 1)]);
        let ig = InfluenceGraph::new(g, vec![1.0]);
        assert_eq!(ig.probability(0), 1.0);
    }
}
