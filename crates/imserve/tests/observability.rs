//! End-to-end observability: the `Metrics` request and the scrape endpoint
//! reflect served traffic, trace ids propagate across the sharded wire into
//! every hop's slow-query log, and tracing never perturbs response bytes.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

use imserve::client::RemoteService;
use imserve::engine::QueryEngine;
use imserve::index::{build_dataset_index, parse_dataset, parse_model, IndexArtifact};
use imserve::protocol::{Request, RequestFrame, TopKAlgorithm, PROTOCOL_VERSION};
use imserve::service::InfluenceService;
use imserve::shard::ShardedService;
use imserve::{protocol, reactor, ReactorConfig, ServingMetrics};

const POOL: usize = 2_000;
const SEED: u64 = 7;

/// An engine whose slow-query threshold is zero, so every request is
/// retained with its full stage timeline.
fn observed_engine(artifact: IndexArtifact) -> Arc<QueryEngine> {
    Arc::new(
        QueryEngine::builder(artifact)
            .metrics(ServingMetrics::new(0))
            .build()
            .unwrap(),
    )
}

#[test]
fn metrics_request_and_scrape_endpoint_reflect_served_traffic() {
    let engine = observed_engine(build_dataset_index("karate", "uc0.1", POOL, SEED).unwrap());
    let handle = reactor::spawn(
        "127.0.0.1:0",
        Arc::clone(&engine),
        &ReactorConfig {
            compute_threads: 2,
            ..ReactorConfig::default()
        },
    )
    .unwrap();
    let render_engine = Arc::clone(&engine);
    let scrape_addr =
        imserve::spawn_metrics_endpoint("127.0.0.1:0", move || render_engine.render_metrics())
            .unwrap();

    let mut service = RemoteService::connect(handle.addr()).unwrap();
    service.estimate(&[0]).unwrap();
    service.estimate(&[0, 33]).unwrap();
    // Same selection twice: a cache miss then a hit.
    service.top_k(2, TopKAlgorithm::Greedy).unwrap();
    service.top_k(2, TopKAlgorithm::Greedy).unwrap();
    let stats = service.stats().unwrap();
    assert!(stats.requests_by_type.estimate >= 2);
    assert_eq!(stats.topk_cache_hits, 1);

    // The wire `Metrics` snapshot carries the same counters the engine saw.
    let report = service.metrics().unwrap();
    let estimate_lane = report.counter("imserve_requests_total{type=\"estimate\"}");
    assert_eq!(estimate_lane, 2);
    assert_eq!(report.counter("imserve_topk_cache_hits_total"), 1);
    assert_eq!(report.counter("imserve_topk_cache_misses_total"), 1);
    let latency = report
        .histogram("imserve_request_latency_micros{type=\"estimate\"}")
        .expect("estimate latency histogram");
    assert_eq!(latency.count, 2);
    // Threshold zero: every request is in the slow log, with stage
    // timelines whose names match the serving pipeline.
    assert!(!report.slow_queries.is_empty());
    let slow = report.slow_queries.last().unwrap();
    let stages: Vec<&str> = slow.stages.iter().map(|s| s.stage.as_str()).collect();
    assert!(stages.contains(&"execute"), "stages: {stages:?}");
    assert!(stages.contains(&"parse"), "stages: {stages:?}");

    // The plaintext scrape renders the same families Prometheus-style.
    let mut stream = TcpStream::connect(scrape_addr).unwrap();
    stream
        .write_all(b"GET /metrics HTTP/1.0\r\nHost: test\r\n\r\n")
        .unwrap();
    let mut body = String::new();
    stream.read_to_string(&mut body).unwrap();
    assert!(body.starts_with("HTTP/1.0 200 OK"), "head: {body:.60}");
    for needle in [
        "# TYPE imserve_requests_total counter",
        "imserve_requests_total{type=\"estimate\"} 2",
        "# TYPE imserve_request_latency_micros histogram",
        "imserve_topk_cache_hits_total 1",
        "imserve_uptime_seconds",
        "imserve_queue_wait_micros",
        "# slowlog trace=0x",
    ] {
        assert!(body.contains(needle), "scrape missing {needle:?}:\n{body}");
    }
    handle.shutdown();
}

#[test]
fn trace_ids_propagate_through_the_sharded_wire_into_every_slow_log() {
    // Two real shard artifacts over one global pool, each behind its own
    // TCP server, routed by a ShardedService — the full production topology.
    let ds = parse_dataset("karate").unwrap();
    let model = parse_model("uc0.1").unwrap();
    let mut engines = Vec::new();
    let mut handles = Vec::new();
    for index in 0..2usize {
        let graph = ds.influence_graph(model, SEED);
        let artifact =
            IndexArtifact::build_shard(ds.name(), &model.label(), graph, POOL, SEED, index, 2);
        let engine = observed_engine(artifact);
        engines.push(Arc::clone(&engine));
        handles.push(reactor::spawn("127.0.0.1:0", engine, &ReactorConfig::default()).unwrap());
    }
    let shards: Vec<RemoteService> = handles
        .iter()
        .map(|h| RemoteService::connect(h.addr()).unwrap())
        .collect();
    let mut router = ShardedService::new(shards).unwrap();

    const TRACE: u64 = 0x00C0FFEE;
    router.set_trace(Some(TRACE));
    router.estimate(&[0, 5]).unwrap();

    // Every shard server retained the hop under the router's trace id — the
    // property that lets one logical request be stitched across machines.
    for (i, engine) in engines.iter().enumerate() {
        let traces: Vec<u64> = engine
            .obs()
            .slow_log
            .entries()
            .iter()
            .map(|r| r.trace)
            .collect();
        assert!(
            traces.contains(&TRACE),
            "shard {i} slow log missing trace {TRACE:#x}: {traces:?}"
        );
    }

    // Untraced requests mint fresh ids — never zero, never the stale one.
    router.set_trace(None);
    router.estimate(&[1]).unwrap();
    let fresh: Vec<u64> = engines[0]
        .obs()
        .slow_log
        .entries()
        .iter()
        .map(|r| r.trace)
        .collect();
    assert!(fresh.iter().all(|&t| t != 0));
    for handle in handles {
        handle.shutdown();
    }
}

#[test]
fn traced_frames_get_byte_identical_responses_to_untraced_ones() {
    let engine = observed_engine(build_dataset_index("karate", "uc0.1", POOL, SEED).unwrap());
    let handle = reactor::spawn("127.0.0.1:0", engine, &ReactorConfig::default()).unwrap();
    let mut stream = TcpStream::connect(handle.addr()).unwrap();

    let request = Request::Estimate { seeds: vec![0, 9] };
    let untraced = protocol::encode(&RequestFrame::new(42, request.clone())).unwrap();
    let traced = protocol::encode(&RequestFrame {
        v: PROTOCOL_VERSION,
        id: 42,
        req: request,
        trace: Some(0xDEAD_BEEF),
    })
    .unwrap();
    assert_ne!(untraced, traced, "the t field must be on the wire");

    stream
        .write_all(format!("{untraced}\n{traced}\n").as_bytes())
        .unwrap();
    let mut reader = BufReader::new(stream);
    let mut first = String::new();
    reader.read_line(&mut first).unwrap();
    let mut second = String::new();
    reader.read_line(&mut second).unwrap();
    assert_eq!(
        first, second,
        "tracing must never change a response's bytes"
    );
    handle.shutdown();
}
